.PHONY: install lint test bench bench-smoke bench-full report report-full examples clean

install:
	pip install -e . --no-build-isolation

lint:
	ruff check .

# Matches the tier-1 CI command exactly, so local runs and CI agree.
test:
	PYTHONPATH=src python -m pytest -x -q

bench:
	pytest benchmarks/ --benchmark-only

# Fast subset used by the CI smoke job (no REPRO_FULL).
bench-smoke:
	pytest benchmarks/bench_fig05_probability.py benchmarks/bench_fig08_cora.py \
		--benchmark-only -q --benchmark-json=bench-smoke.json

bench-full:
	REPRO_FULL=1 pytest benchmarks/ --benchmark-only

report:
	python -m repro report --out EXPERIMENTS_GENERATED.md

report-full:
	python -m repro --full report --out EXPERIMENTS_GENERATED.md

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
