.PHONY: install test bench bench-full report report-full examples clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL=1 pytest benchmarks/ --benchmark-only

report:
	python -m repro report --out EXPERIMENTS_GENERATED.md

report-full:
	python -m repro --full report --out EXPERIMENTS_GENERATED.md

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
