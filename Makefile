.PHONY: install lint lint-invariants lint-changed typecheck test bench bench-smoke bench-full bench-scale perf-gate serve-load report report-full examples clean

install:
	pip install -e . --no-build-isolation

lint:
	ruff check .

# Repo-specific invariant + AST linter (rules R1-R13; see
# docs/ANALYSIS.md).  The baseline file is the ratchet: it only ever
# shrinks.  The content-hash cache makes warm runs re-analyze only the
# files you actually touched.
lint-invariants:
	PYTHONPATH=src python -m repro lint src \
		--baseline analysis_baseline.json \
		--cache .repro-lint-cache.json --jobs 4

# Lint only the python files changed vs BASE (default origin/main if it
# exists, else HEAD) plus untracked ones — the fast inner-loop target.
BASE ?= $(shell git rev-parse --verify -q origin/main >/dev/null 2>&1 && echo origin/main || echo HEAD)
lint-changed:
	PYTHONPATH=src python -m repro lint src \
		--baseline analysis_baseline.json \
		--cache .repro-lint-cache.json --changed $(BASE)

# Strict zone only; the gradually-typed packages are relaxed via the
# [[tool.mypy.overrides]] tables in pyproject.toml.  Skips cleanly when
# mypy is not installed (it is an optional dev dependency).
typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy --strict src/repro/core src/repro/lsh src/repro/structures \
			src/repro/distance src/repro/obs src/repro/parallel \
			src/repro/online src/repro/serve; \
	else \
		echo "mypy not installed (pip install -e '.[dev]'); skipping"; \
	fi

# Matches the tier-1 CI command exactly, so local runs and CI agree.
test:
	PYTHONPATH=src python -m pytest -x -q

bench:
	pytest benchmarks/ --benchmark-only

# Fast subset used by the CI smoke job (no REPRO_FULL).  Also emits
# BENCH_parallel.json: serial-vs-parallel timings of a pairwise-heavy
# scenario plus the host cpu_count (speedup is only meaningful on
# multi-core machines) and an identical-output check;
# BENCH_serve.json: cold-vs-warm-start timings proving a snapshot
# restore skips prepare() and stays bit-identical;
# BENCH_memo.json: pairs_compared with the pair-verdict memo off vs on
# over a streaming insert+query scenario (identical outputs, >=30%
# fewer comparisons); BENCH_topk.json: end-to-end top-k wall time
# plus deterministic work counters on fixed-seed synthetics; and
# BENCH_kernels.json: packed-vs-reference kernel micro-benchmarks that
# gate bit-identity (signatures, distances, verdicts, clusters) and
# archive — never gate — the wall-clock speedups.
bench-smoke:
	pytest benchmarks/bench_fig05_probability.py benchmarks/bench_fig08_cora.py \
		--benchmark-only -q --benchmark-json=bench-smoke.json
	python benchmarks/parallel_smoke.py --out BENCH_parallel.json
	python benchmarks/serve_smoke.py --out BENCH_serve.json
	python benchmarks/bench_memo.py --out BENCH_memo.json
	python benchmarks/bench_binning.py --out BENCH_binning.json
	python benchmarks/bench_topk_macro.py --out BENCH_topk.json
	python benchmarks/bench_kernels.py --out BENCH_kernels.json

bench-full:
	REPRO_FULL=1 pytest benchmarks/ --benchmark-only

# Out-of-core scale run: streaming-build a Cora layout on disk, resolve
# top-k across 4 shards over the mmap open, and gate on (a) cross-shard
# bit-identity vs the single-shard in-memory path on a shard-aligned
# planted store, (b) zero store-pickle bytes shipped to process
# workers, and (c) an optional peak-RSS ceiling.  Writes
# BENCH_scale.json; the nightly scale-smoke job runs this at 500k
# records with an RSS ceiling (see .github/workflows/nightly.yml).
bench-scale:
	PYTHONPATH=src python benchmarks/bench_scale.py --out BENCH_scale.json

# Deterministic perf gate: the macro benchmark's pairs_compared /
# hashes_computed counters must not exceed perf_baseline.json (the
# ratchet — improvements re-run with --write-baseline and commit the
# smaller numbers).  Timing is reported but never gated.
perf-gate:
	PYTHONPATH=src python benchmarks/bench_topk_macro.py \
		--out BENCH_topk.json --check-baseline perf_baseline.json

# Smoke-scale open-loop load run against a 2-shard service, writing
# BENCH_serve_load.json (p50/p95/p99 latency, throughput, shed rate).
# The exit code gates on shed rate, error rate, and response
# bit-identity vs the in-process ShardOracle — never on wall-clock
# latency (see docs/SERVING.md).
serve-load:
	PYTHONPATH=src python -m repro loadtest --generate spotsigs \
		--records 400 --qps 25 --duration 20 -k 2 5 10 \
		--reserve 60 --write-fraction 0.05 --rollover-records 32 \
		--shards 2 --out BENCH_serve_load.json

report:
	python -m repro report --out EXPERIMENTS_GENERATED.md

report-full:
	python -m repro --full report --out EXPERIMENTS_GENERATED.md

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
