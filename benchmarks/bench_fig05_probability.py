"""Figure 5: collision-probability curves of (w, z)-schemes.

Regenerates the three curves of Figure 5 and asserts the qualitative
shape: more hash functions give a sharper drop past the threshold.
"""

import numpy as np
import pytest

from repro.eval.experiments import exp_fig5_probability
from repro.lsh.probability import collision_prob_curve


def linear_p(x):
    return np.clip(1.0 - np.asarray(x, dtype=float), 0.0, 1.0)


def test_fig5_curves(benchmark, cfg):
    result = benchmark.pedantic(
        lambda: exp_fig5_probability(cfg), rounds=3, iterations=1
    )
    print()
    print(result.to_markdown())
    at_55 = {
        (row["w"], row["z"]): row["prob"]
        for row in result.rows
        if row["angle_deg"] == 55
    }
    # Paper: at 55 degrees, the (30,70) curve is already near zero
    # while (1,1) is still at ~0.7.
    assert at_55[(30, 70)] < 0.01
    assert at_55[(15, 20)] < 0.2
    assert at_55[(1, 1)] == pytest.approx(1 - 55 / 180, abs=1e-9)


def test_fig5_near_threshold_retention(benchmark):
    """Below the 15-degree threshold every scheme stays near 1."""

    def curve_at_threshold():
        return {
            (w, z): float(collision_prob_curve(linear_p, w, z, 15 / 180))
            for (w, z) in [(15, 20), (30, 70)]
        }

    probs = benchmark.pedantic(curve_at_threshold, rounds=5, iterations=1)
    assert probs[(15, 20)] > 0.97
    assert probs[(30, 70)] > 0.99
