"""Shared benchmark fixtures.

Default sizes keep the whole suite a few minutes; set ``REPRO_FULL=1``
to run at the paper's dataset scale (2000-2200 records, 1x..8x scales,
10k images).
"""

from __future__ import annotations

import os

import pytest

from repro.datasets import generate_cora, generate_popular_images, generate_spotsigs
from repro.datasets.popularimages import TOP1_BY_EXPONENT
from repro.eval.experiments import ExperimentConfig
from repro.eval.runner import make_method

FULL = bool(int(os.environ.get("REPRO_FULL", "0")))
SEED = 0


@pytest.fixture(scope="session")
def cfg() -> ExperimentConfig:
    return ExperimentConfig.full() if FULL else ExperimentConfig.small()


@pytest.fixture(scope="session")
def spotsigs(cfg):
    return generate_spotsigs(cfg.spotsigs_records, seed=SEED)


@pytest.fixture(scope="session")
def cora(cfg):
    return generate_cora(cfg.cora_records, seed=SEED)


@pytest.fixture(scope="session")
def images_105(cfg):
    return _images(cfg, 1.05)


def _images(cfg, exponent):
    ratio = cfg.images_records / 10_000
    return generate_popular_images(
        n_records=cfg.images_records,
        n_popular=max(20, int(500 * ratio)),
        zipf_exponent=exponent,
        top1_size=max(10, int(TOP1_BY_EXPONENT[round(exponent, 2)] * ratio)),
        seed=SEED,
    )


def prepared_method(dataset, spec, seed=SEED, **kwargs):
    """Build a filtering method with offline work (scheme design, cost
    calibration) already done, so benchmarks time only the filter."""
    method = make_method(dataset, spec, seed=seed, **kwargs)
    prepare = getattr(method, "prepare", None)
    if prepare is not None:
        prepare()
    return method


def timed_run(dataset, spec, k, seed=SEED, **kwargs) -> tuple:
    """One fresh filtering run; returns (wall_time, FilterResult)."""
    method = prepared_method(dataset, spec, seed=seed, **kwargs)
    result = method.run(k)
    return result.wall_time, result
