"""Figure 16: execution time on PopularImages vs Zipf exponent, for
angle thresholds 3 and 5 degrees (k=10).

This is the paper's *hard* regime for adaLSH — the top-1 entity is a
large fraction of the dataset — so the expected shape is modest:
execution time increases with the exponent (bigger top entities to
verify) and with a looser threshold, and adaLSH stays competitive with
the best LSH-X (paper reports 1.2-1.7x).
"""

import pytest

from repro.eval.experiments import exp_fig16_images_time


def test_fig16_images_time(benchmark, cfg):
    result = benchmark.pedantic(
        lambda: exp_fig16_images_time(cfg, k=10), rounds=1, iterations=1
    )
    print()
    print(result.to_markdown(
        columns=["threshold_deg", "exponent", "method", "time_s", "F1"]
    ))
    rows = result.rows

    def time_of(threshold, exponent, method):
        return next(
            r["time_s"]
            for r in rows
            if r["threshold_deg"] == threshold
            and r["exponent"] == exponent
            and r["method"] == method
        )

    # Execution time grows with the Zipf exponent (larger top entities)
    # for adaLSH at both thresholds.
    for threshold in (3.0, 5.0):
        assert time_of(threshold, 1.2, "adaLSH") > 0.5 * time_of(
            threshold, 1.05, "adaLSH"
        )
    # adaLSH competitive with the best of the two LSH variants.
    for threshold in (3.0, 5.0):
        for exponent in (1.05, 1.1, 1.2):
            ada = time_of(threshold, exponent, "adaLSH")
            best = min(
                time_of(threshold, exponent, "LSH320"),
                time_of(threshold, exponent, "LSH2560"),
            )
            # Wall-times here are 50-250 ms, so allow generous noise
            # headroom on top of "competitive".
            assert ada < 3.5 * best + 0.05, (threshold, exponent)
