"""Incremental mode (§4.2, Theorem 2): time-to-first-cluster vs the
full top-k run, plus the streaming front-end's warm-query behaviour.

Shape: the top-1 cluster is available well before the full top-k
completes, and a warm streaming query re-computes no hashes.
"""

import time

import numpy as np

from repro.core import AdaptiveLSH
from repro.online import StreamingTopK

from .conftest import SEED
from repro.core.config import AdaptiveConfig


def test_time_to_first_vs_full(benchmark, spotsigs):
    def run():
        method = AdaptiveLSH(spotsigs.store, spotsigs.rule, config=AdaptiveConfig(seed=SEED))
        method.prepare()
        started = time.perf_counter()
        gen = method.iter_clusters(20)
        first_cluster = next(gen)
        t_first = time.perf_counter() - started
        for _ in gen:
            pass
        t_full = time.perf_counter() - started
        return t_first, t_full, first_cluster.size

    t_first, t_full, top1 = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  first={t_first:.3f}s full(top-20)={t_full:.3f}s top1={top1}")
    assert t_first <= t_full
    assert top1 > 0
    # Theorem 2's practical payoff: top-1 lands in well under the full
    # top-20 time.
    assert t_first < 0.9 * t_full + 1e-3


def test_streaming_ingest_and_query(benchmark, spotsigs):
    def run():
        stream = StreamingTopK(spotsigs.store, spotsigs.rule, config=AdaptiveConfig(seed=SEED, cost_model="analytic"))
        stream.insert_many(spotsigs.store.rids)
        return stream.top_k(5)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.k == 5


def test_streaming_warm_query_is_cheaper(benchmark, spotsigs):
    def run():
        stream = StreamingTopK(spotsigs.store, spotsigs.rule, config=AdaptiveConfig(seed=SEED, cost_model="analytic"))
        stream.insert_many(spotsigs.store.rids)
        cold = stream.top_k(5)
        warm = stream.top_k(5)
        return cold, warm

    cold, warm = benchmark.pedantic(run, rounds=1, iterations=1)
    assert warm.counters.hashes_computed == 0
    assert [c.size for c in warm.clusters] == [c.size for c in cold.clusters]
