"""Figure 9: execution time on SpotSigs — (a) vs k, (b) vs size.

The paper's headline claims here: adaLSH gives its largest speedups on
this higher-dimensional dataset (~25x vs LSH1280 on their testbed);
LSH is slower than Pairs on small datasets and only wins at scale;
the adaLSH-vs-Pairs speedup grows with size.
"""

import pytest

from repro.datasets import extend_dataset

from .conftest import SEED, prepared_method, timed_run

METHODS = ("adaLSH", "LSH1280", "Pairs")


@pytest.mark.parametrize("k", [2, 5, 10, 20])
@pytest.mark.parametrize("spec", METHODS)
def test_fig9a_time_vs_k(benchmark, spotsigs, spec, k):
    def setup():
        return (prepared_method(spotsigs, spec),), {}

    result = benchmark.pedantic(
        lambda m: m.run(k), setup=setup, rounds=2, iterations=1
    )
    assert result.k == k


def test_fig9a_adalsh_beats_lsh1280(benchmark, spotsigs):
    """The paper's central comparison at k=10."""

    def run():
        t_ada, r_ada = timed_run(spotsigs, "adaLSH", 10)
        t_lsh, r_lsh = timed_run(spotsigs, "LSH1280", 10)
        assert [c.size for c in r_ada.clusters] == [
            c.size for c in r_lsh.clusters
        ]
        return t_ada, t_lsh

    t_ada, t_lsh = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  adaLSH={t_ada:.3f}s LSH1280={t_lsh:.3f}s "
          f"speedup={t_lsh / max(t_ada, 1e-9):.1f}x")
    assert t_ada * 2.0 < t_lsh


def test_fig9a_adalsh_hashes_fraction(benchmark, spotsigs):
    """Work view: adaLSH computes a small fraction of LSH1280's hash
    evaluations (the Figure 2 'sparse areas are cheap' claim)."""

    def run():
        _, r_ada = timed_run(spotsigs, "adaLSH", 10)
        _, r_lsh = timed_run(spotsigs, "LSH1280", 10)
        return r_ada.counters.hashes_computed, r_lsh.counters.hashes_computed

    ada_hashes, lsh_hashes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ada_hashes < 0.4 * lsh_hashes


def test_fig9b_time_vs_size(benchmark, spotsigs, cfg):
    def run():
        rows = []
        for scale in cfg.scales:
            ds = extend_dataset(spotsigs, scale, seed=SEED + scale)
            times = {spec: timed_run(ds, spec, 10)[0] for spec in METHODS}
            rows.append((scale, len(ds), times))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for scale, n, times in rows:
        print(
            f"  SpotSigs{scale}x (n={n}): "
            + "  ".join(f"{m}={t:.3f}s" for m, t in times.items())
        )
    for _scale, _n, times in rows:
        assert times["adaLSH"] < times["LSH1280"]
    # Speedup over Pairs grows with scale (Pairs is quadratic).
    first, last = rows[0][2], rows[-1][2]
    assert (
        last["Pairs"] / max(last["adaLSH"], 1e-9)
        > first["Pairs"] / max(first["adaLSH"], 1e-9)
    )
