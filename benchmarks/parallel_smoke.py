"""Serial-vs-parallel smoke benchmark (``make bench-smoke``).

Times a pairwise-heavy scenario — the Pairs baseline's blocked pass
over a generated SpotSigs dataset — serially and with worker processes,
verifies the outputs are identical, and writes the timings to
``BENCH_parallel.json``.  ``cpu_count`` is recorded alongside the
speedup: on a single-CPU machine process fan-out cannot beat serial, so
consumers should gate expectations on the recorded core count.
"""

from __future__ import annotations

import argparse
import os
import time

from repro.baselines import PairsBaseline
from repro.bench import emit_result
from repro.datasets import generate_spotsigs


def _run(dataset, k, n_jobs):
    method = PairsBaseline(dataset.store, dataset.rule, n_jobs=n_jobs)
    try:
        started = time.perf_counter()
        result = method.run(k)
        elapsed = time.perf_counter() - started
    finally:
        method.close()
    clusters = [tuple(int(r) for r in c.rids) for c in result.clusters]
    return elapsed, clusters, result.info.get("parallel")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_parallel.json")
    parser.add_argument("--records", type=int, default=1600)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--n-jobs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    dataset = generate_spotsigs(n_records=args.records, seed=args.seed)
    serial_s, serial_clusters, _ = _run(dataset, args.k, 1)
    parallel_s, parallel_clusters, stats = _run(dataset, args.k, args.n_jobs)
    identical = serial_clusters == parallel_clusters

    emit_result(
        args.out,
        "parallel_smoke",
        config={
            "records": args.records,
            "k": args.k,
            "n_jobs": args.n_jobs,
            "seed": args.seed,
        },
        timings={"serial_seconds": serial_s, "parallel_seconds": parallel_s},
        payload={
            "scenario": f"Pairs baseline on spotsigs({args.records})",
            "cpu_count": os.cpu_count(),
            "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
            "identical_clusters": identical,
            "pool": stats,
        },
    )
    if not identical:
        print("FATAL: parallel clusters differ from serial")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
