"""Bin-index delta benchmark (``make bench-smoke``).

Replays the motivating serving scenario for
:class:`~repro.lsh.binindex.SchemeBinIndex`: a
:class:`~repro.serve.ResolverSession` answers a ``top_k`` query, the
store is extended twice, and each extension is followed by another
query.  With the bin index on, the streaming front-end's ``H_1`` delta
index carries across extensions (:class:`~repro.online.StreamCarry`)
and only the *new* records are re-grouped; with it off, every
extension re-inserts the full store into plain dict tables.  The
benchmark runs the scenario both ways, verifies all three query
outputs are bit-identical, and writes the grouping counters to
``BENCH_binning.json``.

Fails (exit 1) if the outputs differ, or if the delta index re-grouped
at least as many rows as a full re-group of the latest extension would
have — the counter floor that pins the "touched buckets only"
property.  The exact delta/full ratio is archived, never gated.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.bench import emit_result
from repro.core.config import AdaptiveConfig
from repro.datasets import generate_spotsigs
from repro.serve import ResolverSession


def _cluster_tuples(result):
    return [tuple(int(r) for r in c.rids) for c in result.clusters]


def _run(dataset, n_head, n_ext, k, *, seed, bin_index):
    store = dataset.store
    head = store.take(np.arange(n_head))
    ext1 = store.take(np.arange(n_head, n_head + n_ext))
    ext2 = store.take(np.arange(n_head + n_ext, n_head + 2 * n_ext))
    config = AdaptiveConfig(
        seed=seed, cost_model="analytic", bin_index=bin_index
    )
    outputs = []
    started = time.perf_counter()
    session = ResolverSession(head, dataset.rule, config=config)
    try:
        outputs.append(_cluster_tuples(session.top_k(k)))
        session.extend_store(ext1)
        outputs.append(_cluster_tuples(session.top_k(k)))
        session.extend_store(ext2)
        outputs.append(_cluster_tuples(session.top_k(k)))
        stats = session.serving_stats()["bin_index"]
        delta = (
            session._stream.delta_index
            if session._stream is not None
            else None
        )
        table_count = (
            int(delta.export_state()["table_count"])
            if delta is not None
            else 0
        )
    finally:
        session.close()
    elapsed = time.perf_counter() - started
    return {
        "seconds": round(elapsed, 4),
        "stats": stats,
        "table_count": table_count,
    }, outputs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_binning.json")
    parser.add_argument("--records", type=int, default=600)
    parser.add_argument("--extension", type=int, default=100)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--method-seed", type=int, default=3)
    args = parser.parse_args(argv)

    if args.records <= 2 * args.extension:
        parser.error("--records must exceed twice --extension")
    n_head = args.records - 2 * args.extension
    dataset = generate_spotsigs(n_records=args.records, seed=args.seed)

    off, off_outputs = _run(
        dataset,
        n_head,
        args.extension,
        args.k,
        seed=args.method_seed,
        bin_index=False,
    )
    on, on_outputs = _run(
        dataset,
        n_head,
        args.extension,
        args.k,
        seed=args.method_seed,
        bin_index=True,
    )

    identical = off_outputs == on_outputs
    # The serving method (and its bin index) is re-seated per
    # extension, so the counter covers the *latest* extension only:
    # delta rows = new-records x tables, vs a carry-less front-end
    # re-inserting the whole store (records x tables).
    delta_rows = (on["stats"] or {}).get("delta", {}).get("rows", 0)
    full_rows = args.records * on["table_count"]
    ratio = delta_rows / full_rows if full_rows else 0.0

    emit_result(
        args.out,
        "bench_binning",
        config={
            "records": args.records,
            "extension": args.extension,
            "k": args.k,
            "seed": args.seed,
            "method_seed": args.method_seed,
        },
        timings={
            "bin_off_seconds": off["seconds"],
            "bin_on_seconds": on["seconds"],
        },
        payload={
            "scenario": (
                f"ResolverSession on spotsigs({args.records}), "
                f"2 extensions of {args.extension} with top_k after each"
            ),
            "bin_off": off,
            "bin_on": on,
            "delta_rows": int(delta_rows),
            "full_regroup_rows": int(full_rows),
            "delta_rows_ratio": round(ratio, 4),
            "identical_outputs": identical,
        },
    )
    if not identical:
        print("FATAL: bin-index outputs differ from legacy outputs")
        return 1
    if not delta_rows or delta_rows >= full_rows:
        print(
            f"FATAL: delta index re-grouped {delta_rows} rows; expected "
            f"strictly below the full re-group count {full_rows}"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
