"""Cold-vs-warm-start smoke benchmark (``make bench-smoke``).

Runs one adaLSH query cold (design + calibration + hashing from
scratch), captures an :class:`~repro.serve.IndexSnapshot`, restores it
into a fresh :class:`~repro.serve.ResolverSession`, and answers the
same query warm.  Verifies the warm output is bit-identical to the
cold one and that the restored method never enters ``prepare()``
(no ``adaLSH.prepare`` span in its run report), then writes the
timings to ``BENCH_serve.json``.

The exit code is the proof: any output mismatch or a warm-side
prepare span fails the run.
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time

from repro import AdaptiveConfig, AdaptiveLSH, RunObserver
from repro.bench import emit_result
from repro.datasets import generate_spotsigs
from repro.serve import IndexSnapshot, ResolverSession


def _cluster_key(result):
    return [tuple(int(r) for r in c.rids) for c in result.clusters]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument("--records", type=int, default=1600)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    dataset = generate_spotsigs(n_records=args.records, seed=args.seed)
    config = AdaptiveConfig(seed=args.seed, cost_model="analytic")

    # Cold: design + hash from scratch, then capture + save.
    with AdaptiveLSH(
        dataset.store, dataset.rule, config=config, observer=RunObserver()
    ) as cold:
        started = time.perf_counter()
        cold.prepare()
        cold_prepare_s = time.perf_counter() - started
        started = time.perf_counter()
        cold_result = cold.run(args.k)
        cold_run_s = time.perf_counter() - started
        snapshot = IndexSnapshot.capture(cold)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "index.npz")
            started = time.perf_counter()
            snapshot.save(path)
            save_s = time.perf_counter() - started
            snapshot_bytes = os.path.getsize(path)
            started = time.perf_counter()
            loaded = IndexSnapshot.load(path)
            load_s = time.perf_counter() - started

    # Warm: restore and answer the same query through a session.
    started = time.perf_counter()
    session = ResolverSession.from_snapshot(
        loaded, dataset.store, observer=RunObserver()
    )
    restore_s = time.perf_counter() - started
    with session:
        started = time.perf_counter()
        warm_result = session.top_k(args.k)
        warm_run_s = time.perf_counter() - started
        warm_spans = [s["name"] for s in session.last_report.spans]

    identical = _cluster_key(cold_result) == _cluster_key(warm_result)
    prepare_skipped = "adaLSH.prepare" not in warm_spans

    emit_result(
        args.out,
        "serve_smoke",
        config={"records": args.records, "k": args.k, "seed": args.seed},
        timings={
            "cold_prepare_seconds": cold_prepare_s,
            "cold_run_seconds": cold_run_s,
            "snapshot_save_seconds": save_s,
            "snapshot_load_seconds": load_s,
            "warm_restore_seconds": restore_s,
            "warm_run_seconds": warm_run_s,
        },
        payload={
            "scenario": f"adaLSH top-{args.k} on spotsigs({args.records})",
            "snapshot_bytes": snapshot_bytes,
            "warm_hashes_computed": int(warm_result.counters.hashes_computed),
            "identical_clusters": identical,
            "prepare_skipped": prepare_skipped,
            "warm_spans": warm_spans,
        },
    )
    if not identical:
        print("FATAL: warm-start clusters differ from the cold run")
        return 1
    if not prepare_skipped:
        print("FATAL: restored method re-entered prepare()")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
