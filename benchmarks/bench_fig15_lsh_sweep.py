"""Figure 15: adaLSH vs the LSH-X sweep (SpotSigs, k=10, two scales).

Shape: LSH-X execution time is U-shaped in X (too few hashes -> huge
candidate clusters to verify; too many -> hashing dominates); the best
X shifts upward with dataset size; adaLSH beats even the best X without
tuning.
"""

import pytest

from repro.datasets import extend_dataset

from .conftest import SEED, timed_run


def test_fig15_sweep(benchmark, spotsigs, cfg):
    def run():
        rows = []
        for scale in (1, cfg.scales[-1]):
            ds = extend_dataset(spotsigs, scale, seed=SEED + scale)
            t_ada, _ = timed_run(ds, "adaLSH", 10)
            rows.append({"scale": scale, "method": "adaLSH", "time": t_ada})
            for x in cfg.lsh_sweep:
                t, _ = timed_run(ds, f"LSH{x}", 10)
                rows.append({"scale": scale, "method": f"LSH{x}", "time": t})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for row in rows:
        print(f"  scale={row['scale']} {row['method']:>9s}: {row['time']:.3f}s")
    for scale in (1, cfg.scales[-1]):
        scale_rows = [r for r in rows if r["scale"] == scale]
        ada = next(r["time"] for r in scale_rows if r["method"] == "adaLSH")
        lsh_times = {
            r["method"]: r["time"]
            for r in scale_rows
            if r["method"] != "adaLSH"
        }
        best_lsh = min(lsh_times.values())
        # adaLSH is competitive with the best hand-tuned X without any
        # tuning (the paper reports it strictly winning on a testbed
        # where pair comparisons are much more expensive than in this
        # vectorized substrate) and clearly beats the moderate-to-large
        # Xs, which a user without the sweep has no way to avoid.  At
        # the 1x scale absolute times are tens of milliseconds, so the
        # competitiveness bound is looser there.
        factor = 2.0 if scale > 1 else 4.0
        assert ada < factor * best_lsh, scale
        assert ada < lsh_times["LSH320"], scale
        assert ada < lsh_times["LSH1280"], scale
        assert ada * 3.0 < lsh_times[f"LSH{max(cfg.lsh_sweep)}"], scale
        # The sweep is not flat: the worst X costs much more than the
        # best (so tuning X matters — adaLSH's no-tuning advantage).
        assert max(lsh_times.values()) > 2.0 * best_lsh, scale
