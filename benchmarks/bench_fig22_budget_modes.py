"""Figure 22 (Appendix E.2): Exponential vs Linear budget schedules.

Shape: the Exponential mode (20, 40, 80, ...) is the clear winner —
the linear modes front-load hundreds of hashes onto every record.
"""

from repro.eval.experiments import exp_fig22_budget_modes


def test_fig22_budget_modes(benchmark, cfg):
    result = benchmark.pedantic(
        lambda: exp_fig22_budget_modes(cfg, k=10), rounds=1, iterations=1
    )
    print()
    print(result.to_markdown(
        columns=["dataset", "scale", "mode", "time_s", "hashes"]
    ))
    by_key: dict = {}
    for row in result.rows:
        by_key.setdefault((row["dataset"], row["scale"]), {})[row["mode"]] = row
    for (dataset, scale), modes in by_key.items():
        expo = modes["expo"]
        for mode in ("lin320", "lin640", "lin1280"):
            # Exponential computes far fewer hash values...
            assert expo["hashes"] < modes[mode]["hashes"], (dataset, scale, mode)
        # ... and is the fastest (or ties within noise) at scale.
        if scale == max(s for _d, s in by_key):
            fastest = min(r["time_s"] for r in modes.values())
            assert expo["time_s"] < 1.5 * fastest + 0.02, (dataset, scale)
