"""Figure 21 (Appendix E.2): adaLSH sensitivity to cost-model noise.

Shape: adaLSH is insensitive to moderate mis-estimation of cost_P;
only heavy *under*-estimation (nf = 1/5: P fires early on big clusters)
costs real time.
"""

from repro.eval.experiments import exp_fig21_cost_noise


def test_fig21_cost_noise(benchmark, cfg):
    result = benchmark.pedantic(
        lambda: exp_fig21_cost_noise(cfg, ks=(2, 10)), rounds=1, iterations=1
    )
    print()
    print(result.to_markdown(
        columns=["k", "scale", "noise_factor", "time_s", "pairs", "F1"]
    ))
    largest = max(r["scale"] for r in result.rows)
    for k in (2, 10):
        rows = {
            r["noise_factor"]: r
            for r in result.rows
            if r["k"] == k and r["scale"] == largest
        }
        clean = rows[1.0]["time_s"]
        # Moderate noise: within 3x of the clean run.
        for nf in (0.5, 2.0, 5.0):
            assert rows[nf]["time_s"] < 3.0 * clean + 0.05, (k, nf)
        # Accuracy is nearly unaffected by the cost model (it mostly
        # moves work between hashing and P; deferring P can leave a few
        # more clusters as deep-hash outcomes).
        for nf, row in rows.items():
            assert row["F1"] >= rows[1.0]["F1"] - 0.1, (k, nf)
        # Under-estimating P (nf < 1) fires it earlier, i.e. on larger
        # clusters: at least as much pairwise work as the clean model.
        assert rows[0.2]["pairs"] >= rows[1.0]["pairs"]
        # Over-estimating P (nf = 5) defers it: no more pairwise work.
        assert rows[5.0]["pairs"] <= rows[1.0]["pairs"]
