"""Figure 14: Speedup with Recovery and mAP with Recovery (k=5,
SpotSigs scales).

Shape: recovery pushes mAP to ~1 quickly as k_hat grows; the speedup
with recovery is below the speedup without, decreases with k_hat, but
grows with dataset scale.
"""

from repro.eval.experiments import exp_fig14_recovery


def test_fig14_recovery(benchmark, cfg):
    result = benchmark.pedantic(
        lambda: exp_fig14_recovery(cfg, k=5), rounds=1, iterations=1
    )
    print()
    print(result.to_markdown(
        columns=["scale", "k_hat", "speedup_with_recovery", "mAP_rec", "R_rec"]
    ))
    by_scale: dict = {}
    for row in result.rows:
        by_scale.setdefault(row["scale"], []).append(row)
    import numpy as np

    for scale, rows in by_scale.items():
        rows.sort(key=lambda r: r["k_hat"])
        # mAP with recovery converges to ~1.
        assert rows[-1]["mAP_rec"] > 0.95, scale
    # Larger datasets keep a larger mean recovery speedup (wall-time
    # noise at millisecond scale makes endpoint comparisons flaky).
    smallest, largest = min(by_scale), max(by_scale)
    mean_small = np.mean([r["speedup_with_recovery"] for r in by_scale[smallest]])
    mean_large = np.mean([r["speedup_with_recovery"] for r in by_scale[largest]])
    assert mean_large > 0.8 * mean_small
    assert mean_large > 1.0
