"""Ablation: b-bit minhash signatures (paper related work [22]).

b-bit signatures shrink memory per hash by 8x (4-bit vs 32-bit values)
while the scheme designer compensates for the flattened collision curve
with more hashes per table.  The ablation checks accuracy is preserved
and compares the work profile against full-width minhash.
"""

from dataclasses import replace

import pytest

from repro.distance import JaccardDistance, ThresholdRule

from .conftest import timed_run


@pytest.fixture(scope="module")
def bbit_dataset(spotsigs):
    rule = ThresholdRule(JaccardDistance("signatures", minhash_bits=4), 0.6)
    return replace(spotsigs, rule=rule)


@pytest.mark.parametrize("variant", ["full", "4bit"])
def test_adalsh_bbit_time(benchmark, spotsigs, bbit_dataset, variant):
    dataset = spotsigs if variant == "full" else bbit_dataset

    def setup():
        from .conftest import prepared_method

        return (prepared_method(dataset, "adaLSH"),), {}

    result = benchmark.pedantic(
        lambda m: m.run(10), setup=setup, rounds=2, iterations=1
    )
    assert result.k == 10


def test_bbit_preserves_accuracy(benchmark, spotsigs, bbit_dataset):
    def run():
        _, full = timed_run(spotsigs, "adaLSH", 10)
        _, bbit = timed_run(bbit_dataset, "adaLSH", 10)
        return full, bbit

    full, bbit = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  full-width clusters: {[c.size for c in full.clusters]}")
    print(f"  4-bit clusters:      {[c.size for c in bbit.clusters]}")
    assert [c.size for c in bbit.clusters] == [c.size for c in full.clusters]
