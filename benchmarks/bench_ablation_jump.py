"""Ablation: the Line-5 cost-model gate of Algorithm 1.

Compares the calibrated gate against two degenerate policies —
"always hash to the end of the sequence" (P effectively infinitely
expensive) and "always jump to P" (hashing effectively infinitely
expensive) — on the same dataset.  The adaptive gate should beat or
match both extremes on wall time while producing the same clusters.
"""

import pytest

from repro.core import AdaptiveLSH, CostModel, exponential_budgets

from .conftest import SEED
from repro.core.config import AdaptiveConfig


def _run(spotsigs, policy):
    budgets = exponential_budgets()
    if policy == "calibrated":
        model = "calibrate"
    elif policy == "always-hash":
        model = CostModel.from_budgets(budgets, cost_per_hash=1e-12, cost_p=1e9)
    else:  # always-P
        model = CostModel.from_budgets(budgets, cost_per_hash=1e9, cost_p=1e-12)
    method = AdaptiveLSH(spotsigs.store, spotsigs.rule, config=AdaptiveConfig(budgets=budgets, seed=SEED, cost_model=model))
    method.prepare()
    result = method.run(5)
    return result


@pytest.mark.parametrize("policy", ["calibrated", "always-hash", "always-P"])
def test_jump_policy_time(benchmark, spotsigs, policy):
    result = benchmark.pedantic(
        lambda: _run(spotsigs, policy), rounds=2, iterations=1
    )
    assert result.k == 5


def test_gate_never_worse_than_both_extremes(benchmark, spotsigs):
    def run():
        results = {p: _run(spotsigs, p) for p in ("calibrated", "always-hash", "always-P")}
        return {
            p: (r.wall_time, [c.size for c in r.clusters])
            for p, r in results.items()
        }

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n  " + "  ".join(f"{p}={t:.3f}s" for p, (t, _s) in outcome.items()))
    sizes = {tuple(s) for _t, s in outcome.values()}
    assert len(sizes) == 1  # all policies agree on the answer
    t_gate = outcome["calibrated"][0]
    worst = max(outcome["always-hash"][0], outcome["always-P"][0])
    assert t_gate < worst * 1.2
