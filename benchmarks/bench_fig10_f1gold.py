"""Figure 10: F1 Gold for different k values on Cora and SpotSigs.

Shape: all three methods give (nearly) identical F1 — the probabilistic
methods introduce no extra errors over exact Pairs.
"""

from repro.eval.experiments import exp_fig10_f1_gold


def test_fig10_f1_gold(benchmark, cfg):
    result = benchmark.pedantic(
        lambda: exp_fig10_f1_gold(cfg), rounds=1, iterations=1
    )
    print()
    print(result.to_markdown(
        columns=["dataset", "method", "k", "F1", "P", "R", "time_s"]
    ))
    by_key: dict = {}
    for row in result.rows:
        by_key.setdefault((row["dataset"], row["k"]), {})[row["method"]] = row["F1"]
    for (dataset, k), scores in by_key.items():
        # Methods agree with the exact baseline.
        assert abs(scores["adaLSH"] - scores["Pairs"]) < 0.05, (dataset, k)
        assert abs(scores["LSH1280"] - scores["Pairs"]) < 0.05, (dataset, k)
    # Filtering is accurate in absolute terms on these generators too.
    for row in result.rows:
        assert row["F1"] > 0.6
