"""Out-of-core scale benchmark (``make bench-scale``).

Exercises the full million-record-scale serving path end to end:

1. **Streaming build** — :func:`repro.datasets.build_cora_layout`
   writes an ``n``-record Cora to an on-disk columnar layout chunk by
   chunk, so the dataset never exists in memory.
2. **Sharded mmap resolve** — the layout is reopened with
   ``mmap_mode="r"`` and a :class:`repro.serve.ShardedIndex` runs
   Largest-First across ``--shards`` zero-copy slice views, merging
   through the deterministic cross-shard top-k.
3. **Bit-identity gate (small n)** — a planted-cluster store whose
   entities are aligned to shard boundaries is resolved both ways:
   ``--shards`` over the mmap layout vs a single shard fully in
   memory.  The merged clusters must match exactly — content *and*
   leaf order.
4. **Zero-pickle service gate** — a :class:`repro.serve.
   ResolverService` with process workers serves the mmap layout; its
   response must be bit-identical to the in-process
   :class:`ShardedIndex` over the same store, and its
   ``store_pickle_bytes`` counter must be exactly 0 (shard workers
   received :class:`~repro.parallel.sharing.DiskStoreRef` handles,
   never pickled columns).
5. **Peak-RSS ceiling** — ``--max-rss-mb`` (0 disables) gates
   ``getrusage(RUSAGE_SELF).ru_maxrss`` over the whole run.

Timings and gate outcomes land in ``BENCH_scale.json``; any failed
gate is a nonzero exit.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import resource
import tempfile
import time

import numpy as np

from repro.bench import emit_result
from repro.core.config import AdaptiveConfig, config_with
from repro.datasets import build_cora_layout
from repro.distance import CosineDistance, ThresholdRule
from repro.records import RecordStore, Schema
from repro.serve import ResolverService, ServiceConfig, ShardedIndex
from repro.serve.sharding import shard_spans
from repro.storage import StoreLayout


def _peak_rss_mb() -> float:
    # ru_maxrss is KiB on Linux, bytes on macOS.
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return raw / 1024.0 if os.uname().sysname == "Linux" else raw / 2**20


def _layout_bytes(path: str) -> int:
    return sum(
        os.path.getsize(os.path.join(path, name))
        for name in os.listdir(path)
    )


def _planted_store(
    blocks: list[tuple[tuple[int, ...], int]], dim: int = 16, seed: int = 0
) -> RecordStore:
    """Contiguous planted clusters: ``[(sizes, n_noise), ...]`` blocks
    (mirrors the serving test fixture)."""
    rng = np.random.default_rng(seed)
    rows = []
    for sizes, n_noise in blocks:
        for base_scale, size in enumerate(sizes):
            base = rng.normal(size=dim) * (2.0 + base_scale)
            for _ in range(size):
                rows.append(base + rng.normal(scale=0.005, size=dim))
        for _ in range(n_noise):
            rows.append(rng.normal(size=dim) * 8.0)
    return RecordStore(Schema.single_vector(), {"vec": np.asarray(rows)})


def identity_gate(workdir: str, n_shards: int, seed: int) -> dict:
    """4-shard mmap vs single-shard in-memory on a shard-aligned store."""
    # One 40-record block per shard, entities never straddle a span.
    blocks = [((12, 5), 23), ((9, 7), 24), ((10, 6), 24), ((8, 4), 28)]
    store = _planted_store(blocks[:n_shards] if n_shards <= 4 else blocks)
    n = len(store)
    spans = shard_spans(n, n_shards)
    aligned = all(lo % 40 == 0 for lo, _hi in spans)
    mm = StoreLayout.write(store, os.path.join(workdir, "planted.store")).open()
    rule = ThresholdRule(CosineDistance("vec"), 0.15)
    config = AdaptiveConfig(cost_model="analytic", seed=seed)
    k = 6
    with ShardedIndex(mm, rule, n_shards=n_shards, config=config) as sharded:
        multi = sharded.top_k(k)
    with ShardedIndex(store, rule, n_shards=1, config=config) as single:
        mono = single.top_k(k)
    return {
        "n_records": n,
        "spans": [list(s) for s in spans],
        "spans_entity_aligned": aligned,
        "k": k,
        "sharded_sizes": [len(c) for c in multi["clusters"]],
        "identical": multi["clusters"] == mono["clusters"],
    }


async def service_gate(
    layout: StoreLayout, n_shards: int, k: int, seed: int
) -> dict:
    """Process-worker service over the mmap layout: zero pickled
    column bytes, response bit-identical to the in-process index."""
    from repro.io import rule_from_spec

    rule = rule_from_spec(layout.extras["rule"])
    store = layout.open()
    cfg = ServiceConfig(
        n_shards=n_shards, workers="process", seed=seed, batch_window_ms=0.0
    )
    async with ResolverService(store, rule, config=cfg) as svc:
        served = await svc.top_k(k)
        stats = svc.stats()
    config = config_with(cfg.adaptive, seed=seed)
    with ShardedIndex(store, rule, n_shards=n_shards, config=config) as idx:
        direct = idx.top_k(k)
    return {
        "store_backed": bool(stats["store_backed"]),
        "store_pickle_bytes": int(stats["store_pickle_bytes"]),
        "identical_to_sharded_index": served["clusters"] == direct["clusters"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_scale.json")
    parser.add_argument("--records", type=int, default=50_000)
    parser.add_argument("--chunk", type=int, default=50_000)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--max-rss-mb",
        type=float,
        default=0.0,
        help="fail if peak RSS exceeds this many MiB (0 disables)",
    )
    parser.add_argument(
        "--skip-service",
        action="store_true",
        help="skip the process-worker service gate (e.g. no fork)",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="bench_scale_") as workdir:
        # 1. Streaming build ------------------------------------------------
        layout_path = os.path.join(workdir, "cora.store")
        started = time.perf_counter()
        layout = build_cora_layout(
            layout_path,
            args.records,
            chunk_records=args.chunk,
            seed=args.seed,
        )
        build_s = time.perf_counter() - started
        disk_bytes = _layout_bytes(layout_path)

        # 2. Sharded resolve over the mmap open -----------------------------
        from repro.io import rule_from_spec

        store = layout.open()
        rule = rule_from_spec(layout.extras["rule"])
        config = AdaptiveConfig(cost_model="analytic", seed=args.seed)
        started = time.perf_counter()
        with ShardedIndex(
            store, rule, n_shards=args.shards, config=config
        ) as index:
            merged = index.top_k(args.k)
        resolve_s = time.perf_counter() - started

        # 3. Bit-identity gate at small n -----------------------------------
        identity = identity_gate(workdir, args.shards, args.seed)
        if not identity["identical"]:
            failures.append("sharded clusters differ from single-shard run")

        # 4. Zero-pickle service gate ---------------------------------------
        service: dict = {"skipped": True}
        if not args.skip_service:
            service = asyncio.run(
                service_gate(layout, args.shards, args.k, args.seed)
            )
            if service["store_pickle_bytes"] != 0:
                failures.append(
                    f"shard workers pickled "
                    f"{service['store_pickle_bytes']} store bytes"
                )
            if not service["identical_to_sharded_index"]:
                failures.append("served response differs from ShardedIndex")

    # 5. RSS ceiling --------------------------------------------------------
    peak_mb = _peak_rss_mb()
    if args.max_rss_mb > 0 and peak_mb > args.max_rss_mb:
        failures.append(
            f"peak RSS {peak_mb:.0f} MiB exceeds ceiling {args.max_rss_mb} MiB"
        )

    emit_result(
        args.out,
        "bench_scale",
        config={
            "records": args.records,
            "chunk_records": args.chunk,
            "shards": args.shards,
            "k": args.k,
            "seed": args.seed,
            "max_rss_mb": args.max_rss_mb,
        },
        timings={
            "build_seconds": build_s,
            "resolve_seconds": resolve_s,
        },
        payload={
            "scenario": (
                f"streamed cora({args.records}) -> mmap layout -> "
                f"{args.shards}-shard top-{args.k}"
            ),
            "layout_disk_bytes": disk_bytes,
            "resolvable": int(merged["resolvable"]),
            "top_cluster_sizes": [len(c) for c in merged["clusters"]],
            "hashes_computed": int(merged["hashes_computed"]),
            "pairs_compared": int(merged["pairs_compared"]),
            "peak_rss_mb": round(peak_mb, 1),
            "identity_gate": identity,
            "service_gate": service,
            "failures": failures,
        },
    )
    for failure in failures:
        print(f"FATAL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
