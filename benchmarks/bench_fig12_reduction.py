"""Figure 12: dataset reduction %% and Speedup w/o Recovery vs k_hat
across dataset scales (k=5, SpotSigs).

Shape: the output is a small fraction of the dataset (shrinking, in
relative terms, as the dataset grows) and the modeled speedup grows
with scale.
"""

from repro.eval.experiments import exp_fig12_reduction_speedup


def test_fig12_reduction_and_speedup(benchmark, cfg):
    result = benchmark.pedantic(
        lambda: exp_fig12_reduction_speedup(cfg, k=5), rounds=1, iterations=1
    )
    print()
    print(result.to_markdown(
        columns=["scale", "k_hat", "red%", "actual_pct", "speedup_wo_recovery"]
    ))
    by_scale: dict = {}
    for row in result.rows:
        by_scale.setdefault(row["scale"], []).append(row)
    for scale, rows in by_scale.items():
        rows.sort(key=lambda r: r["k_hat"])
        # Output grows with k_hat but never covers the dataset.
        reductions = [r["red%"] for r in rows]
        assert reductions == sorted(reductions)
        assert reductions[-1] < 60.0
        # The output always covers at least the actual top-k records.
        for row in rows:
            assert row["red%"] >= 0.5 * row["actual_pct"]
    # Speedup at the largest scale exceeds speedup at 1x (same k_hat).
    smallest = min(by_scale)
    largest = max(by_scale)
    for row_small, row_large in zip(by_scale[smallest], by_scale[largest]):
        assert (
            row_large["speedup_wo_recovery"]
            > row_small["speedup_wo_recovery"]
        )
    # And the filter is worth it at scale: speedup > 1.
    assert all(r["speedup_wo_recovery"] > 1.0 for r in by_scale[largest])
