"""Figure 17: F1 Gold on PopularImages vs Zipf exponent, for angle
thresholds 2 / 3 / 5 degrees (k=10).

Shape: the stricter the threshold, the lower the F1 (same-entity copies
fall outside the match rule); a lighter tail (higher exponent) gives a
higher F1.
"""

import numpy as np

from repro.eval.experiments import exp_fig17_images_f1


def test_fig17_images_f1(benchmark, cfg):
    result = benchmark.pedantic(
        lambda: exp_fig17_images_f1(cfg, k=10), rounds=1, iterations=1
    )
    print()
    print(result.to_markdown(columns=["threshold_deg", "exponent", "F1", "R"]))
    rows = result.rows

    def f1_of(threshold, exponent):
        return next(
            r["F1"]
            for r in rows
            if r["threshold_deg"] == threshold and r["exponent"] == exponent
        )

    # Averaged over exponents, looser thresholds give higher F1.
    mean_f1 = {
        thr: np.mean([f1_of(thr, e) for e in (1.05, 1.1, 1.2)])
        for thr in (2.0, 3.0, 5.0)
    }
    assert mean_f1[5.0] > mean_f1[2.0]
    assert mean_f1[3.0] >= mean_f1[2.0] - 0.02
    # The loose threshold resolves the entities almost perfectly.
    assert mean_f1[5.0] > 0.9
