"""End-to-end top-k macro benchmark (``make bench-smoke`` / perf gate).

Runs the adaptive method cold on fixed-seed Cora-like and
SpotSigs-like synthetics and records, per scenario, the wall time plus
the two deterministic work counters — ``pairs_compared`` and
``hashes_computed``.  With ``cost_model="analytic"`` and pinned seeds
both counters are exact functions of the code, so they gate perf
regressions the way ``analysis_baseline.json`` gates lint findings:

* ``--write-baseline perf_baseline.json`` records the current counters;
* ``--check-baseline perf_baseline.json`` fails (exit 1) if any
  scenario's counter exceeds the committed value — timing is reported
  but never gated, because CI machines are noisy.

Improvements ratchet the baseline down: re-run ``--write-baseline``
and commit the smaller numbers.

The baseline additionally archives a per-scenario ``wall_seconds_history``
(the last :data:`HISTORY_LIMIT` measurements, appended by every
``--write-baseline``).  ``--check-baseline`` prints each scenario's
trend line next to the current measurement so wall-clock drift is
visible in the ``make perf-gate`` output — reported, never gated,
because CI machines are noisy.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.bench import emit_result
from repro.core.adaptive import AdaptiveLSH
from repro.core.config import AdaptiveConfig
from repro.datasets import generate_cora, generate_spotsigs

#: Gated counters (deterministic); ``wall_seconds`` rides along
#: uncompared.
GATED_COUNTERS = ("pairs_compared", "hashes_computed")

#: Archived ``wall_seconds_history`` entries kept per scenario.
HISTORY_LIMIT = 20


def _scenarios(records: int, seed: int):
    return [
        ("cora", generate_cora(n_records=records, seed=seed)),
        ("spotsigs", generate_spotsigs(n_records=records, seed=seed)),
    ]


def run_scenarios(records: int, seed: int, method_seed: int, k: int):
    out = {}
    for name, dataset in _scenarios(records, seed):
        config = AdaptiveConfig(seed=method_seed, cost_model="analytic")
        started = time.perf_counter()
        with AdaptiveLSH(dataset.store, dataset.rule, config=config) as method:
            result = method.run(k)
        elapsed = time.perf_counter() - started
        out[name] = {
            "records": records,
            "k": k,
            "wall_seconds": round(elapsed, 4),
            "pairs_compared": int(result.counters.pairs_compared),
            "hashes_computed": int(result.counters.hashes_computed),
            "pairs_charged": int(result.counters.pairs_charged),
            "rounds": int(result.counters.rounds),
        }
    return out


def check_baseline(scenarios: dict, baseline: dict) -> list[str]:
    """Counter regressions relative to the committed baseline."""
    failures = []
    for name, expected in baseline.get("scenarios", {}).items():
        actual = scenarios.get(name)
        if actual is None:
            failures.append(f"{name}: scenario missing from this run")
            continue
        for counter in GATED_COUNTERS:
            if actual[counter] > expected[counter]:
                failures.append(
                    f"{name}.{counter}: {actual[counter]} exceeds the "
                    f"baseline {expected[counter]}"
                )
    return failures


def wall_trend_lines(scenarios: dict, baseline: dict) -> list[str]:
    """Per-scenario wall-clock trend lines (reported, never gated)."""
    lines = []
    for name, expected in baseline.get("scenarios", {}).items():
        actual = scenarios.get(name)
        if actual is None:
            continue
        history = expected.get("wall_seconds_history") or [
            expected["wall_seconds"]
        ]
        trend = " -> ".join(f"{w:.4f}" for w in history)
        lines.append(
            f"wall-clock trend [{name}]: {trend} | now {actual['wall_seconds']:.4f}s"
            " (archived, never gated)"
        )
    return lines


def merge_baseline_history(scenarios: dict, previous: dict) -> dict:
    """Scenario entries with ``wall_seconds_history`` carried forward.

    Each ``--write-baseline`` appends the current measurement to the
    prior baseline's history (trimmed to the last ``HISTORY_LIMIT``),
    so the committed file accumulates a wall-clock trend alongside the
    ratcheted counters.
    """
    merged = {}
    for name, entry in scenarios.items():
        prior = previous.get("scenarios", {}).get(name, {})
        history = list(prior.get("wall_seconds_history") or [])
        history.append(entry["wall_seconds"])
        merged[name] = dict(entry)
        merged[name]["wall_seconds_history"] = history[-HISTORY_LIMIT:]
    return merged


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_topk.json")
    parser.add_argument("--records", type=int, default=1000)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--method-seed", type=int, default=3)
    parser.add_argument("--check-baseline", metavar="PATH")
    parser.add_argument("--write-baseline", metavar="PATH")
    args = parser.parse_args(argv)

    scenarios = run_scenarios(args.records, args.seed, args.method_seed, args.k)
    document = emit_result(
        args.out,
        "bench_topk_macro",
        config={
            "records": args.records,
            "k": args.k,
            "data_seed": args.seed,
            "method_seed": args.method_seed,
        },
        timings={
            f"{name}_wall_seconds": entry["wall_seconds"]
            for name, entry in scenarios.items()
        },
        payload={
            "gated_counters": list(GATED_COUNTERS),
            "scenarios": scenarios,
        },
    )

    if args.write_baseline:
        previous: dict = {}
        try:
            with open(args.write_baseline, encoding="utf-8") as fh:
                previous = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            pass
        document["scenarios"] = merge_baseline_history(scenarios, previous)
        with open(args.write_baseline, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2)
            fh.write("\n")
        print(f"baseline written to {args.write_baseline}")
    if args.check_baseline:
        with open(args.check_baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures = check_baseline(scenarios, baseline)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}")
            return 1
        print(f"perf gate OK against {args.check_baseline}")
        for line in wall_trend_lines(scenarios, baseline):
            print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
