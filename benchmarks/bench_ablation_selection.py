"""Ablation: Largest-First cluster selection (Theorem 1) vs
deliberately suboptimal strategies.

Shape: all strategies return the same top-k, but Largest-First does the
least hashing work.
"""

import pytest

from repro.core import AdaptiveLSH

from .conftest import SEED
from repro.core.config import AdaptiveConfig


@pytest.mark.parametrize(
    "selection", ["largest", "largest-unoptimized", "smallest", "random"]
)
def test_selection_strategy_time(benchmark, spotsigs, selection):
    def setup():
        method = AdaptiveLSH(spotsigs.store, spotsigs.rule, config=AdaptiveConfig(seed=SEED, selection=selection))
        method.prepare()
        return (method,), {}

    result = benchmark.pedantic(
        lambda m: m.run(5), setup=setup, rounds=2, iterations=1
    )
    assert result.k == 5


def test_largest_first_minimizes_work(benchmark, spotsigs):
    def run():
        work = {}
        for selection in ("largest", "smallest"):
            method = AdaptiveLSH(spotsigs.store, spotsigs.rule, config=AdaptiveConfig(seed=SEED, selection=selection))
            result = method.run(5)
            work[selection] = (
                result.counters.hashes_computed,
                [c.size for c in result.clusters],
            )
        return work

    work = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  hashes: largest={work['largest'][0]} "
          f"smallest={work['smallest'][0]}")
    assert work["largest"][1] == work["smallest"][1]  # same answer
    assert work["largest"][0] <= work["smallest"][0]  # less work
