"""Figure 7 / Example 5: selecting the (w, z)-scheme for budget 2100.

Asserts the §5.1 monotone trade-off and that the optimizer picks the
largest feasible w (see the experiment's reproduction note about the
paper's Example 5 prose).
"""

from repro.eval.experiments import exp_fig7_scheme_design


def test_fig7_scheme_selection(benchmark, cfg):
    result = benchmark.pedantic(
        lambda: exp_fig7_scheme_design(cfg), rounds=3, iterations=1
    )
    print()
    print(result.to_markdown())
    fixed = {(r["w"], r["z"]): r for r in result.rows[:3]}
    optimum = result.rows[-1]
    # Monotone trade-off in w at fixed budget.
    assert (
        fixed[(15, 140)]["objective"]
        > fixed[(30, 70)]["objective"]
        > fixed[(60, 35)]["objective"]
    )
    assert (
        fixed[(15, 140)]["prob_at_threshold"]
        > fixed[(30, 70)]["prob_at_threshold"]
        > fixed[(60, 35)]["prob_at_threshold"]
    )
    # The designed optimum is feasible and beats every feasible fixed
    # pair on the objective.
    assert optimum["feasible"]
    for row in result.rows[:3]:
        if row["feasible"]:
            assert optimum["objective"] <= row["objective"] + 1e-12
