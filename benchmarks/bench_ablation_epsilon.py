"""Ablation: the constraint slack epsilon of the design programs (§5.1).

A looser epsilon lets the designer pick sharper schemes (larger w),
trading conservative evaluation for selectivity.  The ablation sweeps
epsilon and checks the designed w grows as epsilon loosens, while
accuracy stays high at the paper's default 1e-3.
"""

import pytest

from repro.core import AdaptiveLSH
from repro.lsh.design import build_design_context, design_scheme

from .conftest import SEED
from repro.core.config import AdaptiveConfig


@pytest.mark.parametrize("epsilon", [1e-2, 1e-3, 1e-4])
def test_epsilon_run_time(benchmark, spotsigs, epsilon):
    def setup():
        method = AdaptiveLSH(spotsigs.store, spotsigs.rule, config=AdaptiveConfig(seed=SEED, epsilon=epsilon))
        method.prepare()
        return (method,), {}

    result = benchmark.pedantic(
        lambda m: m.run(10), setup=setup, rounds=2, iterations=1
    )
    assert result.k == 10


def test_design_sharpness_grows_with_epsilon(benchmark, spotsigs):
    def run():
        ws = {}
        for epsilon in (1e-4, 1e-3, 1e-2):
            ctx = build_design_context(spotsigs.store, spotsigs.rule, seed=SEED)
            design = design_scheme(ctx, 1280, epsilon=epsilon)
            ws[epsilon] = design.groups[0].ws[0]
        return ws

    ws = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  designed w by epsilon: {ws}")
    assert ws[1e-2] >= ws[1e-3] >= ws[1e-4]


def test_default_epsilon_accuracy(benchmark, spotsigs):
    def run():
        tight = AdaptiveLSH(spotsigs.store, spotsigs.rule, config=AdaptiveConfig(seed=SEED, epsilon=1e-3)).run(10)
        loose = AdaptiveLSH(spotsigs.store, spotsigs.rule, config=AdaptiveConfig(seed=SEED, epsilon=1e-2)).run(10)
        return tight, loose

    tight, loose = benchmark.pedantic(run, rounds=1, iterations=1)
    # Both epsilon levels find the same top-10 sizes on this dataset.
    assert [c.size for c in tight.clusters] == [c.size for c in loose.clusters]
