"""Figure 20 (Appendix E.1): first-stage-only LSH variants.

Shape: the nP variants are fast but inaccurate in F1-*target* terms
(compared to the exact Pairs outcome), with LSH20nP far worse than
LSH640nP and degrading with scale; verified variants and adaLSH stay
near F1 target 1.0.
"""

from repro.eval.experiments import exp_fig20_np_variants


def test_fig20_np_variants(benchmark, cfg):
    result = benchmark.pedantic(
        lambda: exp_fig20_np_variants(cfg, k=10), rounds=1, iterations=1
    )
    print()
    print(result.to_markdown(
        columns=["scale", "method", "time_s", "F1_target", "sizes_match_target"]
    ))
    by_scale: dict = {}
    for row in result.rows:
        by_scale.setdefault(row["scale"], {})[row["method"]] = row

    def tracks_target(row):
        # "Same or very slightly different outcome" (§7.1): either the
        # records agree, or the output is an equally valid top-k made of
        # tied-size entities (F1 target punishes such ties).
        return row["F1_target"] > 0.9 or row["sizes_match_target"]

    for scale, methods in by_scale.items():
        assert tracks_target(methods["adaLSH"]), scale
        assert tracks_target(methods["LSH640"]), scale
        # The 20-hash first stage alone is wildly inaccurate.
        assert methods["LSH20nP"]["F1_target"] < 0.8, scale
        # More hashes make the unverified variant better.
        assert (
            methods["LSH640nP"]["F1_target"]
            >= methods["LSH20nP"]["F1_target"]
        ), scale
    # LSH20nP accuracy degrades (weakly) as the dataset grows.
    scales = sorted(by_scale)
    assert (
        by_scale[scales[-1]]["LSH20nP"]["F1_target"]
        <= by_scale[scales[0]]["LSH20nP"]["F1_target"] + 0.05
    )
