"""Kernel-backend bit-identity gate + micro-benchmarks.

For each generator at the macro benchmark's scale (1000 records) this
runs the two hot micro-kernels — minhash signature blocks and pairwise
Jaccard verification — once per backend (``numpy`` reference oracle vs
``packed``) and an end-to-end ``adaptive_filter`` per backend, then
writes ``BENCH_kernels.json``.

The **gate** (exit 1) is bit-identity: packed signatures, pairwise
distances, rule verdicts, and final clusters must all equal the
reference exactly.  Wall-clock speedups are archived in the JSON but
never gated — CI machines are noisy; the committed numbers document
the packed backend's wins (bitset-kind data like Cora shingle fields
speeds up severalfold; huge-vocabulary data like SpotSigs lands at
parity by design, see docs/PERFORMANCE.md "Kernel backends").
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import AdaptiveConfig, adaptive_filter
from repro.bench import emit_result
from repro.datasets import generate_cora, generate_spotsigs
from repro.distance.jaccard import JaccardDistance
from repro.kernels import KERNEL_NAMES, use_kernels
from repro.lsh.minhash import MinHashFamily

#: Shingle field timed by the signature micro-kernel, per generator.
SIG_FIELDS = {"cora": "title", "spotsigs": "signatures"}


def _best_of(fn, repeats: int):
    """(best wall seconds, last output) of ``repeats`` calls."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        started = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - started)
    return best, out


def bench_dataset(name, dataset, args, failures: list[str]) -> dict:
    store, rule = dataset.store, dataset.rule
    field = SIG_FIELDS[name]
    rids = np.arange(len(store), dtype=np.int64)
    rng = np.random.default_rng(args.seed)
    pair_a = rng.integers(0, len(store), size=args.pairs).astype(np.int64)
    pair_b = rng.integers(0, len(store), size=args.pairs).astype(np.int64)
    dist = JaccardDistance(field)

    entry: dict = {"records": len(store), "field": field}
    sig_out: dict[str, np.ndarray] = {}
    dist_out: dict[str, np.ndarray] = {}
    verdict_out: dict[str, np.ndarray] = {}
    cluster_out: dict[str, list] = {}

    for backend in KERNEL_NAMES:
        started = time.perf_counter()
        family = MinHashFamily(store, field, seed=0, kernels=backend)
        pack_s = time.perf_counter() - started
        sig_s, sig = _best_of(
            lambda: family.compute(rids, 0, args.hashes), args.repeats
        )
        sig_out[backend] = sig

        with use_kernels(backend):
            pairs_s, dists = _best_of(
                lambda: dist.pairs(store, pair_a, pair_b), args.repeats
            )
            verdict_out[backend] = rule.match_pairs(store, pair_a, pair_b)
        dist_out[backend] = dists

        config = AdaptiveConfig(
            seed=args.method_seed, cost_model="analytic", kernels=backend
        )
        e2e_started = time.perf_counter()
        result = adaptive_filter(store, rule, args.k, config=config)
        e2e_s = time.perf_counter() - e2e_started
        cluster_out[backend] = [
            tuple(int(r) for r in c.rids) for c in result.clusters
        ]
        entry[backend] = {
            "pack_seconds": round(pack_s, 5),
            "signature_seconds": round(sig_s, 5),
            "pairwise_seconds": round(pairs_s, 5),
            "end_to_end_seconds": round(e2e_s, 5),
        }

    ref, packed = KERNEL_NAMES[0], "packed"
    if not np.array_equal(sig_out[ref], sig_out[packed]):
        failures.append(f"{name}: packed signatures differ from reference")
    if not np.array_equal(dist_out[ref], dist_out[packed]):
        failures.append(f"{name}: packed distances differ from reference")
    if not np.array_equal(verdict_out[ref], verdict_out[packed]):
        failures.append(f"{name}: packed match verdicts differ from reference")
    if cluster_out[ref] != cluster_out[packed]:
        failures.append(f"{name}: packed final clusters differ from reference")

    entry["speedup_signature"] = round(
        entry[ref]["signature_seconds"] / entry[packed]["signature_seconds"], 3
    )
    entry["speedup_pairwise"] = round(
        entry[ref]["pairwise_seconds"] / entry[packed]["pairwise_seconds"], 3
    )
    entry["identical"] = not any(f.startswith(name) for f in failures)
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_kernels.json")
    parser.add_argument("--records", type=int, default=1000)
    parser.add_argument("--hashes", type=int, default=128)
    parser.add_argument("--pairs", type=int, default=65536)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--method-seed", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    failures: list[str] = []
    started = time.perf_counter()
    datasets = {
        "cora": bench_dataset(
            "cora", generate_cora(n_records=args.records, seed=args.seed),
            args, failures,
        ),
        "spotsigs": bench_dataset(
            "spotsigs",
            generate_spotsigs(n_records=args.records, seed=args.seed),
            args, failures,
        ),
    }
    total_s = time.perf_counter() - started

    emit_result(
        args.out,
        "bench_kernels",
        config={
            "records": args.records,
            "hashes": args.hashes,
            "pairs": args.pairs,
            "k": args.k,
            "seed": args.seed,
            "method_seed": args.method_seed,
            "repeats": args.repeats,
        },
        timings={"total_seconds": total_s},
        payload={
            "backends": list(KERNEL_NAMES),
            "gated": ["signatures", "distances", "verdicts", "clusters"],
            "datasets": datasets,
            "failures": failures,
        },
    )
    for failure in failures:
        print(f"FATAL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
