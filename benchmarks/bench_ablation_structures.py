"""Ablation: the Appendix-B data structures.

Benchmarks the parent-pointer forest against the plain array union-find
on the same random merge workload, and the bin index against sort-based
largest-first selection — the operations Algorithm 1's inner loop is
made of.
"""

import numpy as np
import pytest

from repro.structures import BinIndex, ParentPointerForest, UnionFind

N = 20_000
RNG = np.random.default_rng(7)
EDGES = RNG.integers(0, N, size=(N, 2))
SIZES = RNG.integers(1, 1 << 20, size=4000).tolist()


def test_parent_pointer_forest_merge(benchmark):
    def run():
        forest = ParentPointerForest()
        for rid in range(N):
            forest.make_singleton(rid)
        for a, b in EDGES:
            forest.union_records(int(a), int(b))
        return len(forest.roots())

    roots = benchmark(run)
    assert roots >= 1


def test_union_find_merge(benchmark):
    def run():
        uf = UnionFind(N)
        for a, b in EDGES:
            uf.union(int(a), int(b))
        return len(uf.components())

    comps = benchmark(run)
    assert comps >= 1


def test_structures_agree(benchmark):
    def run():
        forest = ParentPointerForest()
        uf = UnionFind(N)
        for rid in range(N):
            forest.make_singleton(rid)
        for a, b in EDGES[:2000]:
            forest.union_records(int(a), int(b))
            uf.union(int(a), int(b))
        return len(forest.roots()), len(uf.components())

    forest_roots, uf_comps = benchmark.pedantic(run, rounds=1, iterations=1)
    assert forest_roots == uf_comps


def test_bin_index_pop_largest(benchmark):
    def run():
        bins = BinIndex()
        for i, size in enumerate(SIZES):
            bins.add(i, size)
        out = []
        while bins:
            out.append(bins.pop_largest()[0])
        return out

    out = benchmark(run)
    assert out == sorted(SIZES, reverse=True)


def test_sorted_list_pop_largest(benchmark):
    """The naive alternative the bin index replaces."""

    def run():
        items = list(enumerate(SIZES))
        out = []
        while items:
            items.sort(key=lambda pair: pair[1])
            _idx, size = items.pop()
            out.append(size)
        return out

    out = benchmark(run)
    assert out == sorted(SIZES, reverse=True)
