"""Pair-verdict memo benchmark (``make bench-smoke``).

Replays the motivating multi-round scenario for
:class:`~repro.core.pairmemo.PairVerdictMemo`: records stream into a
:class:`~repro.online.StreamingTopK` in batches, with a ``top_k`` query
after every batch.  Consecutive queries re-refine mostly-unchanged
clusters, so without memoization the same record pairs are re-verified
query after query.  The benchmark runs the scenario twice — memo off,
memo on — verifies the outputs are bit-identical, and writes the
``pairs_compared`` totals to ``BENCH_memo.json``.

Fails (exit 1) if the outputs differ or the memoized run saves less
than ``--min-reduction`` (default 30%) of the pair comparisons.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.bench import emit_result
from repro.core.config import AdaptiveConfig
from repro.datasets import generate_cora
from repro.online import StreamingTopK


def _run(dataset, k, batches, *, seed, pair_memo):
    config = AdaptiveConfig(seed=seed, cost_model="analytic", pair_memo=pair_memo)
    stream = StreamingTopK(dataset.store, dataset.rule, config=config)
    per_query = []
    outputs = []
    started = time.perf_counter()
    try:
        for batch in batches:
            stream.insert_many(batch)
            result = stream.top_k(k)
            per_query.append(int(result.counters.pairs_compared))
            outputs.append([tuple(int(r) for r in c.rids) for c in result.clusters])
        memo_stats = result.pair_memo_stats
    finally:
        stream.method.close()
    elapsed = time.perf_counter() - started
    return {
        "pairs_compared_total": int(sum(per_query)),
        "pairs_compared_per_query": per_query,
        "seconds": round(elapsed, 4),
        "memo": memo_stats,
    }, outputs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_memo.json")
    parser.add_argument("--records", type=int, default=1200)
    parser.add_argument("--batches", type=int, default=6)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--method-seed", type=int, default=3)
    parser.add_argument("--min-reduction", type=float, default=0.30)
    args = parser.parse_args(argv)

    dataset = generate_cora(n_records=args.records, seed=args.seed)
    rids = np.arange(len(dataset.store), dtype=np.int64)
    batches = np.array_split(rids, args.batches)

    off, off_outputs = _run(
        dataset, args.k, batches, seed=args.method_seed, pair_memo=False
    )
    on, on_outputs = _run(
        dataset, args.k, batches, seed=args.method_seed, pair_memo=True
    )

    identical = off_outputs == on_outputs
    baseline = off["pairs_compared_total"]
    reduction = 1.0 - on["pairs_compared_total"] / baseline if baseline else 0.0

    emit_result(
        args.out,
        "bench_memo",
        config={
            "records": args.records,
            "batches": args.batches,
            "k": args.k,
            "seed": args.seed,
            "method_seed": args.method_seed,
            "min_reduction": args.min_reduction,
        },
        timings={
            "memo_off_seconds": off["seconds"],
            "memo_on_seconds": on["seconds"],
        },
        payload={
            "scenario": (
                f"StreamingTopK on cora({args.records}), "
                f"{args.batches} insert+query rounds"
            ),
            "memo_off": off,
            "memo_on": on,
            "pairs_compared_reduction": round(reduction, 4),
            "identical_outputs": identical,
        },
    )
    if not identical:
        print("FATAL: memoized outputs differ from non-memoized outputs")
        return 1
    if reduction < args.min_reduction:
        print(
            f"FATAL: pairs_compared reduction {reduction:.1%} is below the "
            f"required {args.min_reduction:.0%}"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
