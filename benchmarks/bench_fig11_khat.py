"""Figure 11: precision/recall gold vs k_hat (k=5) on SpotSigs, for
similarity thresholds 0.3 / 0.4 / 0.5.

Shape: recall rises towards 1 as k_hat grows; precision decays.
"""

from repro.eval.experiments import exp_fig11_accuracy_vs_khat


def test_fig11_precision_recall_vs_khat(benchmark, cfg):
    result = benchmark.pedantic(
        lambda: exp_fig11_accuracy_vs_khat(cfg, k=5), rounds=1, iterations=1
    )
    print()
    print(result.to_markdown(
        columns=["similarity_thr", "k_hat", "P", "R", "out"]
    ))
    series: dict = {}
    for row in result.rows:
        series.setdefault(row["similarity_thr"], []).append(
            (row["k_hat"], row["R"], row["P"])
        )
    for thr, points in series.items():
        points.sort()
        recalls = [r for _, r, _ in points]
        precisions = [p for _, _, p in points]
        # Recall is (weakly) improved by asking for more clusters and
        # ends high; precision ends no higher than it starts.
        assert recalls[-1] >= recalls[0] - 1e-9, thr
        assert recalls[-1] > 0.75, thr
        assert precisions[-1] <= precisions[0] + 1e-9, thr
