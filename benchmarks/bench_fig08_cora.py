"""Figure 8: execution time on Cora — (a) vs k, (b) vs dataset size.

Each parameterized case times one filtering method (offline design and
calibration excluded), so the pytest-benchmark table reads like the
paper's plot.  Shape assertions: adaLSH time is nearly flat in k and
clearly below LSH1280 at every scale; the adaLSH-vs-Pairs speedup grows
with dataset size.
"""

import pytest

from repro.datasets import extend_dataset

from .conftest import SEED, prepared_method, timed_run

METHODS = ("adaLSH", "LSH1280", "Pairs")


@pytest.mark.parametrize("k", [2, 5, 10, 20])
@pytest.mark.parametrize("spec", METHODS)
def test_fig8a_time_vs_k(benchmark, cora, spec, k):
    def setup():
        return (prepared_method(cora, spec),), {}

    result = benchmark.pedantic(
        lambda m: m.run(k), setup=setup, rounds=2, iterations=1
    )
    assert result.k == k
    sizes = [c.size for c in result.clusters]
    assert sizes == sorted(sizes, reverse=True)


def test_fig8a_adalsh_flat_in_k(benchmark, cora):
    """adaLSH's k=20 run stays within a small factor of its k=2 run (paper: the
    time 'just slightly increases' with k)."""

    def run():
        t2, _ = timed_run(cora, "adaLSH", 2)
        t20, _ = timed_run(cora, "adaLSH", 20)
        return t2, t20

    t2, t20 = benchmark.pedantic(run, rounds=1, iterations=1)
    # At bench scale absolute times are milliseconds, so allow a fixed
    # overhead floor on top of the relative bound.
    assert t20 < max(6.0 * t2, t2 + 0.25)


def test_fig8b_time_vs_size(benchmark, cora, cfg):
    """adaLSH beats LSH1280 at every scale; its advantage over Pairs
    grows as the dataset grows (Pairs is quadratic)."""

    def run():
        rows = []
        for scale in cfg.scales:
            ds = extend_dataset(cora, scale, seed=SEED + scale)
            times = {spec: timed_run(ds, spec, 10)[0] for spec in METHODS}
            rows.append((scale, len(ds), times))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for scale, n, times in rows:
        print(
            f"  Cora{scale}x (n={n}): "
            + "  ".join(f"{m}={t:.3f}s" for m, t in times.items())
        )
    for _scale, _n, times in rows:
        assert times["adaLSH"] < times["LSH1280"]
    first, last = rows[0][2], rows[-1][2]
    ratio_small = first["Pairs"] / max(first["adaLSH"], 1e-9)
    ratio_large = last["Pairs"] / max(last["adaLSH"], 1e-9)
    assert ratio_large > ratio_small
