"""Rowwise-vs-blocked crossover microbenchmark for ``P``.

This is the measurement behind
:data:`repro.core.pairwise_fn.ROWWISE_LIMIT`: it times both strategies
on the kind of input Adaptive LSH actually hands to ``P`` — small
near-duplicate clusters (where transitive skipping removes most
comparisons) and sparse mixed sets (where it removes none).  The
pytest-benchmark table shows rowwise winning ~2x at 8 records and
below (both regimes), crossing over around 12, and losing beyond —
mildly at 16, ~4x at 32, and quadratically from there, which is why
the limit is biased toward the low end of the crossover.  The
semantics assertions double as a strategy-equivalence check at each
size.
"""

import numpy as np
import pytest

from repro.core.pairwise_fn import PairwiseComputation
from repro.distance import JaccardDistance, ThresholdRule

from .conftest import SEED

SIZES = (4, 8, 16, 32, 64, 128)


@pytest.fixture(scope="module")
def scenario(spotsigs):
    rule = ThresholdRule(JaccardDistance("signatures"), 0.56)
    return spotsigs, rule


def _cluster_of(dataset, m, seed, dense):
    """A P-style input of ``m`` records.

    ``dense`` mimics what Adaptive LSH hands to ``P`` — records of one
    entity plus a few strays, where transitive skipping collapses most
    comparisons.  Sparse inputs (records of many distinct entities) are
    the regime where skipping saves nothing.
    """
    rng = np.random.default_rng(seed)
    if dense:
        order = np.argsort(dataset.labels, kind="stable")
        core = order[: max(1, (3 * m) // 4)]
        rest = np.setdiff1d(np.arange(len(dataset)), core)
        strays = rng.choice(rest, size=m - core.size, replace=False)
        rids = np.concatenate([core, strays])
    else:
        rids = rng.choice(len(dataset), size=m, replace=False)
    return np.sort(np.asarray(rids, dtype=np.int64))


@pytest.mark.parametrize("m", SIZES)
@pytest.mark.parametrize("density", ["dense", "sparse"])
@pytest.mark.parametrize("strategy", ["rowwise", "blocked"])
def test_crossover(benchmark, scenario, strategy, density, m):
    dataset, rule = scenario
    store = dataset.store
    rids = _cluster_of(dataset, m, SEED + m, dense=density == "dense")
    pc = PairwiseComputation(store, rule, strategy=strategy)
    clusters = benchmark(pc.apply, rids)
    # Both strategies must agree on the components at every size.
    reference = PairwiseComputation(store, rule, strategy="rowwise").apply(rids)
    assert {frozenset(map(int, c)) for c in clusters} == {
        frozenset(map(int, c)) for c in reference
    }


def test_auto_matches_measured_crossover(scenario):
    """``auto`` must sit on the measured boundary: rowwise for inputs
    up to ROWWISE_LIMIT, blocked beyond."""
    from repro.core.pairwise_fn import ROWWISE_LIMIT

    store, rule = scenario
    pc = PairwiseComputation(store, rule, strategy="auto")
    for m in SIZES:
        expected = "rowwise" if m <= ROWWISE_LIMIT else "blocked"
        assert pc.choose_strategy(m) == expected
