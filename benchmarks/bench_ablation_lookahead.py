"""Ablation: the Appendix-D.2 lookahead jump policy.

Theorem 1's optimality holds within the family of algorithms that never
jump ahead of the Line-5 gate; Appendix D.2 sketches when breaking that
assumption could pay: a cluster that (a sample says) will not split is
going to ride the ladder to H_L for nothing, so paying P early wins.

The ablation compares line5 vs lookahead on a dense-blob workload
(single dominant entity) and on ordinary SpotSigs data, asserting the
lookahead never changes the answer and wins on the dense workload.
"""

import numpy as np
import pytest

from repro.core import AdaptiveLSH, CostModel
from repro.records import RecordStore, Schema
from repro.distance import CosineDistance, ThresholdRule

from .conftest import SEED
from repro.core.config import AdaptiveConfig

BUDGETS = [20, 40, 80, 160, 320, 640, 1280, 2560]


@pytest.fixture(scope="module")
def dense_blob():
    """One dominant dense entity plus background noise."""
    rng = np.random.default_rng(13)
    rows = []
    base = rng.normal(size=24)
    for _ in range(300):
        rows.append(base + rng.normal(scale=0.004, size=24))
    for _ in range(700):
        rows.append(rng.normal(size=24))
    store = RecordStore(Schema.single_vector(), {"vec": np.asarray(rows)})
    rule = ThresholdRule(CosineDistance("vec"), 8 / 180.0)
    return store, rule


def run_policy(store, rule, policy, k=1):
    model = CostModel.from_budgets(BUDGETS, cost_p=10.0)
    method = AdaptiveLSH(store, rule, config=AdaptiveConfig(budgets=BUDGETS, seed=SEED, cost_model=model, jump_policy=policy))
    method.prepare()
    return method.run(k)


@pytest.mark.parametrize("policy", ["line5", "lookahead"])
def test_policy_time_dense_blob(benchmark, dense_blob, policy):
    store, rule = dense_blob
    result = benchmark.pedantic(
        lambda: run_policy(store, rule, policy), rounds=2, iterations=1
    )
    assert result.clusters[0].size == 300


def test_lookahead_saves_hashing_on_dense_blob(benchmark, dense_blob):
    store, rule = dense_blob

    def run():
        line5 = run_policy(store, rule, "line5")
        look = run_policy(store, rule, "lookahead")
        return line5, look

    line5, look = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  hashes: line5={line5.counters.hashes_computed} "
          f"lookahead={look.counters.hashes_computed}")
    assert [c.size for c in look.clusters] == [c.size for c in line5.clusters]
    assert look.counters.hashes_computed < line5.counters.hashes_computed


def test_lookahead_harmless_on_spotsigs(benchmark, spotsigs):
    def run():
        line5 = AdaptiveLSH(spotsigs.store, spotsigs.rule, config=AdaptiveConfig(seed=SEED, jump_policy="line5")).run(5)
        look = AdaptiveLSH(spotsigs.store, spotsigs.rule, config=AdaptiveConfig(seed=SEED, jump_policy="lookahead")).run(5)
        return line5, look

    line5, look = benchmark.pedantic(run, rounds=1, iterations=1)
    assert [c.size for c in look.clusters] == [c.size for c in line5.clusters]
