"""Figure 13: mAP and mAR vs k_hat for several k values (SpotSigs).

Shape: mAP reaches ~1 as k_hat grows; ranked metrics are at least as
good as the set metrics (higher-ranked entities are more accurate).
"""

from repro.eval.experiments import exp_fig13_map_mar


def test_fig13_map_mar(benchmark, cfg):
    result = benchmark.pedantic(
        lambda: exp_fig13_map_mar(cfg), rounds=1, iterations=1
    )
    print()
    print(result.to_markdown(
        columns=["k", "k_hat", "mAP", "mAR", "P", "R"]
    ))
    by_k: dict = {}
    for row in result.rows:
        by_k.setdefault(row["k"], []).append(row)
    for k, rows in by_k.items():
        rows.sort(key=lambda r: r["k_hat"])
        # mAP improves (weakly) with k_hat and ends high.
        maps = [r["mAP"] for r in rows]
        assert maps[-1] >= maps[0] - 1e-9
        assert maps[-1] > 0.9, k
    # §7.3.3's comparison: at k = k_hat = 5 the ranked precision is at
    # least the set precision.
    for row in result.rows:
        if row["k"] == 5 and row["k_hat"] == 5:
            assert row["mAP"] >= row["P"] - 0.05
