"""Streaming top-k monitoring (the paper's §9 future-work setting).

Articles arrive over time; an editor wants the current most-republished
stories on demand.  StreamingTopK pays only the cheapest hashing
function per arriving article and runs the adaptive refinement at query
time — reusing all cached hash values, so repeated queries get cheaper.

Run:  python examples/streaming_monitor.py
"""

import time

import numpy as np

from repro import AdaptiveConfig, StreamingTopK, generate_spotsigs

K = 3
BATCHES = 5


def main() -> None:
    dataset = generate_spotsigs(n_records=2000, seed=11)
    stream = StreamingTopK(
        dataset.store, dataset.rule, config=AdaptiveConfig(seed=11)
    )

    arrival_order = np.random.default_rng(0).permutation(len(dataset))
    batches = np.array_split(arrival_order, BATCHES)

    for step, batch in enumerate(batches, 1):
        started = time.perf_counter()
        stream.insert_many(batch)
        ingest = time.perf_counter() - started

        started = time.perf_counter()
        snapshot = stream.top_k(K)
        query = time.perf_counter() - started

        sizes = [c.size for c in snapshot.clusters]
        print(
            f"after batch {step}/{BATCHES} ({stream.n_seen:>5} articles): "
            f"top-{K} stories {sizes}  "
            f"[ingest {ingest * 1e3:.0f} ms, query {query * 1e3:.0f} ms, "
            f"{snapshot.counters.hashes_computed} new hashes]"
        )

    truth = [len(c) for c in dataset.ground_truth_clusters()[:K]]
    print(f"\nground-truth top-{K} story sizes: {truth}")


if __name__ == "__main__":
    main()
