"""Top-k news stories: the paper's web-article motivation (§1).

Many outlets republish the same story with small edits.  Each article
is reduced to a set of *spot signatures*; articles of one story have a
high Jaccard similarity.  We want the k most-republished stories for a
news summary — without resolving the whole corpus.

The script runs the full Figure-1 pipeline: adaptive-LSH filtering,
exact ER on the reduced dataset, and the recovery pass, then reports
accuracy and the benchmark-ER speedup.

Run:  python examples/news_deduplication.py
"""

from repro import (
    AdaptiveConfig,
    AdaptiveLSH,
    SpeedupModel,
    TopKPipeline,
    generate_spotsigs,
)
from repro.eval.metrics import map_mar, precision_recall_f1

K = 5


def main() -> None:
    dataset = generate_spotsigs(n_records=2200, seed=7)
    print(
        f"corpus: {len(dataset)} articles, "
        f"{dataset.info['n_popular']} popular stories, "
        f"top-{K} stories cover {dataset.top_k_fraction(K):.1%} of articles"
    )

    method = AdaptiveLSH(dataset.store, dataset.rule, config=AdaptiveConfig(seed=7))
    # Ask the filter for a few extra clusters (k_hat > k) to push
    # recall up (§6.1.2), then recover stragglers after ER.
    pipeline = TopKPipeline(dataset, method, recover=True, k_hat=10)
    outcome = pipeline.run(K)

    print(f"\nfiltering:  {outcome.filter_result.wall_time:.3f}s "
          f"({outcome.filter_result.output_size} articles kept)")
    print(f"ER stage:   {outcome.er_time:.3f}s")
    print(f"recovery:   {outcome.recovery_time:.3f}s")

    truth = dataset.ground_truth_clusters()
    map_score, mar_score = map_mar(outcome.entities, truth, K)
    p, r, f1 = precision_recall_f1(
        [rid for cluster in outcome.entities for rid in cluster],
        dataset.top_k_rids(K),
    )
    print(f"\naccuracy vs ground truth: F1={f1:.3f}  mAP={map_score:.3f} "
          f"mAR={mar_score:.3f}")

    print(f"\ntop-{K} stories:")
    for rank, cluster in enumerate(outcome.entities, 1):
        print(f"  #{rank}: republished {len(cluster)} times")

    model = SpeedupModel.measure(dataset.store, dataset.rule, seed=7)
    speedup = model.speedup_with_recovery(
        outcome.filter_result.wall_time, outcome.filter_result.output_size
    )
    print(f"\nspeedup vs benchmark ER on the whole corpus "
          f"(with recovery): {speedup:.1f}x")


if __name__ == "__main__":
    main()
