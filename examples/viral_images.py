"""Viral images in social media: the paper's image motivation (§1).

Images get copied with transformations (cropping, scaling,
re-centering); the paper reduces each image to an RGB histogram and
matches copies by histogram angle.  The k most-shared originals are
exactly the top-k entities.

The script compares the three angle thresholds the paper evaluates
(2, 3, 5 degrees) and shows the accuracy/performance trade-off of
Figure 16/17, plus incremental mode: the most viral image is reported
before the rest of the top-k is resolved.

Run:  python examples/viral_images.py
"""

import time

from repro import (
    AdaptiveConfig,
    AdaptiveLSH,
    generate_popular_images,
    precision_recall_f1,
)
from repro.datasets.popularimages import images_rule

K = 5


def main() -> None:
    dataset = generate_popular_images(
        n_records=4000, n_popular=200, zipf_exponent=1.1, top1_size=400, seed=3
    )
    print(
        f"corpus: {len(dataset)} images, top-1 original shared "
        f"{dataset.entity_sizes()[0]} times"
    )

    for degrees in (2.0, 3.0, 5.0):
        rule = images_rule(degrees)
        method = AdaptiveLSH(dataset.store, rule, config=AdaptiveConfig(seed=3))
        result = method.run(K)
        p, r, f1 = precision_recall_f1(
            result.output_rids, dataset.top_k_rids(K)
        )
        print(
            f"  threshold {degrees:.0f} deg: {result.wall_time:.3f}s  "
            f"F1={f1:.3f}  top sizes={[c.size for c in result.clusters]}"
        )

    # Incremental mode: report the most viral image as soon as known.
    method = AdaptiveLSH(
        dataset.store, images_rule(5.0), config=AdaptiveConfig(seed=3)
    )
    method.prepare()
    started = time.perf_counter()
    clusters = method.iter_clusters(K)
    top1 = next(clusters)
    t_first = time.perf_counter() - started
    rest = list(clusters)
    t_full = time.perf_counter() - started
    print(
        f"\nincremental mode: most viral image ({top1.size} copies) known "
        f"after {t_first * 1e3:.0f} ms; full top-{K} after {t_full * 1e3:.0f} ms"
    )


if __name__ == "__main__":
    main()
