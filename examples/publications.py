"""Multi-field publication records: the paper's Cora setting (§6.3).

Each record has title / authors / venue+pages fields; two records refer
to the same publication when the *average* Jaccard similarity of title
and authors is at least 0.7 AND the rest-field similarity is at least
0.2 — the Appendix C.4 combined rule, hashed with a weighted-mixture
family AND-ed with a plain minhash family.

Run:  python examples/publications.py
"""

from repro import AdaptiveConfig, AdaptiveLSH, generate_cora

K = 3


def main() -> None:
    dataset = generate_cora(n_records=2000, seed=5)
    print(f"dataset: {len(dataset)} publication records")
    print(f"match rule: {dataset.rule!r}\n")

    method = AdaptiveLSH(dataset.store, dataset.rule, config=AdaptiveConfig(seed=5))
    result = method.run(K)

    print(
        f"filtered in {result.wall_time:.3f}s; designed sequence: "
    )
    for level, description in enumerate(result.info["designs"], 1):
        print(f"  H_{level}: {description}")

    raw = dataset.info["raw"]
    print(f"\ntop-{K} most-duplicated publications:")
    for rank, cluster in enumerate(result.clusters, 1):
        sample = raw[int(cluster.rids[0])]
        print(f"  #{rank} ({cluster.size} records)")
        print(f"      title:   {sample['title'][:60]}")
        print(f"      authors: {sample['authors'][:60]}")
        # Show one duplicate's (corrupted) title for flavour.
        dup = raw[int(cluster.rids[1])]
        print(f"      dup #2:  {dup['title'][:60]}")

    hist = result.info["records_per_level"]
    shallow = sum(count for level, count in hist.items() if level <= 2)
    print(
        f"\nadaptivity: {shallow}/{len(dataset)} records stopped after "
        f"at most two (cheap) hashing functions"
    )


if __name__ == "__main__":
    main()
