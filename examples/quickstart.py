"""Quickstart: find the k largest entities in a vector dataset.

Builds a small synthetic dataset of 2-D-ish feature vectors with three
planted "popular" entities, then runs the adaptive-LSH filter and
compares with the exact Pairs baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AdaptiveConfig,
    AdaptiveLSH,
    CosineDistance,
    PairsBaseline,
    RecordStore,
    Schema,
    ThresholdRule,
)


def build_dataset(seed: int = 0) -> RecordStore:
    """Three dense groups of near-duplicate vectors + uniform noise."""
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(3, 32))
    rows = []
    for i, copies in enumerate([60, 35, 15]):
        for _ in range(copies):
            rows.append(base[i] + rng.normal(scale=0.01, size=32))
    for _ in range(400):
        rows.append(rng.normal(size=32))
    return RecordStore(Schema.single_vector("vec"), {"vec": np.asarray(rows)})


def main() -> None:
    store = build_dataset()
    # Two records match when their vectors are within 10 degrees.
    rule = ThresholdRule(CosineDistance("vec"), 10.0 / 180.0)

    ada = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=0))
    result = ada.run(k=3)

    print(f"dataset: {len(store)} records")
    print(
        f"adaLSH found the top-3 entities in {result.wall_time * 1e3:.1f} ms "
        f"using {result.counters.hashes_computed} hash evaluations and "
        f"{result.counters.pairs_compared} pair comparisons"
    )
    for rank, cluster in enumerate(result.clusters, 1):
        print(f"  #{rank}: {cluster.size} records (e.g. rids {cluster.rids[:5].tolist()})")

    exact = PairsBaseline(store, rule).run(3)
    match = [c.size for c in result.clusters] == [c.size for c in exact.clusters]
    print(f"matches the exact Pairs baseline: {match}")
    print(
        f"(Pairs compared {exact.counters.pairs_compared} record pairs "
        f"to reach the same answer)"
    )


if __name__ == "__main__":
    main()
