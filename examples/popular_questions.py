"""Popular questions in a search-engine query log (paper §1's last
motivating example) — and a look at adaLSH's *hard* regime.

Queries are short token sets, and common stopwords give unrelated
queries a high Jaccard noise floor.  The cheap first hashing functions
cannot shatter the dataset, so Adaptive LSH is forced to spend more
per record than on article/image data — the per-level histogram below
makes that visible.  The output still matches the exact baseline.

Run:  python examples/popular_questions.py
"""

from repro import (
    AdaptiveConfig,
    AdaptiveLSH,
    PairsBaseline,
    RunObserver,
    generate_querylog,
)
from repro.eval.metrics import precision_recall_f1

K = 5


def main() -> None:
    dataset = generate_querylog(n_records=4000, seed=9)
    print(
        f"query log: {len(dataset)} queries; the most-asked question "
        f"was asked {dataset.entity_sizes()[0]} times"
    )

    method = AdaptiveLSH(
        dataset.store,
        dataset.rule,
        config=AdaptiveConfig(seed=9),
        observer=RunObserver(),
    )
    result = method.run(K)
    exact = PairsBaseline(dataset.store, dataset.rule).run(K)

    print(f"\ntop-{K} question frequencies: "
          f"{[c.size for c in result.clusters]}")
    same = [c.size for c in result.clusters] == [c.size for c in exact.clusters]
    print(f"matches exact transitive closure: {same}")
    _p, _r, f1 = precision_recall_f1(result.output_rids, dataset.top_k_rids(K))
    print(f"F1 vs ground truth: {f1:.3f}")

    print("\nhow deep did records go? (sequence level -> records)")
    for level, count in sorted(result.info["records_per_level"].items()):
        print(f"  H_{level}: {count:5d} records")
    print(
        "short queries + stopword noise keep the dataset connected at\n"
        "cheap hashing levels, so far more records climb the ladder than\n"
        "on article or image data — the stress regime for the paper's\n"
        "'sparse areas are cheap to dismiss' insight."
    )

    print(f"\nlast rounds of the adaptive loop (size -> action):")
    for event in method.last_report.rounds[-6:]:
        print(
            f"  round {event.round:>3}: cluster of {event.size:>5} "
            f"-> {event.action} -> {event.subclusters} subclusters "
            f"(largest {event.largest_out})"
        )


if __name__ == "__main__":
    main()
