"""Tests for the on-disk columnar store layout (`repro.storage`).

The load-bearing property: a store opened from a layout with
``mmap_mode="r"`` is *bit-identical* to the in-memory store it was
written from — fingerprints, shingle sets, vectors, and resolved
clusters — across every dataset generator, including empty stores and
zero-shingle rows.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    generate_cora,
    generate_popular_images,
    generate_querylog,
    generate_spotsigs,
)
from repro.errors import SchemaError, SnapshotError
from repro.records import FieldKind, FieldSpec, RecordStore, Schema
from repro.storage import (
    StoreLayout,
    StoreWriter,
    iter_store_chunks,
    open_dataset,
    write_dataset_layout,
)

GENERATORS = {
    "cora": (generate_cora, 120),
    "spotsigs": (generate_spotsigs, 120),
    "popularimages": (generate_popular_images, 3000),
    "querylog": (generate_querylog, 120),
}

MIXED_SCHEMA = Schema(
    (
        FieldSpec("vec", FieldKind.VECTOR),
        FieldSpec("toks", FieldKind.SHINGLES),
    )
)


def _mixed_store(n=8):
    rng = np.random.default_rng(7)
    return RecordStore(
        MIXED_SCHEMA,
        {
            "vec": rng.normal(size=(n, 3)),
            "toks": [
                sorted(set(rng.integers(0, 50, size=int(rng.integers(0, 6)))))
                for _ in range(n)
            ],
        },
    )


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_mmap_store_bit_identical_across_generators(self, name, tmp_path):
        generate, n = GENERATORS[name]
        dataset = generate(n, seed=3)
        layout = StoreLayout.write(dataset.store, tmp_path / "s.store")
        opened = layout.open()
        assert len(opened) == len(dataset.store)
        assert opened.content_fingerprint() == dataset.store.content_fingerprint()
        for spec in dataset.store.schema:
            if spec.kind is FieldKind.VECTOR:
                want = dataset.store.vectors(spec.name)
                got = opened.vectors(spec.name)
                assert got.dtype == want.dtype
                assert np.array_equal(got, want)
            else:
                assert opened.shingle_sets(spec.name) == dataset.store.shingle_sets(
                    spec.name
                )

    def test_resolved_clusters_bit_identical(self, tmp_path):
        from repro.core.adaptive import AdaptiveLSH
        from repro.core.config import AdaptiveConfig

        dataset = generate_cora(150, seed=5)
        opened = StoreLayout.write(dataset.store, tmp_path / "c.store").open()
        config = AdaptiveConfig(cost_model="analytic", seed=11)
        with AdaptiveLSH(dataset.store, dataset.rule, config=config) as mem:
            direct = mem.run(3)
        with AdaptiveLSH(opened, dataset.rule, config=config) as mm:
            mapped = mm.run(3)
        assert [c.rids.tolist() for c in direct.clusters] == [
            c.rids.tolist() for c in mapped.clusters
        ]
        assert mapped.info["store_backing"]["store_version"] == 1

    def test_dtype_exact(self, tmp_path):
        store = _mixed_store()
        opened = StoreLayout.write(store, tmp_path / "m.store").open()
        assert opened.vectors("vec").dtype == np.float64
        column = opened.shingle_sets("toks")
        assert column.offsets.dtype == np.int64
        assert column.values.dtype == np.int64

    def test_empty_store(self, tmp_path):
        store = RecordStore(
            MIXED_SCHEMA, {"vec": np.zeros((0, 3)), "toks": []}
        )
        layout = StoreLayout.write(store, tmp_path / "e.store")
        opened = layout.open()
        assert len(opened) == 0
        assert opened.content_fingerprint() == store.content_fingerprint()

    def test_zero_shingle_rows(self, tmp_path):
        store = RecordStore(
            Schema.single_shingles("s"), {"s": [[], [1, 2], [], []]}
        )
        opened = StoreLayout.write(store, tmp_path / "z.store").open()
        assert opened.shingle_sets("s") == store.shingle_sets("s")
        assert np.array_equal(opened.set_sizes("s"), [0, 2, 0, 0])

    def test_open_without_mmap(self, tmp_path):
        store = _mixed_store()
        layout = StoreLayout.write(store, tmp_path / "m.store")
        assert (
            layout.open(mmap=False).content_fingerprint()
            == store.content_fingerprint()
        )

    def test_backing_recorded(self, tmp_path):
        store = _mixed_store()
        opened = StoreLayout.write(store, tmp_path / "m.store").open()
        backing = opened.backing
        assert backing is not None
        assert (backing.lo, backing.hi) == (0, len(store))
        assert backing.store_version == 1
        view = opened.slice_view(2, 6)
        assert view.backing is not None
        assert (view.backing.lo, view.backing.hi) == (2, 6)


@settings(max_examples=25, deadline=None)
@given(
    sets=st.lists(
        st.lists(st.integers(min_value=0, max_value=100), max_size=8),
        min_size=0,
        max_size=16,
    ),
    chunk=st.integers(min_value=1, max_value=7),
)
def test_chunked_writer_equals_one_shot(tmp_path_factory, sets, chunk):
    """Property: writing a store in arbitrary chunk sizes produces a
    layout bit-identical to the one-shot write."""
    store = RecordStore(Schema.single_shingles("s"), {"s": sets})
    base = tmp_path_factory.mktemp("layouts")
    one = StoreLayout.write(store, base / "one.store").open()
    writer = StoreWriter(base / "chunked.store", store.schema)
    for piece in iter_store_chunks(store, chunk) if len(store) else []:
        writer.append(piece)
    chunked = writer.finalize().open()
    assert chunked.content_fingerprint() == one.content_fingerprint()
    assert chunked.content_fingerprint() == store.content_fingerprint()


class TestAppend:
    def test_append_bumps_version_and_extends(self, tmp_path):
        store = _mixed_store(10)
        layout = StoreLayout.write(store, tmp_path / "a.store")
        extra = store.slice_view(0, 4)
        new_version = layout.append(extra)
        assert new_version == 2
        assert layout.n == 14
        reopened = StoreLayout(tmp_path / "a.store").open()
        assert (
            reopened.content_fingerprint()
            == store.concat(extra).content_fingerprint()
        )

    def test_open_store_survives_append(self, tmp_path):
        """Layouts are append-only: a store opened before an append
        keeps serving its shorter prefix unchanged."""
        store = _mixed_store(10)
        layout = StoreLayout.write(store, tmp_path / "a.store")
        before = layout.open()
        fingerprint = before.content_fingerprint()
        layout.append(store.slice_view(0, 5))
        assert len(before) == 10
        assert before.content_fingerprint() == fingerprint

    def test_append_schema_mismatch_rejected(self, tmp_path):
        layout = StoreLayout.write(_mixed_store(), tmp_path / "a.store")
        other = RecordStore(Schema.single_vector(), {"vec": np.zeros((1, 3))})
        with pytest.raises(SchemaError):
            layout.append(other)

    def test_labelled_layout_requires_labels(self, tmp_path):
        store = _mixed_store(6)
        layout = StoreLayout.write(
            store, tmp_path / "l.store", labels=np.arange(6, dtype=np.int64)
        )
        with pytest.raises(SchemaError):
            layout.append(store.slice_view(0, 2))
        layout.append(
            store.slice_view(0, 2), labels=np.asarray([9, 9], dtype=np.int64)
        )
        assert layout.labels().tolist() == [0, 1, 2, 3, 4, 5, 9, 9]


class TestErrors:
    def test_missing_layout(self, tmp_path):
        with pytest.raises(SnapshotError):
            StoreLayout(tmp_path / "nope.store")

    def test_double_finalize_rejected(self, tmp_path):
        writer = StoreWriter(tmp_path / "w.store", MIXED_SCHEMA)
        writer.finalize()
        with pytest.raises(SnapshotError):
            writer.finalize()

    def test_append_after_finalize_rejected(self, tmp_path):
        writer = StoreWriter(tmp_path / "w.store", MIXED_SCHEMA)
        writer.finalize()
        with pytest.raises(SnapshotError):
            writer.append(_mixed_store(2))

    def test_existing_layout_not_overwritten(self, tmp_path):
        StoreLayout.write(_mixed_store(), tmp_path / "w.store")
        with pytest.raises(SnapshotError):
            StoreWriter(tmp_path / "w.store", MIXED_SCHEMA)

    def test_bad_field_name_rejected(self, tmp_path):
        schema = Schema((FieldSpec("bad/name", FieldKind.SHINGLES),))
        store = RecordStore(schema, {"bad/name": [[1]]})
        with pytest.raises(SchemaError):
            StoreLayout.write(store, tmp_path / "w.store")

    def test_unlabelled_open_dataset_rejected(self, tmp_path):
        StoreLayout.write(_mixed_store(), tmp_path / "w.store")
        with pytest.raises(SnapshotError):
            open_dataset(tmp_path / "w.store")


class TestDatasetLayouts:
    def test_dataset_round_trip(self, tmp_path):
        from repro.io import rule_to_spec

        dataset = generate_cora(100, seed=2)
        write_dataset_layout(dataset, tmp_path / "ds.store")
        loaded = open_dataset(tmp_path / "ds.store")
        assert loaded.name == dataset.name
        assert len(loaded) == len(dataset)
        assert np.array_equal(loaded.labels, dataset.labels)
        assert rule_to_spec(loaded.rule) == rule_to_spec(dataset.rule)
        assert (
            loaded.store.content_fingerprint()
            == dataset.store.content_fingerprint()
        )

    def test_streamed_build_matches_writer(self, tmp_path):
        from repro.datasets import build_cora_layout

        one = build_cora_layout(tmp_path / "a.store", 400, chunk_records=97, seed=6)
        two = build_cora_layout(tmp_path / "b.store", 400, chunk_records=97, seed=6)
        assert (
            one.open().content_fingerprint() == two.open().content_fingerprint()
        )
        dataset = open_dataset(tmp_path / "a.store")
        assert len(dataset) == 400
        assert dataset.labels.size == 400
        # Chunk-local shuffles: record order carries no entity signal.
        assert not np.array_equal(dataset.labels, np.sort(dataset.labels))
