"""Tests for the streaming adaptive-LSH extension."""

import numpy as np
import pytest

from repro.core import AdaptiveLSH
from repro.errors import ConfigurationError
from repro.online import StreamingTopK
from repro.core.config import AdaptiveConfig


@pytest.fixture()
def stream(tiny_spotsigs):
    return StreamingTopK(tiny_spotsigs.store, tiny_spotsigs.rule, config=AdaptiveConfig(seed=2, cost_model="analytic"))


class TestIngest:
    def test_insert_counts(self, stream):
        stream.insert(0)
        stream.insert(1)
        assert stream.n_seen == 2

    def test_duplicate_insert_rejected(self, stream):
        stream.insert(0)
        with pytest.raises(ConfigurationError):
            stream.insert(0)

    def test_insert_many(self, stream, tiny_spotsigs):
        stream.insert_many(np.arange(50))
        assert stream.n_seen == 50

    def test_insert_many_duplicate_rejected(self, stream):
        stream.insert_many(np.arange(10))
        with pytest.raises(ConfigurationError):
            stream.insert_many(np.array([5]))

    def test_query_without_records(self, stream):
        with pytest.raises(ConfigurationError):
            stream.top_k(1)


class TestQueries:
    def test_full_stream_matches_batch(self, tiny_spotsigs):
        stream = StreamingTopK(tiny_spotsigs.store, tiny_spotsigs.rule, config=AdaptiveConfig(seed=2, cost_model="analytic"))
        stream.insert_many(tiny_spotsigs.store.rids)
        streamed = [c.size for c in stream.top_k(3).clusters]
        batch = AdaptiveLSH(tiny_spotsigs.store, tiny_spotsigs.rule, config=AdaptiveConfig(seed=2, cost_model="analytic")).run(3)
        assert streamed == [c.size for c in batch.clusters]

    def test_results_grow_with_stream(self, tiny_spotsigs):
        stream = StreamingTopK(tiny_spotsigs.store, tiny_spotsigs.rule, config=AdaptiveConfig(seed=2, cost_model="analytic"))
        rng = np.random.default_rng(0)
        order = rng.permutation(len(tiny_spotsigs))
        stream.insert_many(order[:150])
        early = stream.top_k(1).clusters[0].size
        stream.insert_many(order[150:])
        late = stream.top_k(1).clusters[0].size
        assert late >= early

    def test_repeated_queries_get_cheaper(self, tiny_spotsigs):
        stream = StreamingTopK(tiny_spotsigs.store, tiny_spotsigs.rule, config=AdaptiveConfig(seed=2, cost_model="analytic"))
        stream.insert_many(tiny_spotsigs.store.rids)
        first = stream.top_k(3)
        second = stream.top_k(3)
        assert (
            second.counters.hashes_computed <= first.counters.hashes_computed
        )

    def test_current_clusters_partition_seen(self, tiny_spotsigs):
        stream = StreamingTopK(tiny_spotsigs.store, tiny_spotsigs.rule, config=AdaptiveConfig(seed=2, cost_model="analytic"))
        stream.insert_many(np.arange(100))
        clusters = stream.current_clusters()
        merged = np.sort(np.concatenate(clusters))
        assert np.array_equal(merged, np.arange(100))
