"""Streaming adaLSH over vector data (hyperplane-family path)."""

import numpy as np
import pytest

from repro.core import AdaptiveLSH
from repro.online import StreamingTopK
from tests.conftest import make_vector_store
from repro.distance import CosineDistance, ThresholdRule
from repro.core.config import AdaptiveConfig


@pytest.fixture(scope="module")
def vector_setup():
    store, _ = make_vector_store(
        cluster_sizes=(25, 14, 7), n_noise=60, seed=88
    )
    rule = ThresholdRule(CosineDistance("vec"), 10 / 180.0)
    return store, rule


def test_streamed_matches_batch(vector_setup):
    store, rule = vector_setup
    stream = StreamingTopK(store, rule, config=AdaptiveConfig(seed=4, cost_model="analytic"))
    stream.insert_many(store.rids)
    streamed = [c.size for c in stream.top_k(3).clusters]
    batch = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=4, cost_model="analytic")).run(3)
    assert streamed == [c.size for c in batch.clusters]


def test_out_of_order_arrival_same_answer(vector_setup):
    store, rule = vector_setup
    order = np.random.default_rng(1).permutation(len(store))
    shuffled = StreamingTopK(store, rule, config=AdaptiveConfig(seed=4, cost_model="analytic"))
    shuffled.insert_many(order)
    sequential = StreamingTopK(store, rule, config=AdaptiveConfig(seed=4, cost_model="analytic"))
    sequential.insert_many(store.rids)
    assert [c.size for c in shuffled.top_k(3).clusters] == [
        c.size for c in sequential.top_k(3).clusters
    ]


def test_partial_stream_respects_seen_records(vector_setup):
    store, rule = vector_setup
    stream = StreamingTopK(store, rule, config=AdaptiveConfig(seed=4, cost_model="analytic"))
    stream.insert_many(np.arange(40))
    result = stream.top_k(2)
    assert result.output_rids.max() < 40
