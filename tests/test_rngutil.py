"""Tests for seeded RNG helpers."""

import numpy as np

from repro.rngutil import make_rng, spawn


class TestMakeRng:
    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        assert make_rng(7).integers(1 << 30) == make_rng(7).integers(1 << 30)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng


class TestSpawn:
    def test_count(self):
        assert len(spawn(make_rng(0), 5)) == 5

    def test_children_deterministic(self):
        a = [g.integers(1 << 30) for g in spawn(make_rng(3), 3)]
        b = [g.integers(1 << 30) for g in spawn(make_rng(3), 3)]
        assert a == b

    def test_children_independent(self):
        children = spawn(make_rng(3), 2)
        assert children[0].integers(1 << 30) != children[1].integers(1 << 30)

    def test_child_streams_identical_across_runs(self):
        """Same top-level seed -> byte-identical child streams."""
        runs = [
            [g.random(100) for g in spawn(make_rng(42), 4)] for _ in range(2)
        ]
        for stream_a, stream_b in zip(*runs):
            np.testing.assert_array_equal(stream_a, stream_b)

    def test_child_streams_distinct_per_child(self):
        streams = [g.random(100) for g in spawn(make_rng(42), 4)]
        for i, a in enumerate(streams):
            for b in streams[i + 1 :]:
                assert not np.array_equal(a, b)

    def test_spawn_consumes_parent_stream(self):
        """Consecutive spawns from one parent give fresh children."""
        rng = make_rng(7)
        first = [g.integers(1 << 30) for g in spawn(rng, 2)]
        second = [g.integers(1 << 30) for g in spawn(rng, 2)]
        assert first != second

    def test_seed_sequence_is_seedlike(self):
        a = make_rng(np.random.SeedSequence(5)).integers(1 << 30)
        b = make_rng(np.random.SeedSequence(5)).integers(1 << 30)
        assert a == b
