"""Tests for seeded RNG helpers."""

import numpy as np

from repro.rngutil import make_rng, spawn


class TestMakeRng:
    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        assert make_rng(7).integers(1 << 30) == make_rng(7).integers(1 << 30)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng


class TestSpawn:
    def test_count(self):
        assert len(spawn(make_rng(0), 5)) == 5

    def test_children_deterministic(self):
        a = [g.integers(1 << 30) for g in spawn(make_rng(3), 3)]
        b = [g.integers(1 << 30) for g in spawn(make_rng(3), 3)]
        assert a == b

    def test_children_independent(self):
        children = spawn(make_rng(3), 2)
        assert children[0].integers(1 << 30) != children[1].integers(1 << 30)
