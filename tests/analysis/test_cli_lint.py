"""The ``repro lint`` subcommand: exit codes, formats, baselines."""

import json

from repro.cli import main

BAD_RNG = "import numpy as np\n\nrng = np.random.default_rng(0)\n"


def write_tree(tmp_path):
    (tmp_path / "core").mkdir()
    (tmp_path / "core" / "x.py").write_text(BAD_RNG)
    return tmp_path


class TestLintCommand:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("X = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s) in 1 file(s)" in out

    def test_findings_exit_one_text(self, tmp_path, capsys):
        write_tree(tmp_path)
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "[R1]" in out
        assert "x.py:3" in out

    def test_json_format(self, tmp_path, capsys):
        write_tree(tmp_path)
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"]["total"] == 1
        assert doc["findings"][0]["rule"] == "R1"
        assert doc["findings"][0]["line"] == 3

    def test_rules_filter(self, tmp_path, capsys):
        write_tree(tmp_path)
        assert main(["lint", str(tmp_path), "--rules", "R5"]) == 0
        capsys.readouterr()

    def test_write_then_use_baseline(self, tmp_path, capsys):
        write_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(
            ["lint", str(tmp_path), "--write-baseline", str(baseline)]
        ) == 0
        assert "1 grandfathered finding(s)" in capsys.readouterr().out
        assert main(["lint", str(tmp_path), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_bad_baseline_exits_two(self, tmp_path, capsys):
        write_tree(tmp_path)
        bad = tmp_path / "baseline.json"
        bad.write_text("{")
        assert main(["lint", str(tmp_path), "--baseline", str(bad)]) == 2
        assert "repro lint:" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "R0", "R1", "R2", "R3", "R4", "R5", "R6",
            "R7", "R8", "R9", "R10", "R11", "R12", "R13",
        ):
            assert rule_id in out
