"""Per-rule fixtures: one violating and one clean file for R1–R5."""

import textwrap

from repro.analysis import lint_paths


def run_lint(tmp_path, files, **kwargs):
    """Write ``{relpath: source}`` under tmp_path and lint the tree."""
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return lint_paths([tmp_path], **kwargs)


def rules_found(result):
    return sorted({f.rule for f in result.findings})


class TestR1RandomSource:
    def test_violating_default_rng(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "core/bad.py": """
                import numpy as np

                rng = np.random.default_rng(0)
                """
            },
        )
        assert rules_found(result) == ["R1"]
        # The np.random.default_rng chain yields exactly one finding,
        # not one per nested Attribute node.
        assert len(result.findings) == 1
        assert "np.random.default_rng" in result.findings[0].message

    def test_violating_random_import(self, tmp_path):
        result = run_lint(tmp_path, {"lsh/bad.py": "import random\n"})
        assert rules_found(result) == ["R1"]

    def test_violating_from_import(self, tmp_path):
        result = run_lint(
            tmp_path, {"datasets/bad.py": "from numpy.random import default_rng\n"}
        )
        assert rules_found(result) == ["R1"]

    def test_clean_via_rngutil(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "core/good.py": """
                from repro.rngutil import SeedLike, make_rng

                def sample(seed: SeedLike = None) -> float:
                    return float(make_rng(seed).random())
                """
            },
        )
        assert result.findings == []

    def test_rngutil_itself_is_exempt(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "rngutil.py": """
                import numpy as np

                def make_rng(seed: int) -> np.random.Generator:
                    return np.random.default_rng(seed)
                """
            },
        )
        assert result.findings == []


class TestR2WallClock:
    def test_violating_perf_counter_call(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "lsh/bad.py": """
                import time

                def f() -> float:
                    return time.perf_counter()
                """
            },
        )
        assert rules_found(result) == ["R2"]

    def test_violating_from_time_import(self, tmp_path):
        result = run_lint(
            tmp_path, {"structures/bad.py": "from time import perf_counter\n"}
        )
        assert rules_found(result) == ["R2"]

    def test_clean_via_obs_clock(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "core/good.py": """
                from repro.obs.clock import monotonic

                def f() -> float:
                    return monotonic()
                """
            },
        )
        assert result.findings == []

    def test_out_of_scope_package_is_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "datasets/timing.py": """
                import time

                def f() -> float:
                    return time.perf_counter()
                """
            },
        )
        assert "R2" not in rules_found(result)


class TestR3ErrorTaxonomy:
    def test_violating_value_error(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "core/bad.py": """
                def f(k: int) -> int:
                    if k < 1:
                        raise ValueError("k must be positive")
                    return k
                """
            },
        )
        assert rules_found(result) == ["R3"]

    def test_violating_runtime_error(self, tmp_path):
        result = run_lint(
            tmp_path, {"lsh/bad.py": "def f() -> None:\n    raise RuntimeError\n"}
        )
        assert rules_found(result) == ["R3"]

    def test_clean_repro_error(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "core/good.py": """
                from repro.errors import ConfigurationError

                def f(k: int) -> int:
                    if k < 1:
                        raise ConfigurationError("k must be positive")
                    return k
                """
            },
        )
        assert result.findings == []

    def test_out_of_scope_package_is_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"structures/bad.py": "def f() -> None:\n    raise ValueError('x')\n"},
        )
        assert "R3" not in rules_found(result)


class TestR4Annotations:
    def test_violating_unannotated_params_and_return(self, tmp_path):
        result = run_lint(
            tmp_path, {"lsh/bad.py": "def hash_all(rids, start):\n    return rids\n"}
        )
        assert rules_found(result) == ["R4"]
        messages = [f.message for f in result.findings]
        assert any("rids, start" in m for m in messages)
        assert any("no return annotation" in m for m in messages)

    def test_method_self_is_exempt(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "obs/good.py": """
                class Thing:
                    def get(self, name: str) -> str:
                        return name
                """
            },
        )
        assert result.findings == []

    def test_private_function_is_exempt(self, tmp_path):
        result = run_lint(
            tmp_path, {"eval/good.py": "def _helper(x):\n    return x\n"}
        )
        assert result.findings == []

    def test_out_of_scope_package_is_clean(self, tmp_path):
        result = run_lint(
            tmp_path, {"datasets/loose.py": "def load(path):\n    return path\n"}
        )
        assert "R4" not in rules_found(result)


class TestR5MutableDefaults:
    def test_violating_list_default(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"util.py": "def collect(out=[]):\n    return out\n"},
        )
        assert rules_found(result) == ["R5"]

    def test_violating_dict_call_and_kwonly(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"util.py": "def collect(a=dict(), *, b={}):\n    return a, b\n"},
        )
        assert [f.rule for f in result.findings] == ["R5", "R5"]

    def test_clean_none_default(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "util.py": """
                def collect(out: list | None = None) -> list:
                    return [] if out is None else out
                """
            },
        )
        assert result.findings == []

    def test_applies_everywhere(self, tmp_path):
        # Unlike R1-R4, R5 has no package scoping.
        result = run_lint(
            tmp_path, {"datasets/bad.py": "def f(x=set()):\n    return x\n"}
        )
        assert rules_found(result) == ["R5"]


class TestR6InfoKeySchema:
    def test_violating_subscript_write(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "serve/bad.py": """
                def stamp(result):
                    result.info["secret_stuff"] = 1
                """
            },
        )
        assert rules_found(result) == ["R6"]
        assert "secret_stuff" in result.findings[0].message

    def test_violating_dict_literal_assignment(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "core/bad.py": """
                def build() -> dict:
                    info = {"method": "x", "mystery": 2}
                    return info
                """
            },
        )
        assert rules_found(result) == ["R6"]
        assert "mystery" in result.findings[0].message

    def test_violating_filterresult_call_keyword(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "baselines/bad.py": """
                def run(FilterResult, clusters):
                    return FilterResult.from_clusters(
                        clusters, info={"undocumented_counter": 3}
                    )
                """
            },
        )
        assert rules_found(result) == ["R6"]

    def test_clean_documented_keys(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "serve/good.py": """
                def stamp(result, stats):
                    result.info["serving"] = stats
                    info = {"method": "adaLSH", "parallel": stats}
                    return info
                """
            },
        )
        assert "R6" not in rules_found(result)

    def test_out_of_scope_package_is_clean(self, tmp_path):
        # er/, datasets/, eval/ build their own info dicts with their
        # own schemas — R6 only polices the FilterResult packages.
        result = run_lint(
            tmp_path,
            {
                "er/loose.py": """
                def build():
                    info = {"er_pairs": 10}
                    return info
                """
            },
        )
        assert "R6" not in rules_found(result)

    def test_dynamic_keys_are_not_flagged(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "core/dyn.py": """
                def stamp(result, key):
                    result.info[key] = 1
                """
            },
        )
        assert "R6" not in rules_found(result)
