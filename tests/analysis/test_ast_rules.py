"""AST-engine rules R7–R13: one violating and one clean fixture each.

Each rule is exercised in isolation via ``rule_ids=`` so unrelated
rules (R4 annotations, R3 taxonomy, ...) never muddy the assertions.
The two *seeded-bug* classes at the bottom plant realistic bugs —
an event-loop stall in a serve handler and an aliased RNG leak — and
prove the analyzer pinpoints them by line.
"""

from repro.analysis import lint_paths

from .test_rules import run_lint, rules_found


class TestR7UnorderedIteration:
    def test_set_iteration_reaching_union(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "core/bad.py": """
                def merge_all(uf, pairs: set) -> None:
                    for a, b in pairs:
                        uf.union(a, b)
                """
            },
            rule_ids=["R7"],
        )
        assert rules_found(result) == ["R7"]
        assert "iterates set 'pairs'" in result.findings[0].message

    def test_listdir_iteration_appending(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "structures/bad.py": """
                import os

                def load(root, out) -> None:
                    for name in os.listdir(root):
                        out.append(name)
                """
            },
            rule_ids=["R7"],
        )
        assert rules_found(result) == ["R7"]

    def test_iterdir_yield(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "serve/bad.py": """
                from pathlib import Path

                def snapshots(root: Path):
                    for p in root.iterdir():
                        yield p
                """
            },
            rule_ids=["R7"],
        )
        assert rules_found(result) == ["R7"]

    def test_sorted_wrapper_is_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "core/ok.py": """
                def merge_all(uf, pairs: set) -> None:
                    for a, b in sorted(pairs):
                        uf.union(a, b)
                """
            },
            rule_ids=["R7"],
        )
        assert result.findings == []

    def test_pure_consumption_is_clean(self, tmp_path):
        # Iterating a set without touching order-sensitive state
        # (aggregation into a local) is fine.
        result = run_lint(
            tmp_path,
            {
                "core/ok.py": """
                def total(sizes: set) -> int:
                    acc = 0
                    for s in sizes:
                        acc += s
                    return acc
                """
            },
            rule_ids=["R7"],
        )
        assert result.findings == []

    def test_out_of_scope_package_ignored(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "eval/ok.py": """
                def merge_all(uf, pairs: set) -> None:
                    for a, b in pairs:
                        uf.union(a, b)
                """
            },
            rule_ids=["R7"],
        )
        assert result.findings == []


class TestR8BlockingAsync:
    def test_time_sleep(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "serve/bad.py": """
                import time

                async def handler(req):
                    time.sleep(0.1)
                    return req
                """
            },
            rule_ids=["R8"],
        )
        assert rules_found(result) == ["R8"]
        assert "time.sleep" in result.findings[0].message

    def test_aliased_import_still_caught(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "serve/bad.py": """
                import time as t

                async def handler(req):
                    t.sleep(0.1)
                """
            },
            rule_ids=["R8"],
        )
        assert rules_found(result) == ["R8"]

    def test_open_builtin(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "serve/bad.py": """
                async def read_config(path):
                    with open(path) as fh:
                        return fh.read()
                """
            },
            rule_ids=["R8"],
        )
        assert rules_found(result) == ["R8"]

    def test_sync_helper_inside_async_file_is_clean(self, tmp_path):
        # Only async bodies are constrained; a sync def in the same
        # file (even nested inside an async def) may block.
        result = run_lint(
            tmp_path,
            {
                "serve/ok.py": """
                import time

                async def handler(req):
                    def blocking_probe():
                        time.sleep(0.1)
                    return blocking_probe
                """
            },
            rule_ids=["R8"],
        )
        assert result.findings == []

    def test_asyncio_sleep_is_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "serve/ok.py": """
                import asyncio

                async def handler(req):
                    await asyncio.sleep(0.1)
                """
            },
            rule_ids=["R8"],
        )
        assert result.findings == []

    def test_outside_serve_is_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "parallel/ok.py": """
                import time

                async def helper():
                    time.sleep(0.1)
                """
            },
            rule_ids=["R8"],
        )
        assert result.findings == []


class TestR9ForkUnsafeState:
    def test_module_scope_lock(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "parallel/bad.py": """
                import threading

                LOCK = threading.Lock()
                """
            },
            rule_ids=["R9"],
        )
        assert rules_found(result) == ["R9"]

    def test_module_scope_executor(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "parallel/bad.py": """
                from concurrent.futures import ProcessPoolExecutor

                POOL = ProcessPoolExecutor()
                """
            },
            rule_ids=["R9"],
        )
        assert rules_found(result) == ["R9"]

    def test_lazy_construction_is_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "parallel/ok.py": """
                import threading

                def make_lock():
                    return threading.Lock()

                class Guard:
                    def __init__(self):
                        self._lock = threading.Lock()
                """
            },
            rule_ids=["R9"],
        )
        assert result.findings == []


class TestR10UnawaitedCoroutine:
    def test_bare_local_coroutine_call(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "serve/bad.py": """
                async def flush():
                    pass

                async def handler():
                    flush()
                """
            },
            rule_ids=["R10"],
        )
        assert rules_found(result) == ["R10"]

    def test_bare_create_task(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "serve/bad.py": """
                import asyncio

                async def flush():
                    pass

                async def handler():
                    asyncio.create_task(flush())
                """
            },
            rule_ids=["R10"],
        )
        assert rules_found(result) == ["R10"]
        assert "task" in result.findings[0].message

    def test_awaited_and_stored_are_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "serve/ok.py": """
                import asyncio

                async def flush():
                    pass

                async def handler(tasks):
                    await flush()
                    task = asyncio.create_task(flush())
                    tasks.add(task)
                    await task
                """
            },
            rule_ids=["R10"],
        )
        assert result.findings == []

    def test_self_method_coroutine(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "serve/bad.py": """
                class Service:
                    async def _drain(self):
                        pass

                    async def stop(self):
                        self._drain()
                """
            },
            rule_ids=["R10"],
        )
        assert rules_found(result) == ["R10"]


class TestR11FrozenMutation:
    def test_setattr_outside_post_init(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "core/bad.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Config:
                    k: int

                def bump(cfg: Config) -> None:
                    object.__setattr__(cfg, "k", cfg.k + 1)
                """
            },
            rule_ids=["R11"],
        )
        assert rules_found(result) == ["R11"]

    def test_post_init_derivation_is_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "core/ok.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Config:
                    k: int
                    k2: int = 0

                    def __post_init__(self) -> None:
                        object.__setattr__(self, "k2", self.k * 2)
                """
            },
            rule_ids=["R11"],
        )
        assert result.findings == []

    def test_post_init_of_unfrozen_class_flagged(self, tmp_path):
        # __post_init__ only sanctions the call when the class is a
        # frozen dataclass; elsewhere it's still a mutation smell.
        result = run_lint(
            tmp_path,
            {
                "core/bad.py": """
                class NotADataclass:
                    def __post_init__(self) -> None:
                        object.__setattr__(self, "k", 1)
                """
            },
            rule_ids=["R11"],
        )
        assert rules_found(result) == ["R11"]


class TestR12TaxonomyEscape:
    def test_structures_value_error(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "structures/bad.py": """
                def check(n: int) -> None:
                    if n < 0:
                        raise ValueError("negative")
                """
            },
            rule_ids=["R12"],
        )
        assert rules_found(result) == ["R12"]

    def test_taxonomy_subclass_is_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "obs/ok.py": """
                from repro.errors import ConfigurationError

                def check(n: int) -> None:
                    if n < 0:
                        raise ConfigurationError("negative")
                """
            },
            rule_ids=["R12"],
        )
        assert result.findings == []

    def test_core_left_to_r3(self, tmp_path):
        # core/ and lsh/ stay R3's territory; R12 must not double-report.
        result = run_lint(
            tmp_path,
            {
                "core/bad.py": """
                def check(n: int) -> None:
                    raise ValueError("negative")
                """
            },
            rule_ids=["R12"],
        )
        assert result.findings == []


class TestR13AliasedRng:
    def test_numpy_alias(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "core/bad.py": """
                import numpy as xp

                def seed_it() -> None:
                    xp.random.seed(0)
                """
            },
            rule_ids=["R13"],
        )
        assert rules_found(result) == ["R13"]
        assert "numpy.random" in result.findings[0].message

    def test_from_import_alias(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "distance/bad.py": """
                from numpy import random as nr

                RNG = nr.default_rng()
                """
            },
            rule_ids=["R13"],
        )
        assert rules_found(result) == ["R13"]

    def test_literal_spelling_left_to_r1(self, tmp_path):
        # np.random.* is R1's (syntactic) catch; R13 must not
        # double-report the same violation under a second id.
        src = "import numpy as np\n\nrng = np.random.default_rng(0)\n"
        r13_only = run_lint(tmp_path, {"core/x.py": src}, rule_ids=["R13"])
        assert r13_only.findings == []
        both = lint_paths([tmp_path], rule_ids=["R1", "R13"])
        assert rules_found(both) == ["R1"]

    def test_rngutil_funnel_is_clean(self, tmp_path):
        result = run_lint(
            tmp_path,
            {
                "core/ok.py": """
                from repro.rngutil import make_rng

                def build(seed: int):
                    return make_rng(seed)
                """
            },
            rule_ids=["R13"],
        )
        assert result.findings == []


SEEDED_BLOCKING_HANDLER = """
import subprocess
import time as clock


async def resolve_query(service, payload):
    # BUG (line 8): stalls the event loop for every in-flight request.
    clock.sleep(0.05)
    result = await service.submit(payload)
    return result


async def rotate_snapshot(service, path):
    # BUG (line 15): shells out synchronously inside the handler.
    subprocess.run(["gzip", str(path)])
    await service.mark_rotated(path)
"""

SEEDED_RNG_LEAK = """
import numpy as xp
from numpy import random as nrandom


def jitter(values):
    # BUG (line 7): fresh unseeded generator — bypasses the seed funnel.
    gen = nrandom.default_rng()
    return values + gen.normal(size=len(values))


def shuffle_in_place(values) -> None:
    # BUG (line 13): global numpy RNG state mutated behind an alias.
    xp.random.shuffle(values)
"""


class TestSeededBugR8:
    """The analyzer pinpoints a realistic event-loop stall by line."""

    def test_both_blocking_calls_caught(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"serve/handler.py": SEEDED_BLOCKING_HANDLER},
            rule_ids=["R8"],
        )
        assert [f.rule for f in result.findings] == ["R8", "R8"]
        by_line = {f.line: f.message for f in result.findings}
        assert sorted(by_line) == [8, 15]
        assert "time.sleep" in by_line[8]
        assert "subprocess.run" in by_line[15]
        assert all(
            "to_thread" in f.suggestion for f in result.findings
        )

    def test_fixed_handler_is_clean(self, tmp_path):
        fixed = SEEDED_BLOCKING_HANDLER.replace(
            "clock.sleep(0.05)", "await __import__('asyncio').sleep(0.05)"
        ).replace(
            'subprocess.run(["gzip", str(path)])',
            "await service.compress(path)",
        )
        result = run_lint(
            tmp_path, {"serve/handler.py": fixed}, rule_ids=["R8"]
        )
        assert result.findings == []


class TestSeededBugR13:
    """The analyzer sees RNG leaks through both alias forms by line."""

    def test_both_leaks_caught(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"core/perturb.py": SEEDED_RNG_LEAK},
            rule_ids=["R13"],
        )
        assert [f.rule for f in result.findings] == ["R13", "R13"]
        by_line = {f.line: f.message for f in result.findings}
        assert sorted(by_line) == [8, 14]
        assert "numpy.random" in by_line[8]
        assert "numpy.random" in by_line[14]
        assert all("rngutil" in f.suggestion for f in result.findings)

    def test_r1_alone_misses_the_aliases(self, tmp_path):
        # The point of R13: the purely syntactic R1 cannot see these.
        result = run_lint(
            tmp_path,
            {"core/perturb.py": SEEDED_RNG_LEAK},
            rule_ids=["R1"],
        )
        assert result.findings == []
