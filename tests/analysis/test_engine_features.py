"""Engine features added with the AST analyzer: incremental cache,
parallel analysis, SARIF output, changed-only mode, stale-noqa audit."""

import json
import subprocess

import pytest

from repro.analysis import (
    AnalysisCache,
    all_rules,
    engine_fingerprint,
    git_changed_files,
    lint_paths,
    render_sarif,
    sarif_document,
)
from repro.cli import main
from repro.errors import AnalysisError

from .test_rules import run_lint

BAD_RNG = "import numpy as np\n\nrng = np.random.default_rng(0)\n"
CLEAN = "X = 1\n"


def write_tree(tmp_path, files):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")


class TestIncrementalCache:
    def test_cold_then_warm(self, tmp_path):
        write_tree(
            tmp_path, {"core/a.py": CLEAN, "core/b.py": CLEAN, "lsh/c.py": CLEAN}
        )
        cache = tmp_path / "cache.json"
        cold = lint_paths([tmp_path], cache_path=cache)
        assert (cold.analyzed_files, cold.cached_files) == (3, 0)
        warm = lint_paths([tmp_path], cache_path=cache)
        assert (warm.analyzed_files, warm.cached_files) == (0, 3)

    def test_edit_reanalyzes_only_that_file(self, tmp_path):
        write_tree(
            tmp_path, {"core/a.py": CLEAN, "core/b.py": CLEAN, "lsh/c.py": CLEAN}
        )
        cache = tmp_path / "cache.json"
        lint_paths([tmp_path], cache_path=cache)
        (tmp_path / "core" / "b.py").write_text("Y = 2\n")
        result = lint_paths([tmp_path], cache_path=cache)
        assert (result.analyzed_files, result.cached_files) == (1, 2)

    def test_findings_survive_warm_runs(self, tmp_path):
        write_tree(tmp_path, {"core/bad.py": BAD_RNG, "core/ok.py": CLEAN})
        cache = tmp_path / "cache.json"
        cold = lint_paths([tmp_path], cache_path=cache)
        warm = lint_paths([tmp_path], cache_path=cache)
        assert warm.findings == cold.findings
        assert [f.rule for f in warm.findings] == ["R1"]
        assert warm.cached_files == 2

    def test_suppressed_counts_survive_warm_runs(self, tmp_path):
        src = "rng = np.random.default_rng(0)  # repro: noqa[R1]\n"
        write_tree(tmp_path, {"core/x.py": src})
        cache = tmp_path / "cache.json"
        cold = lint_paths([tmp_path], cache_path=cache)
        warm = lint_paths([tmp_path], cache_path=cache)
        assert cold.suppressed == warm.suppressed == 1

    def test_rule_subset_invalidates_fingerprint(self, tmp_path):
        write_tree(tmp_path, {"core/a.py": CLEAN})
        cache = tmp_path / "cache.json"
        lint_paths([tmp_path], cache_path=cache)
        # A different active-rule set is a different engine: the cache
        # must not serve R1-era verdicts to an R5-only run.
        result = lint_paths([tmp_path], rule_ids=["R5"], cache_path=cache)
        assert (result.analyzed_files, result.cached_files) == (1, 0)

    def test_corrupt_cache_degrades_to_cold_run(self, tmp_path):
        write_tree(tmp_path, {"core/a.py": CLEAN})
        cache = tmp_path / "cache.json"
        cache.write_text("{definitely not json")
        result = lint_paths([tmp_path], cache_path=cache)
        assert (result.analyzed_files, result.cached_files) == (1, 0)
        # ... and the run repaired the file for the next one.
        warm = lint_paths([tmp_path], cache_path=cache)
        assert warm.cached_files == 1

    def test_fingerprint_covers_rule_ids(self):
        assert engine_fingerprint(("R1",)) != engine_fingerprint(("R1", "R5"))

    def test_cache_roundtrip_is_atomic_format(self, tmp_path):
        write_tree(tmp_path, {"core/a.py": CLEAN})
        cache = tmp_path / "cache.json"
        lint_paths([tmp_path], cache_path=cache)
        doc = json.loads(cache.read_text())
        loaded = AnalysisCache.load(cache, doc["fingerprint"])
        assert loaded.files
        assert not (tmp_path / "cache.json.tmp").exists()


class TestParallelAnalysis:
    def test_jobs_do_not_change_output(self, tmp_path):
        files = {f"core/m{i}.py": BAD_RNG for i in range(6)}
        files["lsh/ok.py"] = CLEAN
        write_tree(tmp_path, files)
        serial = lint_paths([tmp_path], jobs=1)
        parallel = lint_paths([tmp_path], jobs=2)
        assert serial.findings == parallel.findings
        assert serial.suppressed == parallel.suppressed
        assert parallel.checked_files == 7

    def test_small_trees_stay_serial(self, tmp_path):
        # Below MIN_PARALLEL_FILES the pool is skipped entirely; the
        # result must be identical either way.
        write_tree(tmp_path, {"core/a.py": BAD_RNG})
        result = lint_paths([tmp_path], jobs=8)
        assert [f.rule for f in result.findings] == ["R1"]


class TestSarif:
    def test_document_structure(self, tmp_path):
        write_tree(tmp_path, {"core/bad.py": BAD_RNG})
        result = lint_paths([tmp_path])
        doc = sarif_document(result.findings, all_rules(), root=tmp_path)
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        ids = [rule["id"] for rule in driver["rules"]]
        assert ids == sorted(ids)
        assert {"R1", "R7", "R13"} <= set(ids)
        (res,) = run["results"]
        assert res["ruleId"] == "R1"
        assert res["level"] == "error"
        assert driver["rules"][res["ruleIndex"]]["id"] == "R1"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "core/bad.py"
        assert loc["artifactLocation"]["uriBaseId"] == "SRCROOT"
        assert loc["region"]["startLine"] == 3
        assert run["originalUriBaseIds"]["SRCROOT"]["uri"].endswith("/")

    def test_render_is_valid_json(self, tmp_path):
        write_tree(tmp_path, {"core/bad.py": BAD_RNG})
        result = lint_paths([tmp_path])
        doc = json.loads(render_sarif(result.findings, all_rules()))
        assert doc["runs"][0]["results"]

    def test_empty_findings_still_valid(self):
        doc = sarif_document([], all_rules())
        assert doc["runs"][0]["results"] == []

    def test_cli_sarif_format(self, tmp_path, capsys):
        write_tree(tmp_path, {"core/bad.py": BAD_RNG})
        assert main(["lint", str(tmp_path), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"][0]["ruleId"] == "R1"


def _git(*argv, cwd):
    subprocess.run(
        ["git", *argv],
        cwd=cwd,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@example.com",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@example.com",
            "HOME": str(cwd),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


@pytest.fixture
def git_repo(tmp_path):
    write_tree(
        tmp_path,
        {"src/core/a.py": CLEAN, "src/core/b.py": CLEAN, "README.md": "hi\n"},
    )
    _git("init", "-q", cwd=tmp_path)
    _git("add", "-A", cwd=tmp_path)
    _git("commit", "-q", "-m", "seed", cwd=tmp_path)
    return tmp_path


class TestChangedOnly:
    def test_modified_and_untracked_selected(self, git_repo):
        (git_repo / "src" / "core" / "a.py").write_text("Y = 2\n")
        (git_repo / "src" / "core" / "new.py").write_text(CLEAN)
        (git_repo / "notes.txt").write_text("not python\n")
        changed = git_changed_files("HEAD", root=git_repo)
        names = sorted(p.name for p in changed)
        assert names == ["a.py", "new.py"]

    def test_clean_tree_selects_nothing(self, git_repo):
        assert git_changed_files("HEAD", root=git_repo) == []

    def test_bad_ref_raises_analysis_error(self, git_repo):
        with pytest.raises(AnalysisError):
            git_changed_files("no-such-ref", root=git_repo)

    def test_only_filter_restricts_lint(self, git_repo):
        (git_repo / "src" / "core" / "a.py").write_text(BAD_RNG)
        changed = git_changed_files("HEAD", root=git_repo)
        result = lint_paths([git_repo / "src"], only=changed)
        assert result.checked_files == 1
        assert [f.rule for f in result.findings] == ["R1"]

    def test_cli_changed_flag(self, git_repo, capsys, monkeypatch):
        monkeypatch.chdir(git_repo)
        (git_repo / "src" / "core" / "a.py").write_text(BAD_RNG)
        assert main(["lint", str(git_repo / "src"), "--changed", "HEAD"]) == 1
        out = capsys.readouterr().out
        assert "1 finding(s) in 1 file(s)" in out

    def test_cli_changed_nothing_exits_zero(self, git_repo, capsys, monkeypatch):
        monkeypatch.chdir(git_repo)
        assert main(["lint", str(git_repo / "src"), "--changed", "HEAD"]) == 0
        assert "no python files changed" in capsys.readouterr().out


class TestStaleNoqaAudit:
    def test_unknown_rule_id_reported(self, tmp_path):
        src = "rng = np.random.default_rng(0)  # repro: noqa[R1, R99]\n"
        result = run_lint(tmp_path, {"core/x.py": src})
        assert [f.rule for f in result.findings] == ["R0"]
        assert "unknown rule id" in result.findings[0].message
        assert result.suppressed == 1  # R1 still suppressed

    def test_blanket_noqa_on_clean_line_reported(self, tmp_path):
        result = run_lint(
            tmp_path, {"core/x.py": "X = 1  # repro: noqa\n"}
        )
        assert [f.rule for f in result.findings] == ["R0"]
        assert "suppresses nothing" in result.findings[0].message

    def test_docstring_mention_is_not_a_noqa(self, tmp_path):
        src = (
            '"""Suppressions use the form: # repro: noqa[R1]."""\n'
            "import numpy as np\n"
            "rng = np.random.default_rng(0)\n"
        )
        result = run_lint(tmp_path, {"core/x.py": src})
        # The R1 finding survives (the docstring suppresses nothing) and
        # no stale-noqa finding appears (it is not a comment at all).
        assert [f.rule for f in result.findings] == ["R1"]
        assert result.suppressed == 0

    def test_r0_opt_out(self, tmp_path):
        result = run_lint(
            tmp_path, {"core/x.py": "X = 1  # repro: noqa[R0]\n"}
        )
        assert result.findings == []

    def test_subset_runs_skip_the_audit(self, tmp_path):
        # With only R1 active the engine cannot know whether noqa[R5]
        # is stale, so the audit only runs on full-rule runs.
        src = "X = 1  # repro: noqa[R5]\n"
        result = run_lint(tmp_path, {"core/x.py": src}, rule_ids=["R1"])
        assert result.findings == []
