"""Meta-test: the shipped source tree satisfies its own invariants."""

from pathlib import Path

from repro.analysis import lint_paths, render_text

SRC = Path(__file__).resolve().parents[2] / "src"


def test_src_tree_is_lint_clean():
    result = lint_paths([SRC])
    assert result.findings == [], "\n" + render_text(result.findings)
    assert result.checked_files > 50
