"""Engine behaviour: suppression, baselines, discovery, error paths."""

import json

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    apply_baseline,
    lint_paths,
    make_baseline,
    render_json,
    render_text,
    resolve_rules,
)
from repro.errors import AnalysisError

from .test_rules import run_lint

BAD_RNG = "import numpy as np\n\nrng = np.random.default_rng(0)\n"


class TestNoqa:
    def test_blanket_suppression(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"core/x.py": "rng = np.random.default_rng(0)  # repro: noqa\n"},
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_rule_specific_suppression(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"core/x.py": "rng = np.random.default_rng(0)  # repro: noqa[R1]\n"},
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_rule_list_suppression(self, tmp_path):
        src = (
            "def f(x=[]):  # repro: noqa[R4, R5]\n"
            "    return x\n"
        )
        result = run_lint(tmp_path, {"lsh/x.py": src})
        # R4 (two findings) and R5 all sit on the def line.
        assert result.findings == []
        assert result.suppressed == 3

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        result = run_lint(
            tmp_path,
            {"core/x.py": "rng = np.random.default_rng(0)  # repro: noqa[R2]\n"},
        )
        # The R1 finding survives, and the noqa[R2] — which suppressed
        # nothing — is itself reported as stale (R0).
        assert [f.rule for f in result.findings] == ["R0", "R1"]
        assert result.suppressed == 0

    def test_other_lines_unaffected(self, tmp_path):
        src = (
            "a = np.random.default_rng(0)  # repro: noqa\n"
            "b = np.random.default_rng(1)\n"
        )
        result = run_lint(tmp_path, {"core/x.py": src})
        assert [f.line for f in result.findings] == [2]


class TestBaseline:
    def test_roundtrip(self, tmp_path):
        (tmp_path / "core").mkdir()
        (tmp_path / "core" / "x.py").write_text(BAD_RNG)
        baseline = make_baseline([tmp_path])
        out = tmp_path / "baseline.json"
        baseline.save(out)
        loaded = Baseline.load(out)
        assert loaded.counts == baseline.counts
        result = lint_paths([tmp_path], baseline=loaded)
        assert result.findings == []
        assert result.baselined == 1

    def test_new_findings_surface_beyond_allowance(self, tmp_path):
        findings = [
            Finding("core/x.py", line, "R1", "m", "s") for line in (3, 7, 11)
        ]
        baseline = Baseline({"R1": {"core/x.py": 2}})
        kept, dropped = apply_baseline(findings, baseline)
        assert dropped == 2
        # Lowest lines are grandfathered; the newest violation surfaces.
        assert [f.line for f in kept] == [11]

    def test_allowance_is_per_rule_and_path(self, tmp_path):
        findings = [
            Finding("core/x.py", 1, "R1", "m", "s"),
            Finding("core/y.py", 1, "R1", "m", "s"),
            Finding("core/x.py", 2, "R3", "m", "s"),
        ]
        baseline = Baseline({"R1": {"core/x.py": 1}})
        kept, dropped = apply_baseline(findings, baseline)
        assert dropped == 1
        assert {(f.path, f.rule) for f in kept} == {
            ("core/y.py", "R1"),
            ("core/x.py", "R3"),
        }

    def test_corrupt_baseline_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        with pytest.raises(AnalysisError):
            Baseline.load(bad)
        bad.write_text('{"no_counts": 1}')
        with pytest.raises(AnalysisError):
            Baseline.load(bad)


class TestEngine:
    def test_rule_subset(self, tmp_path):
        src = "def f(x=[]):\n    raise ValueError('x')\n"
        result = run_lint(tmp_path, {"core/x.py": src}, rule_ids=["R5"])
        assert [f.rule for f in result.findings] == ["R5"]

    def test_unknown_rule_raises(self):
        with pytest.raises(AnalysisError):
            resolve_rules(["R99"])

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(AnalysisError):
            lint_paths([tmp_path / "nope"])

    def test_syntax_error_raises(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        with pytest.raises(AnalysisError):
            lint_paths([tmp_path])

    def test_pycache_skipped(self, tmp_path):
        cache = tmp_path / "core" / "__pycache__"
        cache.mkdir(parents=True)
        (cache / "x.py").write_text(BAD_RNG)
        result = lint_paths([tmp_path])
        assert result.checked_files == 0

    def test_single_file_target(self, tmp_path):
        target = tmp_path / "core" / "x.py"
        target.parent.mkdir()
        target.write_text(BAD_RNG)
        result = lint_paths([target])
        # Outside a repro/ tree a single file scopes by its parent, so
        # package-scoped rules see it as a top-level module; R1 still
        # applies everywhere.
        assert result.checked_files == 1
        assert [f.rule for f in result.findings] == ["R1"]

    def test_scope_anchors_at_repro(self, tmp_path):
        target = tmp_path / "src" / "repro" / "core" / "x.py"
        target.parent.mkdir(parents=True)
        target.write_text("def f() -> None:\n    raise ValueError('x')\n")
        result = lint_paths([tmp_path])
        # R3 only fires because the path is anchored under repro/core.
        assert [f.rule for f in result.findings] == ["R3"]


class TestRenderers:
    def test_text_format(self):
        finding = Finding("core/x.py", 3, "R1", "uses np.random", "use rngutil")
        assert render_text([finding]) == (
            "core/x.py:3: [R1] uses np.random (fix: use rngutil)"
        )

    def test_json_format(self):
        findings = [
            Finding("b.py", 2, "R5", "m2", "s2"),
            Finding("a.py", 1, "R1", "m1", "s1"),
        ]
        doc = json.loads(render_json(findings, 4, 1, 2))
        assert [f["path"] for f in doc["findings"]] == ["a.py", "b.py"]
        assert doc["counts"] == {
            "total": 2,
            "per_rule": {"R1": 1, "R5": 1},
            "checked_files": 4,
            "suppressed": 1,
            "baselined": 2,
        }
