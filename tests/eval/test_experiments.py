"""Smoke and shape tests for the per-figure experiment functions.

The heavyweight sweeps live in benchmarks/; here we run the analytic
experiments fully and the dataset experiments at toy scale.
"""

import pytest

from repro.eval.experiments import (
    ALL_EXPERIMENTS,
    ExperimentConfig,
    exp_fig5_probability,
    exp_fig7_scheme_design,
    exp_fig10_f1_gold,
    exp_fig11_accuracy_vs_khat,
)


@pytest.fixture(scope="module")
def toy_cfg():
    return ExperimentConfig(
        seed=0,
        cora_records=250,
        spotsigs_records=250,
        images_records=400,
        scales=(1, 2),
        lsh_sweep=(20, 320),
        ks=(2, 5),
        khats=(5, 10),
    )


class TestAnalyticExperiments:
    def test_fig5_shape(self, toy_cfg):
        result = exp_fig5_probability(toy_cfg)
        # Bigger schemes drop harder past the threshold.
        by_scheme = {
            (row["w"], row["z"]): row["prob"]
            for row in result.rows
            if row["angle_deg"] == 55
        }
        assert by_scheme[(30, 70)] < by_scheme[(15, 20)] < by_scheme[(1, 1)]

    def test_fig5_probabilities_valid(self, toy_cfg):
        for row in exp_fig5_probability(toy_cfg).rows:
            assert 0.0 <= row["prob"] <= 1.0

    def test_fig7_tradeoff(self, toy_cfg):
        result = exp_fig7_scheme_design(toy_cfg)
        rows = {(r["w"], r["z"]): r for r in result.rows[:3]}
        # Monotone trade-off: larger w -> lower objective AND lower
        # probability at the threshold.
        assert (
            rows[(15, 140)]["objective"]
            > rows[(30, 70)]["objective"]
            > rows[(60, 35)]["objective"]
        )
        assert (
            rows[(15, 140)]["prob_at_threshold"]
            > rows[(30, 70)]["prob_at_threshold"]
            > rows[(60, 35)]["prob_at_threshold"]
        )
        # The designed optimum is feasible.
        assert result.rows[-1]["feasible"]

    def test_registry_complete(self):
        expected = {
            "fig5", "fig7", "fig8a", "fig8b", "fig9a", "fig9b", "fig10",
            "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
            "fig20", "fig21", "fig22",
        }
        assert expected == set(ALL_EXPERIMENTS)


class TestDatasetExperiments:
    def test_fig10_runs_and_scores(self, toy_cfg):
        result = exp_fig10_f1_gold(toy_cfg)
        assert len(result.rows) == 2 * 3 * len(toy_cfg.ks)
        for row in result.rows:
            assert 0.0 <= row["F1"] <= 1.0

    def test_fig10_methods_agree(self, toy_cfg):
        result = exp_fig10_f1_gold(toy_cfg)
        # adaLSH and Pairs give (nearly) the same F1 per (dataset, k).
        by_key = {}
        for row in result.rows:
            by_key.setdefault((row["dataset"], row["k"]), {})[row["method"]] = row["F1"]
        for scores in by_key.values():
            assert abs(scores["adaLSH"] - scores["Pairs"]) < 0.1

    def test_fig11_recall_grows_with_khat(self, toy_cfg):
        result = exp_fig11_accuracy_vs_khat(toy_cfg, k=2)
        series = {}
        for row in result.rows:
            series.setdefault(row["similarity_thr"], []).append(
                (row["k_hat"], row["R"])
            )
        for points in series.values():
            points.sort()
            recalls = [r for _, r in points]
            assert recalls[-1] >= recalls[0] - 1e-9

    def test_markdown_rendering(self, toy_cfg):
        md = exp_fig7_scheme_design(toy_cfg).to_markdown()
        assert md.startswith("### fig7")
        assert "| w |" in md
