"""Tests for Markdown table rendering."""

from repro.eval.reporting import render_table


def test_empty_rows():
    assert render_table([]) == "(no rows)"


def test_basic_table():
    rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
    table = render_table(rows)
    lines = table.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert lines[2] == "| 1 | x |"
    assert len(lines) == 4


def test_explicit_columns_and_missing_cells():
    rows = [{"a": 1}, {"a": 2, "c": 3}]
    table = render_table(rows, columns=["c", "a"])
    lines = table.splitlines()
    assert lines[0] == "| c | a |"
    assert lines[2] == "|  | 1 |"


def test_float_formatting():
    table = render_table([{"x": 0.123456789}])
    assert "0.1235" in table
