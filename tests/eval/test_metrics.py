"""Tests for accuracy metrics, anchored on the paper's own worked
example (§6.2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    dataset_reduction,
    f1_score,
    map_mar,
    precision_recall_f1,
)


class TestPrecisionRecallF1:
    def test_perfect(self):
        p, r, f1 = precision_recall_f1([1, 2, 3], [1, 2, 3])
        assert (p, r, f1) == (1.0, 1.0, 1.0)

    def test_disjoint(self):
        p, r, f1 = precision_recall_f1([1, 2], [3, 4])
        assert (p, r, f1) == (0.0, 0.0, 0.0)

    def test_partial(self):
        p, r, _f1 = precision_recall_f1([1, 2, 3, 4], [3, 4, 5])
        assert p == pytest.approx(0.5)
        assert r == pytest.approx(2 / 3)

    def test_empty_output_convention(self):
        p, r, _ = precision_recall_f1([], [1, 2])
        assert p == 1.0 and r == 0.0

    def test_empty_truth_convention(self):
        p, r, _ = precision_recall_f1([1], [])
        assert p == 0.0 and r == 1.0

    def test_duplicates_ignored(self):
        p, r, _ = precision_recall_f1([1, 1, 2], [1, 2, 2])
        assert p == 1.0 and r == 1.0

    def test_f1_harmonic_mean(self):
        assert f1_score(0.5, 1.0) == pytest.approx(2 / 3)
        assert f1_score(0.0, 0.0) == 0.0


class TestMapMar:
    def test_paper_worked_example(self):
        """§6.2.1: C = {{a,b,c,f},{e}}, C* = {{a,b,c},{e,g}} for k=2
        gives mAP = 0.775 and mAR = 0.9 (letters mapped to ints)."""
        a, b, c, e, f, g = 1, 2, 3, 4, 5, 6
        clusters = [[a, b, c, f], [e]]
        truth = [[a, b, c], [e, g]]
        map_score, mar_score = map_mar(clusters, truth, 2)
        assert map_score == pytest.approx(0.775)
        assert mar_score == pytest.approx(0.9)

    def test_perfect_clustering(self):
        clusters = [[1, 2, 3], [4, 5]]
        assert map_mar(clusters, clusters, 2) == (1.0, 1.0)

    def test_k_one_uses_top_cluster_only(self):
        clusters = [[1, 2], [99]]
        truth = [[1, 2, 3], [4]]
        map1, mar1 = map_mar(clusters, truth, 1)
        assert map1 == 1.0
        assert mar1 == pytest.approx(2 / 3)

    def test_short_output_convention(self):
        """Fewer output clusters than k: the output union freezes."""
        map_score, mar_score = map_mar([[1, 2]], [[1, 2], [3, 4]], 2)
        assert map_score == 1.0
        assert mar_score == pytest.approx((1.0 + 0.5) / 2)

    def test_k_defaults_to_truth_length(self):
        clusters = [[1], [2]]
        truth = [[1], [2]]
        assert map_mar(clusters, truth) == (1.0, 1.0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            map_mar([[1]], [[1]], 0)

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.lists(
            st.frozensets(st.integers(0, 30), min_size=1, max_size=8),
            min_size=1,
            max_size=5,
        )
    )
    def test_self_comparison_is_perfect(self, data):
        # Deduplicate overlaps: assign each element to its first cluster.
        seen: set = set()
        clusters = []
        for group in data:
            fresh = group - seen
            if fresh:
                clusters.append(sorted(fresh))
                seen |= fresh
        clusters.sort(key=len, reverse=True)
        map_score, mar_score = map_mar(clusters, clusters, len(clusters))
        assert map_score == 1.0 and mar_score == 1.0


class TestReduction:
    def test_percentage(self):
        assert dataset_reduction(100, 1000) == pytest.approx(10.0)

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            dataset_reduction(1, 0)
