"""Tests for the method registry and the run driver."""

import pytest

from repro.baselines import LSHBlocking, PairsBaseline
from repro.core import AdaptiveLSH
from repro.errors import ConfigurationError
from repro.eval.runner import make_method, run_filter


class TestMakeMethod:
    def test_adalsh(self, tiny_spotsigs):
        method = make_method(tiny_spotsigs, "adaLSH", seed=0)
        assert isinstance(method, AdaptiveLSH)

    def test_pairs(self, tiny_spotsigs):
        assert isinstance(make_method(tiny_spotsigs, "Pairs"), PairsBaseline)

    def test_lsh_with_budget(self, tiny_spotsigs):
        method = make_method(tiny_spotsigs, "LSH640", seed=0)
        assert isinstance(method, LSHBlocking)
        assert method.n_hashes == 640
        assert method.verify

    def test_lsh_np_variant(self, tiny_spotsigs):
        method = make_method(tiny_spotsigs, "LSH20nP", seed=0)
        assert not method.verify

    def test_unknown_spec(self, tiny_spotsigs):
        with pytest.raises(ConfigurationError):
            make_method(tiny_spotsigs, "FancyLSH")

    def test_kwargs_forwarded(self, tiny_spotsigs):
        method = make_method(
            tiny_spotsigs, "adaLSH", seed=0, budgets=[20, 40], noise_factor=2.0
        )
        assert method.budgets == [20, 40]


class TestRunFilter:
    def test_record_fields(self, tiny_spotsigs):
        rec = run_filter(tiny_spotsigs, "adaLSH", 3, seed=0, cost_model="analytic")
        assert rec.dataset == "SpotSigs"
        assert rec.method == "adaLSH"
        assert rec.k == 3 and rec.k_hat == 3
        assert 0 <= rec.precision <= 1
        assert 0 <= rec.recall <= 1
        assert rec.output_size == rec.output_rids.size
        assert len(rec.cluster_sizes) == 3

    def test_high_accuracy_on_easy_data(self, tiny_spotsigs):
        rec = run_filter(tiny_spotsigs, "Pairs", 3)
        assert rec.f1 > 0.9
        assert rec.map_score > 0.9

    def test_k_hat_increases_output(self, tiny_spotsigs):
        small = run_filter(tiny_spotsigs, "Pairs", 3)
        wide = run_filter(tiny_spotsigs, "Pairs", 3, k_hat=8)
        assert wide.output_size >= small.output_size
        assert wide.recall >= small.recall

    def test_invalid_k_hat(self, tiny_spotsigs):
        with pytest.raises(ConfigurationError):
            run_filter(tiny_spotsigs, "Pairs", 5, k_hat=3)

    def test_row_rendering(self, tiny_spotsigs):
        rec = run_filter(tiny_spotsigs, "Pairs", 2)
        row = rec.row()
        assert row["method"] == "Pairs"
        assert "F1" in row and "time_s" in row

    def test_prebuilt_method_reused(self, tiny_spotsigs):
        method = make_method(tiny_spotsigs, "adaLSH", seed=0, cost_model="analytic")
        rec1 = run_filter(tiny_spotsigs, "adaLSH", 2, method=method)
        rec2 = run_filter(tiny_spotsigs, "adaLSH", 2, method=method)
        assert rec1.cluster_sizes == rec2.cluster_sizes
        # Warm pools: second run computes no new hashes.
        assert rec2.hashes == 0
