"""Smoke/shape tests for the remaining experiment functions at toy
scale — every figure function must run and produce the fields its
benchmark reads."""

import pytest

from repro.eval.experiments import (
    ExperimentConfig,
    exp_fig12_reduction_speedup,
    exp_fig13_map_mar,
    exp_fig14_recovery,
    exp_fig15_lsh_sweep,
    exp_fig16_images_time,
    exp_fig17_images_f1,
    exp_fig20_np_variants,
    exp_fig21_cost_noise,
    exp_fig22_budget_modes,
)


@pytest.fixture(scope="module")
def toy_cfg():
    return ExperimentConfig(
        seed=1,
        cora_records=200,
        spotsigs_records=200,
        images_records=300,
        scales=(1, 2),
        lsh_sweep=(20, 320),
        ks=(2, 3),
        khats=(3, 6),
    )


def test_fig12_fields(toy_cfg):
    rows = exp_fig12_reduction_speedup(toy_cfg, k=2).rows
    assert rows
    for row in rows:
        assert {"scale", "actual_pct", "speedup_wo_recovery", "red%"} <= set(row)
        assert row["speedup_wo_recovery"] > 0


def test_fig13_fields(toy_cfg):
    rows = exp_fig13_map_mar(toy_cfg).rows
    assert all(0 <= row["mAP"] <= 1 for row in rows)
    assert all(row["k_hat"] >= row["k"] for row in rows)


def test_fig14_fields(toy_cfg):
    rows = exp_fig14_recovery(toy_cfg, k=2).rows
    for row in rows:
        assert 0 <= row["mAP_rec"] <= 1
        assert row["speedup_with_recovery"] > 0


def test_fig14_recovery_improves_recall(toy_cfg):
    rows = exp_fig14_recovery(toy_cfg, k=2).rows
    for row in rows:
        assert row["R_rec"] >= row["R"] - 1e-9


def test_fig15_covers_sweep(toy_cfg):
    rows = exp_fig15_lsh_sweep(toy_cfg, k=2).rows
    methods = {row["method"] for row in rows}
    assert methods == {"adaLSH", "LSH20", "LSH320"}


def test_fig16_grid(toy_cfg):
    rows = exp_fig16_images_time(toy_cfg, k=2).rows
    assert len(rows) == 2 * 3 * 3  # thresholds x exponents x methods


def test_fig17_grid(toy_cfg):
    rows = exp_fig17_images_f1(toy_cfg, k=2).rows
    assert len(rows) == 3 * 3
    assert all(0 <= row["F1"] <= 1 for row in rows)


def test_fig20_f1_target_bounds(toy_cfg):
    rows = exp_fig20_np_variants(toy_cfg, k=3).rows
    for row in rows:
        assert 0 <= row["F1_target"] <= 1
        assert isinstance(row["sizes_match_target"], bool)


def test_fig21_shares_base_model(toy_cfg):
    """All noise rows at one (k, scale) perturb the same calibration:
    nf=1 work profile must sit between the nf extremes."""
    rows = exp_fig21_cost_noise(toy_cfg, ks=(2,)).rows
    by_scale: dict = {}
    for row in rows:
        by_scale.setdefault(row["scale"], {})[row["noise_factor"]] = row
    for scale, by_nf in by_scale.items():
        assert by_nf[0.2]["pairs"] >= by_nf[1.0]["pairs"] >= by_nf[5.0]["pairs"]


def test_fig22_modes(toy_cfg):
    rows = exp_fig22_budget_modes(toy_cfg, k=2).rows
    modes = {row["mode"] for row in rows}
    assert modes == {"expo", "lin320", "lin640", "lin1280"}
    for row in rows:
        if row["mode"] == "expo":
            continue
        # Linear modes hash every record with hundreds of functions.
        assert row["hashes"] > 0
