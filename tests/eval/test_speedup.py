"""Tests for the benchmark ER / recovery speedup model (§6.2.2)."""

import pytest

from repro.eval.speedup import SpeedupModel
from tests.conftest import make_shingle_store
from repro.distance import JaccardDistance, ThresholdRule


class TestFormulas:
    def test_whole_time(self):
        model = SpeedupModel(seconds_per_pair=2.0, total_records=10)
        assert model.whole_time() == 2.0 * 45

    def test_reduced_time(self):
        model = SpeedupModel(1.0, 100)
        assert model.reduced_time(10) == 45.0

    def test_recovery_time(self):
        model = SpeedupModel(1.0, 100)
        assert model.recovery_time(10) == 10 * 90

    def test_speedup_without_recovery(self):
        model = SpeedupModel(1.0, 100)
        # Whole = 4950; filtering 50 + reduced 45 -> ~52x
        assert model.speedup_without_recovery(50.0, 10) == pytest.approx(
            4950 / 95.0
        )

    def test_speedup_with_recovery_lower(self):
        model = SpeedupModel(1.0, 100)
        without = model.speedup_without_recovery(10.0, 10)
        with_rec = model.speedup_with_recovery(10.0, 10)
        assert with_rec < without

    def test_full_output_gives_no_speedup(self):
        model = SpeedupModel(1.0, 100)
        assert model.speedup_without_recovery(0.0, 100) == pytest.approx(1.0)


class TestMeasurement:
    def test_measured_cost_positive(self):
        store, _ = make_shingle_store(seed=2)
        rule = ThresholdRule(JaccardDistance("shingles"), 0.6)
        model = SpeedupModel.measure(store, rule, seed=0)
        assert model.seconds_per_pair > 0
        assert model.total_records == len(store)
