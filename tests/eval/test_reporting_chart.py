"""Tests for the ASCII series chart renderer."""

import pytest

from repro.eval.reporting import render_series_chart


class TestChart:
    def test_empty(self):
        assert render_series_chart({}) == "(no data)"

    def test_bar_lengths_proportional(self):
        chart = render_series_chart({"a": [(1, 1.0), (2, 2.0)]}, width=10)
        lines = [ln for ln in chart.splitlines() if "#" in ln]
        assert lines[0].count("#") * 2 == pytest.approx(
            lines[1].count("#"), abs=1
        )

    def test_max_value_gets_full_width(self):
        chart = render_series_chart({"a": [(1, 5.0)]}, width=20)
        assert "#" * 20 in chart

    def test_zero_values_have_no_bar(self):
        chart = render_series_chart({"a": [(1, 0.0), (2, 4.0)]}, width=10)
        zero_line = next(ln for ln in chart.splitlines() if ln.endswith(" 0"))
        assert "#" not in zero_line

    def test_series_separated_by_blank_line(self):
        chart = render_series_chart({"a": [(1, 1.0)], "b": [(1, 2.0)]})
        assert "" in chart.splitlines()

    def test_log_scale_compresses_ratios(self):
        linear = render_series_chart(
            {"a": [(1, 1.0), (2, 1000.0)]}, width=40, log_y=False
        )
        log = render_series_chart(
            {"a": [(1, 1.0), (2, 1000.0)]}, width=40, log_y=True
        )
        first_linear = linear.splitlines()[0].count("#")
        first_log = log.splitlines()[0].count("#")
        assert first_log >= first_linear

    def test_y_label_header(self):
        chart = render_series_chart({"a": [(1, 3.0)]}, y_label="time")
        assert chart.splitlines()[0].startswith("time")

    def test_values_printed(self):
        chart = render_series_chart({"m": [(10, 0.1234)]})
        assert "0.1234" in chart
