"""Tests for the downstream ER stage."""

import numpy as np

from repro.er import benchmark_er_pairs, resolve
from tests.conftest import make_vector_store
from repro.distance import CosineDistance, ThresholdRule


def test_resolve_whole_store():
    store, _ = make_vector_store(seed=61)
    rule = ThresholdRule(CosineDistance("vec"), 10 / 180.0)
    clusters = resolve(store, rule)
    assert [c.size for c in clusters[:3]] == [30, 18, 8]
    merged = np.sort(np.concatenate(clusters))
    assert np.array_equal(merged, np.arange(len(store)))


def test_resolve_subset():
    store, _ = make_vector_store(seed=61)
    rule = ThresholdRule(CosineDistance("vec"), 10 / 180.0)
    subset = np.array([0, 1, 2, 40, 50])
    clusters = resolve(store, rule, subset)
    assert np.array_equal(np.sort(np.concatenate(clusters)), np.sort(subset))


def test_resolve_orders_largest_first():
    store, _ = make_vector_store(seed=61)
    rule = ThresholdRule(CosineDistance("vec"), 10 / 180.0)
    sizes = [c.size for c in resolve(store, rule)]
    assert sizes == sorted(sizes, reverse=True)


def test_benchmark_er_pairs():
    assert benchmark_er_pairs(10) == 45
    assert benchmark_er_pairs(1) == 0
    assert benchmark_er_pairs(0) == 0
