"""Tests for the Figure-1 end-to-end pipeline."""

import numpy as np
import pytest

from repro.core import AdaptiveLSH
from repro.er import TopKPipeline
from repro.errors import ConfigurationError
from repro.core.config import AdaptiveConfig


@pytest.fixture(scope="module")
def pipeline_setup(tiny_spotsigs):
    ds = tiny_spotsigs
    method = AdaptiveLSH(ds.store, ds.rule, config=AdaptiveConfig(seed=1, cost_model="analytic"))
    return ds, method


class TestPipeline:
    def test_top_k_entities(self, pipeline_setup):
        ds, method = pipeline_setup
        result = TopKPipeline(ds, method).run(3)
        truth = [c.size for c in ds.ground_truth_clusters()[:3]]
        got = [c.size for c in result.entities]
        # ER on the filtered output reproduces entity sizes closely.
        assert len(got) == 3
        for g, t in zip(got, truth):
            assert g >= 0.8 * t

    def test_k_hat_improves_recall(self, pipeline_setup):
        ds, method = pipeline_setup
        plain = TopKPipeline(ds, method).run(3)
        wide = TopKPipeline(ds, method, k_hat=10).run(3)
        assert wide.filter_result.output_size >= plain.filter_result.output_size

    def test_recovery_extends_entities(self, pipeline_setup):
        ds, method = pipeline_setup
        without = TopKPipeline(ds, method).run(2)
        with_rec = TopKPipeline(ds, method, recover=True).run(2)
        assert sum(c.size for c in with_rec.entities) >= sum(
            c.size for c in without.entities
        )
        assert with_rec.recovery_time >= 0.0

    def test_timing_breakdown(self, pipeline_setup):
        ds, method = pipeline_setup
        result = TopKPipeline(ds, method).run(2)
        assert result.total_time >= result.er_time
        assert result.info["er_pairs"] >= 0

    def test_k_hat_below_k_rejected(self, pipeline_setup):
        ds, method = pipeline_setup
        with pytest.raises(ConfigurationError):
            TopKPipeline(ds, method, k_hat=2).run(5)

    def test_filter_method_validated(self, pipeline_setup):
        ds, _ = pipeline_setup
        with pytest.raises(ConfigurationError):
            TopKPipeline(ds, object())
