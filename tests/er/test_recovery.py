"""Tests for the recovery process (§6.1.2)."""

import numpy as np
import pytest

from repro.er import actual_recovery, perfect_recovery, recovery_pair_count


class TestPairCount:
    def test_formula(self):
        assert recovery_pair_count(10, 100) == 900

    def test_full_output(self):
        assert recovery_pair_count(100, 100) == 0


class TestPerfectRecovery:
    def test_completes_entities(self, tiny_spotsigs):
        ds = tiny_spotsigs
        truth = ds.ground_truth_clusters()
        # Drop half of the top entity from the "output".
        partial = truth[0][: truth[0].size // 2]
        recovered = perfect_recovery(ds, partial)
        assert len(recovered) == 1
        assert np.array_equal(np.sort(recovered[0]), np.sort(truth[0]))

    def test_multiple_entities(self, tiny_spotsigs):
        ds = tiny_spotsigs
        truth = ds.ground_truth_clusters()
        output = np.concatenate([truth[0][:3], truth[1][:2]])
        recovered = perfect_recovery(ds, output)
        assert len(recovered) == 2
        sizes = [c.size for c in recovered]
        assert sizes == sorted(sizes, reverse=True)

    def test_cannot_recover_missing_entities(self, tiny_spotsigs):
        """§6.1.2: an entity entirely absent from the filtering output
        is unrecoverable."""
        ds = tiny_spotsigs
        truth = ds.ground_truth_clusters()
        recovered = perfect_recovery(ds, truth[1][:4])
        recovered_rids = set(np.concatenate(recovered).tolist())
        assert not (set(truth[0].tolist()) & recovered_rids)


class TestActualRecovery:
    def test_pulls_back_matching_records(self, tiny_spotsigs):
        ds = tiny_spotsigs
        truth = ds.ground_truth_clusters()
        partial = truth[0][: truth[0].size - 3]
        recovered = actual_recovery(ds.store, ds.rule, [partial])
        assert recovered[0].size >= partial.size

    def test_excluded_defaults_to_complement(self, tiny_spotsigs):
        ds = tiny_spotsigs
        truth = ds.ground_truth_clusters()
        clusters = [truth[0][:5]]
        recovered = actual_recovery(ds.store, ds.rule, clusters)
        assert recovered[0].size > 5

    def test_record_joins_single_cluster(self, tiny_spotsigs):
        ds = tiny_spotsigs
        truth = ds.ground_truth_clusters()
        clusters = [truth[0][:5], truth[1][:5]]
        recovered = actual_recovery(ds.store, ds.rule, clusters)
        all_members = np.concatenate(recovered)
        assert len(np.unique(all_members)) == len(all_members)

    def test_sampling_cap(self, tiny_spotsigs):
        ds = tiny_spotsigs
        truth = ds.ground_truth_clusters()
        clusters = [truth[0][:8]]
        capped = actual_recovery(
            ds.store, ds.rule, clusters, max_cluster_sample=2
        )
        assert capped[0].size >= 8
