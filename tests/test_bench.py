"""The shared BENCH_*.json emission envelope."""

import json

import pytest

from repro.bench import (
    RESERVED_KEYS,
    SCHEMA_VERSION,
    config_hash,
    emit_result,
)


def test_envelope_and_payload_topology(tmp_path):
    out = tmp_path / "BENCH_example.json"
    document = emit_result(
        str(out),
        "example",
        config={"records": 10, "seed": 0},
        timings={"total_seconds": 1.23456789},
        payload={"scenarios": {"a": 1}, "failures": []},
        echo=False,
    )
    on_disk = json.loads(out.read_text())
    assert on_disk == document
    assert document["schema_version"] == SCHEMA_VERSION
    assert document["benchmark"] == "example"
    assert document["config_hash"] == config_hash({"records": 10, "seed": 0})
    assert document["timings"] == {"total_seconds": 1.23457}
    # Payload keys stay top-level (baseline gates read them directly).
    assert document["scenarios"] == {"a": 1}


def test_config_hash_is_order_independent():
    assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
    assert config_hash({"a": 1}) != config_hash({"a": 2})


def test_payload_may_not_shadow_envelope():
    bad = dict.fromkeys(RESERVED_KEYS, 0)
    with pytest.raises(ValueError, match="shadow"):
        emit_result(
            None,
            "example",
            config={},
            timings={},
            payload=bad,
            echo=False,
        )


def test_path_none_skips_write(capsys):
    document = emit_result(
        None,
        "example",
        config={"x": 1},
        timings={"t": 0.5},
        payload={"ok": True},
    )
    assert document["ok"] is True
    assert json.loads(capsys.readouterr().out)["ok"] is True
