"""Tests for Algorithm 1 (Adaptive LSH): correctness against the exact
Pairs baseline, termination semantics, selection strategies, the
incremental mode, and the refine() entry point."""

import numpy as np
import pytest

from repro.baselines import PairsBaseline
from repro.core import AdaptiveLSH, CostModel
from repro.errors import ConfigurationError
from tests.conftest import make_vector_store
from repro.distance import CosineDistance, ThresholdRule
from repro.core.config import AdaptiveConfig


@pytest.fixture(scope="module")
def setup():
    store, labels = make_vector_store(
        cluster_sizes=(30, 18, 8, 5), n_noise=50, seed=33
    )
    rule = ThresholdRule(CosineDistance("vec"), 10 / 180.0)
    return store, rule, labels


def truth_clusters(store, rule, k):
    return [c.rids.tolist() for c in PairsBaseline(store, rule).run(k).clusters]


class TestCorrectness:
    def test_matches_pairs_output(self, setup):
        store, rule, _ = setup
        ada = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic"))
        result = ada.run(3)
        expected = truth_clusters(store, rule, 3)
        got = [sorted(c.rids.tolist()) for c in result.clusters]
        assert got == [sorted(c) for c in expected]

    def test_all_final_clusters(self, setup):
        store, rule, _ = setup
        ada = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic"))
        result = ada.run(3)
        for cluster in result.clusters:
            assert cluster.is_final(ada.last_level)

    def test_sizes_descending(self, setup):
        store, rule, _ = setup
        result = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic")).run(4)
        sizes = [c.size for c in result.clusters]
        assert sizes == sorted(sizes, reverse=True)

    def test_k_larger_than_cluster_count_raises(self, setup):
        """k exceeding the resolvable components is a configuration
        error (loud, not a silently short output), and the message names
        the largest k that would succeed."""
        store, rule, _ = setup
        small_store = store.take(np.arange(6))
        ada = AdaptiveLSH(small_store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic"))
        with pytest.raises(ConfigurationError, match="resolvable clusters") as exc:
            ada.run(100)
        # The advertised bound works.
        bound = int(str(exc.value).rsplit("k <= ", 1)[1])
        result = ada.run(bound)
        assert result.output_size == 6

    def test_k_one(self, setup):
        store, rule, _ = setup
        result = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic")).run(1)
        assert result.k == 1
        assert result.clusters[0].size == 30

    def test_k_must_be_positive(self, setup):
        store, rule, _ = setup
        ada = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic"))
        with pytest.raises(ConfigurationError):
            ada.run(0)

    def test_rerun_is_consistent(self, setup):
        """Reusing one instance across k values (pool reuse) gives the
        same answer as fresh instances."""
        store, rule, _ = setup
        ada = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic"))
        first = [c.size for c in ada.run(2).clusters]
        second = [c.size for c in ada.run(4).clusters]
        fresh = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic"))
        assert [c.size for c in fresh.run(4).clusters] == second
        assert second[:2] == first


class TestSelectionStrategies:
    @pytest.mark.parametrize("selection", ["largest-unoptimized", "smallest", "random"])
    def test_alternative_selections_same_output(self, setup, selection):
        """All selection strategies terminate with the same top-k (they
        differ only in cost), on the same execution instance."""
        store, rule, _ = setup
        base = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic"))
        alt = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic", selection=selection))
        base_sizes = sorted((c.size for c in base.run(3).clusters), reverse=True)
        alt_sizes = sorted((c.size for c in alt.run(3).clusters), reverse=True)
        assert base_sizes == alt_sizes

    def test_largest_first_does_less_work_than_smallest(self, setup):
        """Largest-First optimality in practice: strictly fewer or equal
        hashes than smallest-first on a clustered dataset."""
        store, rule, _ = setup
        largest = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic"))
        smallest = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic", selection="smallest"))
        h_largest = largest.run(2).counters.hashes_computed
        h_smallest = smallest.run(2).counters.hashes_computed
        assert h_largest <= h_smallest

    def test_invalid_selection(self, setup):
        store, rule, _ = setup
        with pytest.raises(ConfigurationError):
            AdaptiveLSH(store, rule, config=AdaptiveConfig(selection="bogus"))


class TestIncrementalMode:
    def test_iter_clusters_order(self, setup):
        """Incremental mode yields clusters largest-first, matching the
        batch output."""
        store, rule, _ = setup
        ada = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic"))
        batch = [c.size for c in ada.run(3).clusters]
        fresh = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic"))
        incremental = [c.size for c in fresh.iter_clusters(3)]
        assert incremental == batch

    def test_partial_consumption(self, setup):
        """Stopping after the first cluster is allowed (Theorem 2's
        point: top-1 is ready before the rest)."""
        store, rule, _ = setup
        ada = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic"))
        gen = ada.iter_clusters(3)
        first = next(gen)
        assert first.size == 30
        gen.close()


class TestCostModelInteraction:
    def test_jump_immediately_with_expensive_hashing(self, setup):
        """If hashing is absurdly expensive, everything goes to P and
        the result is still exact."""
        store, rule, _ = setup
        budgets = [20, 40, 80]
        model = CostModel.from_budgets(budgets, cost_per_hash=1e9, cost_p=1e-9)
        ada = AdaptiveLSH(store, rule, config=AdaptiveConfig(budgets=budgets, seed=5, cost_model=model))
        result = ada.run(2)
        expected = truth_clusters(store, rule, 2)
        assert [sorted(c.rids.tolist()) for c in result.clusters] == [
            sorted(c) for c in expected
        ]

    def test_never_jump_with_free_hashing(self, setup):
        """If hashing is free, the algorithm rides the whole sequence;
        output still matches (H_L clusters are final)."""
        store, rule, _ = setup
        budgets = [20, 40, 80, 160, 320, 640]
        model = CostModel.from_budgets(budgets, cost_per_hash=1e-12, cost_p=1e9)
        ada = AdaptiveLSH(store, rule, config=AdaptiveConfig(budgets=budgets, seed=5, cost_model=model))
        result = ada.run(2)
        assert [c.size for c in result.clusters] == [30, 18]

    def test_noise_factor_changes_work_profile(self, setup):
        store, rule, _ = setup
        clean = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic"))
        noisy = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic", noise_factor=0.01))
        r_clean = clean.run(2)
        r_noisy = noisy.run(2)
        # Heavy under-estimation of P -> P applied sooner -> more pairs.
        assert r_noisy.counters.pairs_charged >= r_clean.counters.pairs_charged

    def test_records_per_level_histogram(self, setup):
        store, rule, _ = setup
        ada = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic"))
        result = ada.run(2)
        hist = result.info["records_per_level"]
        assert sum(hist.values()) == len(store)
        # Level 0 means never touched by any function; H_1 covers all.
        assert 0 not in hist


class TestRefine:
    def test_refine_from_h1_clusters(self, setup):
        """refine() over H_1 output equals a full run."""
        store, rule, _ = setup
        ada = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic"))
        full = ada.run(3)
        fresh = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic"))
        fresh.prepare()
        h1_clusters = fresh._functions[0].apply(store.rids)
        refined = fresh.refine([(c, 1) for c in h1_clusters], 3)
        assert [c.size for c in refined.clusters] == [
            c.size for c in full.clusters
        ]

    def test_refine_counts_k(self, setup):
        store, rule, _ = setup
        ada = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic"))
        ada.prepare()
        refined = ada.refine([(store.rids, 1)], 2)
        assert refined.k == 2
