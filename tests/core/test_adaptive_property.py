"""Property-based end-to-end test: Adaptive LSH agrees with the exact
Pairs baseline on randomly generated datasets.

This is the paper's central correctness claim ("adaLSH always gives the
same — or a very slightly different — outcome as Pairs", §7.1),
checked here in its strict form on small random instances: with a
feasible design the top-k cluster *size multisets* must match, and the
record sets must match up to ties at rank k.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import PairsBaseline
from repro.core import AdaptiveLSH
from repro.distance import JaccardDistance, ThresholdRule
from repro.records import RecordStore, Schema
from repro.core.config import AdaptiveConfig


@st.composite
def clustered_shingle_dataset(draw):
    """A random shingle dataset with planted near-duplicate clusters."""
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    n_clusters = draw(st.integers(1, 4))
    sizes = [draw(st.integers(2, 12)) for _ in range(n_clusters)]
    n_noise = draw(st.integers(0, 15))
    keep_p = draw(st.floats(0.75, 0.95))
    sets = []
    next_id = 0
    for size in sizes:
        base = np.arange(next_id, next_id + 50, dtype=np.int64)
        next_id += 50
        for _ in range(size):
            kept = base[rng.random(50) < keep_p]
            sets.append(kept if kept.size else base[:1])
    for _ in range(n_noise):
        sets.append(np.arange(next_id, next_id + 50, dtype=np.int64))
        next_id += 50
    store = RecordStore(Schema.single_shingles(), {"shingles": sets})
    k = draw(st.integers(1, n_clusters))
    return store, k, seed


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=clustered_shingle_dataset())
def test_adaptive_matches_pairs(data):
    store, k, seed = data
    rule = ThresholdRule(JaccardDistance("shingles"), 0.6)
    ada = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=seed % 1000, cost_model="analytic"))
    got = ada.run(k)
    expected = PairsBaseline(store, rule).run(k)
    got_sizes = [c.size for c in got.clusters]
    expected_sizes = [c.size for c in expected.clusters]
    assert got_sizes == expected_sizes
    # Where no rank tie is possible — the size is unique within the
    # top-k AND strictly larger than the k-th size (a cluster excluded
    # by Pairs can be as large as the k-th, so the boundary rank can
    # legitimately differ) — the record sets must agree.
    kth = expected_sizes[-1]
    for g, e in zip(got.clusters, expected.clusters):
        if e.size > kth and expected_sizes.count(e.size) == 1:
            assert np.array_equal(np.sort(g.rids), np.sort(e.rids))


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=clustered_shingle_dataset(), selection=st.sampled_from(["smallest", "random"]))
def test_selection_strategies_agree(data, selection):
    """Alternative cluster-selection orders change cost, never output."""
    store, k, seed = data
    rule = ThresholdRule(JaccardDistance("shingles"), 0.6)
    largest = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=seed % 1000, cost_model="analytic"))
    other = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=seed % 1000, cost_model="analytic", selection=selection))
    assert [c.size for c in largest.run(k).clusters] == [
        c.size for c in other.run(k).clusters
    ]
