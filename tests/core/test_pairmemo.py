"""Unit tests for the cross-round pair-verdict memo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pairmemo import (
    MATCH,
    NO_MATCH,
    PAIR_MEMO_ENV,
    UNKNOWN,
    PairVerdictMemo,
    pack_pair_keys,
    resolve_pair_memo,
    rule_fingerprint,
)
from repro.distance import JaccardDistance, ThresholdRule
from repro.errors import ConfigurationError
from repro.records import RecordStore, Schema


def _shingle_store(n=8, offset=0):
    sets = [np.arange(offset + i, offset + i + 4, dtype=np.int64) for i in range(n)]
    return RecordStore(Schema.single_shingles(), {"shingles": sets})


class TestPackPairKeys:
    def test_canonical_order(self):
        a = np.array([5, 2], dtype=np.int64)
        b = np.array([2, 5], dtype=np.int64)
        keys = pack_pair_keys(a, b)
        assert keys[0] == keys[1] == (2 << 32) | 5

    def test_broadcasts_scalar_against_array(self):
        rid = np.asarray(7, dtype=np.int64)
        others = np.array([1, 9, 3], dtype=np.int64)
        keys = pack_pair_keys(rid, others)
        expected = [(1 << 32) | 7, (7 << 32) | 9, (3 << 32) | 7]
        assert keys.tolist() == expected

    def test_distinct_pairs_distinct_keys(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 10_000, size=2000).astype(np.int64)
        b = rng.integers(0, 10_000, size=2000).astype(np.int64)
        keep = a != b
        a, b = a[keep], b[keep]
        keys = pack_pair_keys(a, b)
        pairs = {(min(x, y), max(x, y)) for x, y in zip(a.tolist(), b.tolist())}
        assert np.unique(keys).size == len(pairs)


class TestResolveFlag:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv(PAIR_MEMO_ENV, "0")
        assert resolve_pair_memo(True) is True
        assert resolve_pair_memo(False) is False

    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv(PAIR_MEMO_ENV, raising=False)
        assert resolve_pair_memo(None) is True

    @pytest.mark.parametrize("raw,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("false", False), ("No", False), ("off", False),
    ])
    def test_env_values(self, monkeypatch, raw, expected):
        monkeypatch.setenv(PAIR_MEMO_ENV, raw)
        assert resolve_pair_memo(None) is expected

    def test_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(PAIR_MEMO_ENV, "maybe")
        with pytest.raises(ConfigurationError):
            resolve_pair_memo(None)


class TestLookupRecord:
    def test_roundtrip(self):
        memo = PairVerdictMemo()
        keys = pack_pair_keys(
            np.array([0, 1, 2], dtype=np.int64),
            np.array([3, 4, 5], dtype=np.int64),
        )
        memo.record(keys, np.array([True, False, True]))
        verdicts = memo.lookup(keys)
        assert verdicts.tolist() == [MATCH, NO_MATCH, MATCH]
        assert memo.pairs == 3

    def test_unknown_until_recorded(self):
        memo = PairVerdictMemo()
        keys = pack_pair_keys(
            np.array([0], dtype=np.int64), np.array([1], dtype=np.int64)
        )
        assert memo.lookup(keys).tolist() == [UNKNOWN]
        assert memo.misses == 1 and memo.hits == 0

    def test_hit_miss_counters(self):
        memo = PairVerdictMemo()
        keys = pack_pair_keys(
            np.arange(4, dtype=np.int64), np.arange(4, 8, dtype=np.int64)
        )
        memo.record(keys[:2], np.array([True, True]))
        memo.lookup(keys)
        assert memo.hits == 2 and memo.misses == 2

    def test_duplicate_keys_in_one_batch_count_once(self):
        memo = PairVerdictMemo()
        key = pack_pair_keys(
            np.array([1, 1], dtype=np.int64), np.array([2, 2], dtype=np.int64)
        )
        memo.record(key, np.array([True, True]))
        assert memo.pairs == 1

    def test_growth_preserves_verdicts(self):
        memo = PairVerdictMemo()
        n = 20_000  # far beyond the initial 4096-slot capacity
        a = np.arange(n, dtype=np.int64)
        b = a + n
        keys = pack_pair_keys(a, b)
        matched = (a % 3) == 0
        memo.record(keys, matched)
        assert memo.pairs == n
        assert not memo.frozen
        verdicts = memo.lookup(keys)
        assert np.array_equal(verdicts == MATCH, matched)
        assert np.all(verdicts != UNKNOWN)

    def test_freeze_under_budget_pressure(self):
        # Budget allows the initial table only: the first growth attempt
        # freezes the memo, existing verdicts keep serving, new pairs
        # count as evictions.
        memo = PairVerdictMemo(max_bytes=4096 * 9)
        first = pack_pair_keys(
            np.arange(100, dtype=np.int64), np.arange(100, 200, dtype=np.int64)
        )
        memo.record(first, np.ones(100, dtype=bool))
        n = 5000
        more = pack_pair_keys(
            np.arange(1000, 1000 + n, dtype=np.int64),
            np.arange(9000, 9000 + n, dtype=np.int64),
        )
        memo.record(more, np.zeros(n, dtype=bool))
        assert memo.frozen
        assert memo.evictions > 0
        assert np.all(memo.lookup(first) == MATCH)

    def test_empty_batches_are_noops(self):
        memo = PairVerdictMemo()
        empty = np.zeros(0, dtype=np.int64)
        memo.record(empty, np.zeros(0, dtype=bool))
        assert memo.lookup(empty).size == 0
        assert memo.stats()["pairs"] == 0


class TestBinding:
    def _rule(self, threshold=0.5):
        return ThresholdRule(JaccardDistance("shingles"), threshold)

    def _seed(self, memo):
        keys = pack_pair_keys(
            np.array([0], dtype=np.int64), np.array([1], dtype=np.int64)
        )
        memo.record(keys, np.array([True]))
        return keys

    def test_rebind_same_store_and_rule_keeps_table(self):
        store = _shingle_store()
        memo = PairVerdictMemo()
        memo.bind(store, self._rule())
        keys = self._seed(memo)
        memo.bind(store, self._rule())
        assert memo.lookup(keys).tolist() == [MATCH]
        assert memo.invalidations == 0

    def test_rule_change_invalidates(self):
        store = _shingle_store()
        memo = PairVerdictMemo()
        memo.bind(store, self._rule(0.5))
        keys = self._seed(memo)
        memo.bind(store, self._rule(0.6))
        assert memo.lookup(keys).tolist() == [UNKNOWN]
        assert memo.invalidations == 1

    def test_different_store_invalidates(self):
        memo = PairVerdictMemo()
        memo.bind(_shingle_store(offset=0), self._rule())
        keys = self._seed(memo)
        memo.bind(_shingle_store(offset=100), self._rule())
        assert memo.lookup(keys).tolist() == [UNKNOWN]
        assert memo.invalidations == 1

    def test_store_extension_keeps_table(self):
        store = _shingle_store(n=6)
        memo = PairVerdictMemo()
        memo.bind(store, self._rule())
        keys = self._seed(memo)
        extended = store.concat(_shingle_store(n=2, offset=500))
        memo.bind(extended, self._rule())
        assert memo.lookup(keys).tolist() == [MATCH]
        assert memo.invalidations == 0

    def test_fingerprint_distinguishes_rules(self):
        assert rule_fingerprint(self._rule(0.5)) != rule_fingerprint(
            self._rule(0.6)
        )
        assert rule_fingerprint(self._rule(0.5)) == rule_fingerprint(
            self._rule(0.5)
        )

    def test_stats_shape(self):
        memo = PairVerdictMemo()
        stats = memo.stats()
        assert set(stats) == {
            "pairs",
            "bytes",
            "hits",
            "misses",
            "evictions",
            "invalidations",
            "frozen",
            "disabled",
        }
