"""End-to-end Adaptive LSH with an OR rule (two table groups) and with
a mixed vector+shingle schema — paths not covered by the single-field
integration tests."""

import numpy as np
import pytest

from repro.baselines import PairsBaseline
from repro.core import AdaptiveLSH
from repro.distance import (
    CosineDistance,
    JaccardDistance,
    OrRule,
    ThresholdRule,
)
from repro.records import FieldKind, FieldSpec, RecordStore, Schema
from repro.core.config import AdaptiveConfig

SCHEMA = Schema(
    (
        FieldSpec("vec", FieldKind.VECTOR),
        FieldSpec("toks", FieldKind.SHINGLES),
    )
)


@pytest.fixture(scope="module")
def or_dataset():
    """Entities connected through EITHER similar vectors OR similar
    token sets: entity A shares vectors, entity B shares tokens."""
    rng = np.random.default_rng(42)
    vectors, tokens = [], []
    # Entity A: 20 records, near-identical vectors, random tokens.
    base_vec = rng.normal(size=12)
    for _ in range(20):
        vectors.append(base_vec + rng.normal(scale=0.005, size=12))
        tokens.append(rng.choice(10_000, size=30, replace=False))
    # Entity B: 12 records, random vectors, near-identical token sets.
    base_toks = rng.choice(10_000, size=40, replace=False)
    for _ in range(12):
        vectors.append(rng.normal(size=12))
        kept = base_toks[rng.random(40) < 0.9]
        tokens.append(kept if kept.size else base_toks[:1])
    # Background noise.
    for _ in range(60):
        vectors.append(rng.normal(size=12))
        tokens.append(rng.choice(10_000, size=30, replace=False))
    store = RecordStore(SCHEMA, {"vec": np.asarray(vectors), "toks": tokens})
    rule = OrRule(
        [
            ThresholdRule(CosineDistance("vec"), 6 / 180.0),
            ThresholdRule(JaccardDistance("toks"), 0.4),
        ]
    )
    return store, rule


class TestOrRuleEndToEnd:
    def test_matches_pairs(self, or_dataset):
        store, rule = or_dataset
        ada = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=1, cost_model="analytic")).run(2)
        pairs = PairsBaseline(store, rule).run(2)
        assert [sorted(c.rids.tolist()) for c in ada.clusters] == [
            sorted(c.rids.tolist()) for c in pairs.clusters
        ]

    def test_finds_both_entity_types(self, or_dataset):
        store, rule = or_dataset
        result = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=1, cost_model="analytic")).run(2)
        assert result.clusters[0].size >= 20
        assert result.clusters[1].size >= 12

    def test_design_has_two_branches(self, or_dataset):
        store, rule = or_dataset
        ada = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=1, cost_model="analytic"))
        ada.prepare()
        for design in ada._designs:
            assert len(design.groups) == 2

    def test_two_pools_live(self, or_dataset):
        store, rule = or_dataset
        ada = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=1, cost_model="analytic"))
        ada.prepare()
        assert len(ada._pools) == 2
