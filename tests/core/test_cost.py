"""Tests for the cost model (Definition 3) and its calibration."""

import pytest

from repro.core.cost import CostModel
from repro.errors import CalibrationError
from repro.lsh.design import build_design_context, design_scheme
from repro.distance import JaccardDistance, ThresholdRule
from tests.conftest import make_shingle_store


class TestAnalyticModel:
    def test_level_costs_from_budgets(self):
        model = CostModel.from_budgets([20, 40, 80], cost_per_hash=2.0, cost_p=5.0)
        assert model.cost_level(1) == 40.0
        assert model.cost_level(3) == 160.0

    def test_marginal_cost(self):
        model = CostModel.from_budgets([20, 40, 80], cost_p=5.0)
        assert model.marginal_hash_cost(1, 10) == (40 - 20) * 10

    def test_pairwise_cost(self):
        model = CostModel.from_budgets([20], cost_p=4.0)
        assert model.pairwise_cost(5) == 4.0 * 10

    def test_noise_factor_scales_pairwise_only(self):
        clean = CostModel.from_budgets([20, 40], cost_p=4.0)
        noisy = CostModel.from_budgets([20, 40], cost_p=4.0, noise_factor=0.5)
        assert noisy.pairwise_cost(6) == clean.pairwise_cost(6) * 0.5
        assert noisy.marginal_hash_cost(1, 6) == clean.marginal_hash_cost(1, 6)

    def test_jump_decision_line5(self):
        """Line 5: jump iff (cost_{t+1}-cost_t)*|C| >= cost_P*C(|C|,2)."""
        model = CostModel.from_budgets([10, 30], cost_per_hash=1.0, cost_p=1.0)
        # marginal per record = 20; for size m: 20*m >= m(m-1)/2 iff m <= 41.
        assert model.should_jump_to_pairwise(1, 41)
        assert not model.should_jump_to_pairwise(1, 42)

    def test_underestimating_p_jumps_sooner(self):
        base = CostModel.from_budgets([10, 30], cost_p=1.0)
        under = CostModel.from_budgets([10, 30], cost_p=1.0, noise_factor=0.5)
        # With nf < 1 a larger cluster still jumps to P.
        size = 60
        assert not base.should_jump_to_pairwise(1, size)
        assert under.should_jump_to_pairwise(1, size)

    def test_non_decreasing_levels_required(self):
        with pytest.raises(CalibrationError):
            CostModel([3.0, 2.0], cost_p=1.0)

    def test_positive_cost_p_required(self):
        with pytest.raises(CalibrationError):
            CostModel([1.0], cost_p=0.0)

    def test_empty_levels_rejected(self):
        with pytest.raises(CalibrationError):
            CostModel([], cost_p=1.0)


class TestCalibration:
    def test_calibrated_model_is_positive_and_monotone(self):
        store, _ = make_shingle_store(seed=30)
        rule = ThresholdRule(JaccardDistance("shingles"), 0.6)
        ctx = build_design_context(store, rule, seed=0)
        designs = [design_scheme(ctx, b) for b in (20, 40, 80)]
        # design_scheme needs prev for monotonicity; rebuild properly
        designs = []
        prev = None
        for budget in (20, 40, 80):
            prev = design_scheme(ctx, budget, prev=prev)
            designs.append(prev)
        model = CostModel.calibrate(store, rule, designs, seed=0)
        assert model.cost_p > 0
        assert model.cost_level(1) > 0
        assert model.cost_level(3) >= model.cost_level(1)
        assert model.info["mode"] == "calibrated"

    def test_calibration_needs_records(self):
        store, _ = make_shingle_store(cluster_sizes=(1,), n_noise=0, seed=1)
        rule = ThresholdRule(JaccardDistance("shingles"), 0.6)
        with pytest.raises(CalibrationError):
            CostModel.calibrate(store, rule, [], seed=0)
