"""Tests for the Appendix-D.2 lookahead jump policy."""

import numpy as np
import pytest

from repro.baselines import PairsBaseline
from repro.core import AdaptiveLSH, CostModel
from repro.errors import ConfigurationError
from tests.conftest import make_vector_store
from repro.distance import CosineDistance, ThresholdRule
from repro.core.config import AdaptiveConfig

RULE = ThresholdRule(CosineDistance("vec"), 10 / 180.0)
BUDGETS = [20, 40, 80, 160, 320, 640, 1280]


def make_method(store, policy, cost_p=2000.0):
    # An expensive-P model keeps Line 5 quiet so the lookahead probe is
    # what decides (the interesting regime for D.2).
    model = CostModel.from_budgets(BUDGETS, cost_p=cost_p)
    return AdaptiveLSH(store, RULE, config=AdaptiveConfig(budgets=BUDGETS, seed=3, cost_model=model, jump_policy=policy))


class TestCorrectness:
    def test_same_output_as_line5(self):
        store, _ = make_vector_store(seed=55)
        line5 = make_method(store, "line5").run(3)
        look = make_method(store, "lookahead").run(3)
        assert [c.size for c in look.clusters] == [c.size for c in line5.clusters]

    def test_same_output_as_pairs(self):
        store, _ = make_vector_store(seed=56)
        look = make_method(store, "lookahead").run(2)
        exact = PairsBaseline(store, RULE).run(2)
        assert [sorted(c.rids.tolist()) for c in look.clusters] == [
            sorted(c.rids.tolist()) for c in exact.clusters
        ]

    def test_invalid_policy_rejected(self):
        store, _ = make_vector_store(seed=55)
        with pytest.raises(ConfigurationError):
            AdaptiveLSH(store, RULE, config=AdaptiveConfig(jump_policy="psychic"))


class TestWorkProfile:
    def test_dense_cluster_jumps_early(self):
        """A dataset that is one dense entity: Line 5 rides the ladder
        to H_L (P looks expensive), the lookahead probes density once
        and pays P immediately — far fewer hash evaluations."""
        store, _ = make_vector_store(
            cluster_sizes=(60,), n_noise=0, scale=0.003, seed=57
        )
        line5 = make_method(store, "line5", cost_p=5.0).run(1)
        look = make_method(store, "lookahead", cost_p=5.0).run(1)
        assert [c.size for c in look.clusters] == [c.size for c in line5.clusters]
        assert look.counters.hashes_computed < line5.counters.hashes_computed

    def test_sampling_cost_is_counted(self):
        # Dense single entity with affordable P: the probe fires and
        # its sampled comparisons must appear in the work counters.
        store, _ = make_vector_store(
            cluster_sizes=(60,), n_noise=0, scale=0.003, seed=58
        )
        look = make_method(store, "lookahead", cost_p=5.0)
        result = look.run(1)
        assert result.counters.pairs_compared > 0

    def test_sparse_clusters_keep_hashing(self):
        """On well-separated multi-entity data the probe fires rarely,
        so lookahead work stays close to line5 work."""
        store, _ = make_vector_store(
            cluster_sizes=(30, 18, 8), n_noise=40, seed=59
        )
        line5 = make_method(store, "line5").run(3)
        look = make_method(store, "lookahead").run(3)
        # Lookahead may spend *somewhat* fewer hashes (dense entities
        # jump), never dramatically more.
        assert (
            look.counters.hashes_computed
            <= line5.counters.hashes_computed * 1.2 + 1000
        )
