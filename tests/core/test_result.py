"""Tests for result types (clusters, counters, FilterResult)."""

import numpy as np
import pytest

from repro.core.result import (
    SOURCE_PAIRWISE,
    Cluster,
    FilterResult,
    WorkCounters,
)


class TestCluster:
    def test_size(self):
        assert Cluster(np.array([1, 2, 3]), 1).size == 3

    def test_final_by_last_level(self):
        assert Cluster(np.array([1]), 5).is_final(5)
        assert not Cluster(np.array([1]), 4).is_final(5)

    def test_final_by_pairwise(self):
        assert Cluster(np.array([1]), SOURCE_PAIRWISE).is_final(5)


class TestWorkCounters:
    def test_defaults(self):
        counters = WorkCounters()
        assert counters.hashes_computed == 0
        assert counters.pairs_compared == 0
        assert counters.rounds == 0

    def test_merge_pool_counts(self):
        class FakePool:
            hashes_computed = 11

        counters = WorkCounters()
        counters.merge_pool_counts([FakePool(), FakePool()])
        assert counters.hashes_computed == 22


class TestFilterResult:
    def _result(self):
        clusters = [
            Cluster(np.array([4, 5]), SOURCE_PAIRWISE),
            Cluster(np.array([1, 2, 3]), SOURCE_PAIRWISE),
        ]
        return FilterResult.from_clusters(clusters, WorkCounters(), 0.5)

    def test_orders_by_size(self):
        result = self._result()
        assert [c.size for c in result.clusters] == [3, 2]

    def test_output_union(self):
        result = self._result()
        assert result.output_rids.tolist() == [1, 2, 3, 4, 5]
        assert result.output_size == 5

    def test_k_property(self):
        assert self._result().k == 2

    def test_empty_clusters(self):
        result = FilterResult.from_clusters([], WorkCounters(), 0.0)
        assert result.k == 0
        assert result.output_size == 0

    def test_overlapping_clusters_deduplicated_in_union(self):
        clusters = [
            Cluster(np.array([1, 2]), SOURCE_PAIRWISE),
            Cluster(np.array([2, 3]), SOURCE_PAIRWISE),
        ]
        result = FilterResult.from_clusters(clusters, WorkCounters(), 0.0)
        assert result.output_rids.tolist() == [1, 2, 3]
