"""Tests for the pairwise computation function P (Definition 2)."""

import numpy as np
import pytest

from repro.core.pairwise_fn import PairwiseComputation
from repro.core.result import WorkCounters
from repro.errors import ConfigurationError
from repro.structures import UnionFind
from tests.conftest import make_shingle_store, make_vector_store
from repro.distance import CosineDistance, JaccardDistance, ThresholdRule


def brute_force_components(store, rule):
    n = len(store)
    uf = UnionFind(n)
    for i in range(n):
        for j in range(i + 1, n):
            if rule.is_match(store, i, j):
                uf.union(i, j)
    return {frozenset(c) for c in uf.components()}


@pytest.fixture(scope="module")
def vector_setup():
    store, _ = make_vector_store(seed=21)
    rule = ThresholdRule(CosineDistance("vec"), 10 / 180.0)
    return store, rule


@pytest.fixture(scope="module")
def shingle_setup():
    store, _ = make_shingle_store(seed=22)
    rule = ThresholdRule(JaccardDistance("shingles"), 0.6)
    return store, rule


class TestCorrectness:
    @pytest.mark.parametrize("strategy", ["rowwise", "blocked", "auto"])
    def test_components_match_brute_force_vectors(self, vector_setup, strategy):
        store, rule = vector_setup
        p = PairwiseComputation(store, rule, strategy=strategy)
        got = {frozenset(c.tolist()) for c in p.apply(store.rids)}
        assert got == brute_force_components(store, rule)

    @pytest.mark.parametrize("strategy", ["rowwise", "blocked"])
    def test_components_match_brute_force_shingles(self, shingle_setup, strategy):
        store, rule = shingle_setup
        p = PairwiseComputation(store, rule, strategy=strategy)
        got = {frozenset(c.tolist()) for c in p.apply(store.rids)}
        assert got == brute_force_components(store, rule)

    def test_subset_components(self, vector_setup):
        store, rule = vector_setup
        subset = np.array([0, 1, 2, 50, 51, 90])
        p = PairwiseComputation(store, rule)
        clusters = p.apply(subset)
        assert np.array_equal(
            np.sort(np.concatenate(clusters)), np.sort(subset)
        )

    def test_rowwise_equals_blocked(self, vector_setup):
        store, rule = vector_setup
        row = PairwiseComputation(store, rule, strategy="rowwise")
        blk = PairwiseComputation(store, rule, strategy="blocked")
        got_row = {frozenset(c.tolist()) for c in row.apply(store.rids)}
        got_blk = {frozenset(c.tolist()) for c in blk.apply(store.rids)}
        assert got_row == got_blk


class TestEdgeCases:
    def test_empty_input(self, vector_setup):
        store, rule = vector_setup
        assert PairwiseComputation(store, rule).apply(np.array([], dtype=int)) == []

    def test_single_record(self, vector_setup):
        store, rule = vector_setup
        clusters = PairwiseComputation(store, rule).apply(np.array([7]))
        assert len(clusters) == 1 and clusters[0].tolist() == [7]

    def test_two_matching_records(self, vector_setup):
        store, rule = vector_setup
        clusters = PairwiseComputation(store, rule).apply(np.array([0, 1]))
        assert len(clusters) == 1

    def test_invalid_strategy(self, vector_setup):
        store, rule = vector_setup
        with pytest.raises(ConfigurationError):
            PairwiseComputation(store, rule, strategy="quantum")


class TestCounters:
    def test_pairs_charged_is_conservative(self, vector_setup):
        """Cost model charges C(m, 2) regardless of skipping."""
        store, rule = vector_setup
        counters = WorkCounters()
        m = len(store)
        PairwiseComputation(store, rule, strategy="blocked").apply(
            store.rids, counters
        )
        assert counters.pairs_charged == m * (m - 1) // 2

    def test_rowwise_skipping_compares_fewer(self, vector_setup):
        """Optimization (2): transitively closed pairs are skipped, so
        rowwise compares strictly fewer pairs than charged (the store
        has planted clusters, so closures exist)."""
        store, rule = vector_setup
        counters = WorkCounters()
        PairwiseComputation(store, rule, strategy="rowwise").apply(
            store.rids, counters
        )
        assert counters.pairs_compared < counters.pairs_charged

    def test_charges_accumulate(self, vector_setup):
        store, rule = vector_setup
        counters = WorkCounters()
        p = PairwiseComputation(store, rule)
        p.apply(np.arange(4), counters)
        p.apply(np.arange(6), counters)
        assert counters.pairs_charged == 6 + 15
