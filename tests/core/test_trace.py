"""Tests for the per-round execution trace of Algorithm 1."""

import pytest

from repro.core import AdaptiveLSH
from repro.obs import RunObserver
from tests.conftest import make_vector_store
from repro.distance import CosineDistance, ThresholdRule
from repro.core.config import AdaptiveConfig


@pytest.fixture(scope="module")
def traced_run():
    store, _ = make_vector_store(seed=77)
    rule = ThresholdRule(CosineDistance("vec"), 10 / 180.0)
    method = AdaptiveLSH(
        store,
        rule,
        config=AdaptiveConfig(seed=1, cost_model="analytic"),
        observer=RunObserver(),
    )
    result = method.run(3)
    return method, result


class TestTrace:
    def test_disabled_by_default(self):
        store, _ = make_vector_store(seed=77)
        rule = ThresholdRule(CosineDistance("vec"), 10 / 180.0)
        method = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=1, cost_model="analytic"))
        method.run(2)
        assert method.trace == []

    def test_one_entry_per_round(self, traced_run):
        method, result = traced_run
        assert len(method.trace) == result.counters.rounds

    def test_entries_have_schema(self, traced_run):
        method, _ = traced_run
        for entry in method.trace:
            assert {"round", "action", "size", "from_level", "subclusters",
                    "largest_out"} <= set(entry)
            assert entry["size"] >= 1
            assert entry["subclusters"] >= 1
            assert entry["largest_out"] <= entry["size"]

    def test_actions_are_valid(self, traced_run):
        method, _ = traced_run
        valid = {"P"} | {f"H{i}" for i in range(2, method.last_level + 1)}
        assert {e["action"] for e in method.trace} <= valid

    def test_hash_actions_follow_sequence(self, traced_run):
        method, _ = traced_run
        for entry in method.trace:
            if entry["action"].startswith("H"):
                assert int(entry["action"][1:]) == entry["from_level"] + 1

    def test_trace_resets_between_runs(self, traced_run):
        method, _ = traced_run
        first_len = len(method.trace)
        method.run(1)
        assert len(method.trace) <= first_len
