"""AdaptiveConfig: validation, serialization, the config-only surface."""

import dataclasses

import pytest

from repro import AdaptiveConfig, AdaptiveLSH, StreamingTopK, adaptive_filter
from repro.core.config import config_with
from repro.errors import ConfigurationError


class TestValidation:
    def test_frozen(self):
        config = AdaptiveConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.seed = 3

    def test_budgets_coerced_to_int_tuple(self):
        config = AdaptiveConfig(budgets=[10.0, 20, 40])
        assert config.budgets == (10, 20, 40)

    def test_bad_selection(self):
        with pytest.raises(ConfigurationError, match="selection"):
            AdaptiveConfig(selection="nope")

    def test_bad_jump_policy(self):
        with pytest.raises(ConfigurationError, match="jump_policy"):
            AdaptiveConfig(jump_policy="psychic")

    def test_bad_cost_model(self):
        with pytest.raises(ConfigurationError, match="cost_model"):
            AdaptiveConfig(cost_model="tea-leaves")

    def test_bad_kernels(self):
        with pytest.raises(ConfigurationError, match="kernels"):
            AdaptiveConfig(kernels="gpu")

    def test_config_with(self):
        base = AdaptiveConfig(seed=1)
        tweaked = config_with(base, seed=2, selection="random")
        assert (tweaked.seed, tweaked.selection) == (2, "random")
        assert base.seed == 1  # original untouched


class TestSerialization:
    def test_round_trip(self):
        config = AdaptiveConfig(
            budgets=(16, 64), epsilon=0.05, selection="random",
            jump_policy="lookahead", noise_factor=1.5,
        )
        again = AdaptiveConfig.from_dict(config.to_dict())
        assert again == dataclasses.replace(
            config, seed=None, cost_model="calibrate", n_jobs=None
        )

    def test_to_dict_excludes_non_portable_fields(self):
        data = AdaptiveConfig(seed=7, n_jobs=4, kernels="packed").to_dict()
        assert "seed" not in data
        assert "n_jobs" not in data
        assert "kernels" not in data

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            AdaptiveConfig.from_dict({"warp_speed": 9})

    def test_from_dict_overrides_win(self):
        config = AdaptiveConfig.from_dict({"epsilon": 0.2}, epsilon=0.3)
        assert config.epsilon == 0.3


class TestConfigOnlySurface:
    def test_legacy_kwargs_removed(self, tiny_spotsigs):
        with pytest.raises(TypeError):
            AdaptiveLSH(
                tiny_spotsigs.store, tiny_spotsigs.rule, seed=0,
                cost_model="analytic",
            )

    def test_non_config_positional_rejected(self, tiny_spotsigs):
        with pytest.raises(ConfigurationError, match="AdaptiveConfig"):
            AdaptiveLSH(tiny_spotsigs.store, tiny_spotsigs.rule, [16, 64, 256])

    def test_trace_kwarg_removed(self, tiny_spotsigs):
        with pytest.raises(TypeError):
            AdaptiveLSH(
                tiny_spotsigs.store, tiny_spotsigs.rule,
                config=AdaptiveConfig(seed=0), trace=True,
            )

    def test_streaming_legacy_kwargs_removed(self, tiny_spotsigs):
        with pytest.raises(TypeError):
            StreamingTopK(tiny_spotsigs.store, tiny_spotsigs.rule, seed=3)

    def test_adaptive_filter_legacy_kwargs_removed(self, tiny_spotsigs):
        with pytest.raises(TypeError):
            adaptive_filter(
                tiny_spotsigs.store, tiny_spotsigs.rule, 3, seed=4,
                cost_model="analytic",
            )

    def test_config_path_is_warning_free(self, tiny_spotsigs, recwarn):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            AdaptiveLSH(
                tiny_spotsigs.store, tiny_spotsigs.rule,
                config=AdaptiveConfig(seed=0),
            )
            StreamingTopK(
                tiny_spotsigs.store, tiny_spotsigs.rule,
                config=AdaptiveConfig(seed=0),
            )


class TestConfigEquivalence:
    def test_adaptive_filter_takes_config(self, tiny_spotsigs):
        result = adaptive_filter(
            tiny_spotsigs.store, tiny_spotsigs.rule, 3,
            config=AdaptiveConfig(seed=4, cost_model="analytic"),
        )
        assert len(result.clusters) == 3
