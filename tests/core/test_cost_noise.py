"""Tests for CostModel.with_noise and the noise semantics (App. E.2)."""

import pytest

from repro.core.cost import CostModel


def test_with_noise_copies_constants():
    base = CostModel.from_budgets([10, 20], cost_p=3.0)
    noisy = base.with_noise(0.5)
    assert noisy.level_costs == base.level_costs
    assert noisy.cost_p == base.cost_p
    assert noisy.noise_factor == 0.5
    assert base.noise_factor == 1.0  # original untouched


def test_with_noise_affects_only_pairwise_estimate():
    base = CostModel.from_budgets([10, 20], cost_p=3.0)
    noisy = base.with_noise(2.0)
    assert noisy.pairwise_cost(4) == base.pairwise_cost(4) * 2.0
    assert noisy.marginal_hash_cost(1, 4) == base.marginal_hash_cost(1, 4)


def test_noise_shifts_jump_threshold_monotonically():
    base = CostModel.from_budgets([10, 30], cost_p=1.0)
    under = base.with_noise(0.25)   # P looks cheap -> jump on bigger clusters
    over = base.with_noise(4.0)     # P looks dear -> defer to smaller clusters

    def largest_jumping_size(model):
        size = 2
        while model.should_jump_to_pairwise(1, size):
            size += 1
        return size - 1

    assert largest_jumping_size(under) > largest_jumping_size(base)
    assert largest_jumping_size(over) < largest_jumping_size(base)


def test_with_noise_chainable():
    base = CostModel.from_budgets([10], cost_p=1.0)
    assert base.with_noise(2.0).with_noise(0.5).noise_factor == 0.5
