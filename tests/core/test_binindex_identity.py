"""End-to-end identity: final clusters are bit-identical with the bin
index on and off, across kernel backends, worker counts, snapshot
restore, streaming inserts, and serving-session store extensions."""

import numpy as np
import pytest

from repro import AdaptiveConfig, AdaptiveLSH
from repro.datasets import generate_cora, generate_spotsigs
from repro.online import StreamingTopK
from repro.serve import IndexSnapshot, ResolverSession


def _clusters(result):
    return [tuple(int(r) for r in c.rids) for c in result.clusters]


def _run(dataset, bin_index, n_jobs=None, kernels=None, k=3):
    config = AdaptiveConfig(
        seed=7,
        cost_model="analytic",
        bin_index=bin_index,
        n_jobs=n_jobs,
        kernels=kernels,
    )
    with AdaptiveLSH(dataset.store, dataset.rule, config=config) as method:
        result = method.run(k)
    return result


@pytest.mark.parametrize("generate", [generate_cora, generate_spotsigs])
@pytest.mark.parametrize("n_jobs", [None, 2])
def test_bin_index_on_off_identical(generate, n_jobs):
    dataset = generate(n_records=300, seed=1)
    off = _run(dataset, False, n_jobs=n_jobs)
    on = _run(dataset, True, n_jobs=n_jobs)
    assert _clusters(off) == _clusters(on)
    assert off.counters.pairs_compared == on.counters.pairs_compared
    assert off.counters.hashes_computed == on.counters.hashes_computed
    assert off.bin_index_stats is None
    stats = on.bin_index_stats
    assert stats is not None
    assert stats["tables_grouped"] > 0
    assert stats["degraded"] == 0


@pytest.mark.parametrize("kernels", ["numpy", "packed"])
def test_bin_index_identical_per_kernel_backend(kernels):
    dataset = generate_spotsigs(n_records=300, seed=2)
    off = _run(dataset, False, kernels=kernels)
    on = _run(dataset, True, kernels=kernels)
    assert _clusters(off) == _clusters(on)
    assert on.info["kernels"] == kernels


def test_zero_byte_budget_degrades_identically():
    dataset = generate_cora(n_records=250, seed=3)
    on = _run(dataset, True)
    config = AdaptiveConfig(
        seed=7, cost_model="analytic", bin_index=True, bin_index_bytes=0
    )
    with AdaptiveLSH(dataset.store, dataset.rule, config=config) as method:
        broke = method.run(3)
    assert _clusters(on) == _clusters(broke)
    assert broke.bin_index_stats["degraded"] > 0
    assert broke.bin_index_stats["bytes"] == 0


def test_snapshot_restore_keeps_identity():
    dataset = generate_spotsigs(n_records=250, seed=4)
    config = AdaptiveConfig(seed=5, cost_model="analytic", bin_index=True)
    with AdaptiveLSH(dataset.store, dataset.rule, config=config) as cold:
        cold_result = cold.run(3)
        snapshot = IndexSnapshot.capture(cold)
    warm = snapshot.restore(dataset.store)
    try:
        warm_result = warm.run(3)
    finally:
        warm.close()
    assert _clusters(cold_result) == _clusters(warm_result)
    assert warm_result.bin_index_stats is not None


def test_streaming_identical_on_off():
    dataset = generate_cora(n_records=300, seed=6)
    rids = np.arange(len(dataset.store), dtype=np.int64)
    outputs = []
    for bin_index in (False, True):
        config = AdaptiveConfig(
            seed=6, cost_model="analytic", bin_index=bin_index
        )
        stream = StreamingTopK(dataset.store, dataset.rule, config=config)
        try:
            per_query = []
            for batch in np.array_split(rids, 4):
                stream.insert_many(batch)
                per_query.append(
                    [c.tolist() for c in stream.current_clusters()]
                )
                per_query.append(_clusters(stream.top_k(3)))
            assert (stream.delta_index is not None) is bin_index
        finally:
            stream.method.close()
        outputs.append(per_query)
    assert outputs[0] == outputs[1]


def test_session_extension_identical_and_carried():
    full = generate_spotsigs(n_records=500, seed=7)
    n_head, n_mid = 300, 400
    head = full.store.take(np.arange(n_head))
    ext1 = full.store.take(np.arange(n_head, n_mid))
    ext2 = full.store.take(np.arange(n_mid, len(full.store)))
    outputs = []
    for bin_index in (False, True):
        config = AdaptiveConfig(
            seed=3, cost_model="analytic", bin_index=bin_index
        )
        with ResolverSession(head, full.rule, config=config) as session:
            got = [_clusters(session.top_k(4))]
            session.extend_store(ext1)
            got.append(_clusters(session.top_k(4)))
            session.extend_store(ext2)
            got.append(_clusters(session.top_k(4)))
            if bin_index:
                assert session._stream is not None
                assert session._stream.carried
                stats = session.serving_stats()["bin_index"]
                # Only the second extension's rows went through the
                # delta insert — a full re-group would touch them all.
                assert stats["delta"]["rows"] == (
                    (len(full.store) - n_mid)
                    * session._stream.delta_index.export_state()[
                        "table_count"
                    ]
                )
            else:
                assert session.serving_stats()["bin_index"] is None
        outputs.append(got)
    assert outputs[0] == outputs[1]
