"""Tests for budget schedules (§5.2)."""

import pytest

from repro.core.budget import exponential_budgets, linear_budgets
from repro.errors import ConfigurationError


class TestExponential:
    def test_paper_default(self):
        budgets = exponential_budgets()
        assert budgets[:4] == [20, 40, 80, 160]
        assert len(budgets) == 10

    def test_custom_factor(self):
        assert exponential_budgets(10, 3.0, 4) == [10, 30, 90, 270]

    def test_non_integer_factor(self):
        assert exponential_budgets(10, 1.5, 3) == [10, 15, 22]

    def test_strictly_increasing(self):
        budgets = exponential_budgets(4, 2, 12)
        assert all(b < c for b, c in zip(budgets, budgets[1:]))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start": 0},
            {"factor": 1.0},
            {"factor": 0.5},
            {"length": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            exponential_budgets(**kwargs)


class TestLinear:
    def test_paper_lin320(self):
        budgets = linear_budgets(320, length=4)
        assert budgets == [320, 640, 960, 1280]

    def test_custom_step(self):
        assert linear_budgets(100, 50, 3) == [100, 150, 200]

    def test_step_defaults_to_start(self):
        assert linear_budgets(640, length=2) == [640, 1280]

    @pytest.mark.parametrize("kwargs", [{"start": 0}, {"step": 0}, {"length": 0}])
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            linear_budgets(start=kwargs.get("start", 10), step=kwargs.get("step"), length=kwargs.get("length", 3))
