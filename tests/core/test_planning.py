"""Tests for the analytic work planner."""

import numpy as np
import pytest

from repro.core import AdaptiveLSH, CostModel
from repro.core.planning import predict_filter_work
from repro.errors import ConfigurationError
from tests.conftest import make_vector_store
from repro.distance import CosineDistance, ThresholdRule
from repro.core.config import AdaptiveConfig

BUDGETS = [20, 40, 80, 160, 320, 640]


def model(cost_p=20.0):
    return CostModel.from_budgets(BUDGETS, cost_p=cost_p)


class TestStructure:
    def test_basic_fields(self):
        est = predict_filter_work([50, 20, 5, 1, 1], k=2, cost_model=model())
        assert est.hash_evaluations > 0
        assert est.pair_comparisons > 0
        assert est.total_cost > 0
        assert sum(est.records_per_level.values()) == 77

    def test_summary_readable(self):
        est = predict_filter_work([10, 5], k=1, cost_model=model())
        assert "hash evals" in est.summary()

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            predict_filter_work([5], k=0, cost_model=model())

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            predict_filter_work([], k=1, cost_model=model())
        with pytest.raises(ConfigurationError):
            predict_filter_work([0, 3], k=1, cost_model=model())

    def test_budget_length_checked(self):
        with pytest.raises(ConfigurationError):
            predict_filter_work([5], k=1, cost_model=model(), budgets=[20])


class TestMonotonicity:
    def test_bigger_top_entity_costs_more(self):
        small = predict_filter_work([20] + [1] * 100, k=1, cost_model=model())
        large = predict_filter_work([200] + [1] * 100, k=1, cost_model=model())
        assert large.total_cost > small.total_cost

    def test_larger_k_never_cheaper(self):
        sizes = [50, 30, 20, 10, 5, 2, 1, 1]
        costs = [
            predict_filter_work(sizes, k=k, cost_model=model()).total_cost
            for k in (1, 2, 4, 6)
        ]
        assert costs == sorted(costs)

    def test_cheap_pairs_stop_ladder_early(self):
        """With nearly-free P, entities jump to P immediately and the
        hashing bill collapses to the H_1 sweep."""
        cheap = predict_filter_work([100, 50, 1], k=2, cost_model=model(1e-9))
        expensive = predict_filter_work([100, 50, 1], k=2, cost_model=model(1e9))
        assert cheap.hash_evaluations < expensive.hash_evaluations
        assert cheap.pair_comparisons >= expensive.pair_comparisons - 1

    def test_untouched_tail_pays_h1_only(self):
        est = predict_filter_work([40, 30] + [1] * 500, k=2, cost_model=model())
        assert est.records_per_level.get(1, 0) >= 500


class TestAgainstRealRun:
    def test_prediction_tracks_measurement_on_clean_data(self):
        """On well-separated vector clusters the idealized prediction is
        within a small factor of the real run's counted work."""
        sizes = (40, 25, 12)
        store, labels = make_vector_store(
            cluster_sizes=sizes, n_noise=80, scale=0.005, seed=101
        )
        rule = ThresholdRule(CosineDistance("vec"), 8 / 180.0)
        budgets = BUDGETS
        cm = CostModel.from_budgets(budgets, cost_p=20.0)
        ada = AdaptiveLSH(store, rule, config=AdaptiveConfig(budgets=budgets, seed=0, cost_model=cm))
        result = ada.run(2)
        entity_sizes = list(sizes) + [1] * 80
        est = predict_filter_work(
            entity_sizes,
            k=2,
            cost_model=cm,
            budgets=[d.spent_budget for d in ada._designs],
        )
        measured_h = result.counters.hashes_computed
        measured_p = result.counters.pairs_charged
        assert est.hash_evaluations <= measured_h * 1.5
        assert measured_h <= est.hash_evaluations * 8
        assert est.pair_comparisons <= measured_p * 1.5 + 100
