"""Property tests (issue satellite): pair-verdict memoization never
changes output.  Memo-on equals memo-off bit-for-bit — cluster content
AND leaf order — across seeds, strategies, worker counts, snapshot
restores, and streaming insert-then-refine; a fully warm memo makes a
repeated refine free (``pairs_compared == 0``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AdaptiveConfig, AdaptiveLSH, StreamingTopK
from repro.core import pairwise_fn
from repro.core.pairmemo import PairVerdictMemo
from repro.core.pairwise_fn import PairwiseComputation
from repro.datasets import generate_spotsigs
from repro.distance import CosineDistance, JaccardDistance, ThresholdRule
from repro.parallel import ExecutionPool
from repro.serve import ResolverSession
from tests.conftest import make_shingle_store, make_vector_store


def _random_case(kind, seed):
    rng = np.random.default_rng(seed)
    sizes = tuple(int(s) for s in rng.integers(3, 20, size=rng.integers(2, 5)))
    noise = int(rng.integers(10, 40))
    if kind == "vector":
        store, _ = make_vector_store(cluster_sizes=sizes, n_noise=noise, seed=seed)
        rule = ThresholdRule(CosineDistance("vec"), float(rng.uniform(0.03, 0.12)))
    else:
        store, _ = make_shingle_store(cluster_sizes=sizes, n_noise=noise, seed=seed)
        rule = ThresholdRule(JaccardDistance("shingles"), float(rng.uniform(0.3, 0.6)))
    return store, rule


def _bound_memo(store, rule):
    memo = PairVerdictMemo()
    memo.bind(store, rule)
    return memo


def _assert_identical(expected, actual):
    """Bit-identity: same cluster count, content, and leaf order."""
    assert len(expected) == len(actual)
    for a, b in zip(expected, actual):
        assert np.array_equal(a, b)


def _cluster_lists(result):
    return [c.rids.tolist() for c in result.clusters]


@pytest.mark.parametrize("kind", ["vector", "shingles"])
@pytest.mark.parametrize("seed", range(4))
@pytest.mark.parametrize("strategy", ["rowwise", "blocked"])
def test_cold_and_warm_match_memo_off(kind, seed, strategy, monkeypatch):
    """Both strategies, cold memo (every pair unknown) and warm memo
    (every pair remembered) reproduce the memo-off edge replay exactly."""
    # Shrink the row-block height so these modest stores span several
    # blocks and the cross-block rectangle planner is exercised.
    monkeypatch.setattr(pairwise_fn, "BLOCK", 32)
    store, rule = _random_case(kind, seed)
    rids = store.rids

    baseline = PairwiseComputation(store, rule, strategy=strategy).apply(rids)

    memo = _bound_memo(store, rule)
    memoized = PairwiseComputation(store, rule, strategy=strategy, memo=memo)
    _assert_identical(baseline, memoized.apply(rids))  # cold
    warm = memoized.apply(rids)  # every verdict remembered
    _assert_identical(baseline, warm)
    assert memo.hits > 0, "warm pass did not consult the memo"


@pytest.mark.parametrize("seed", range(3))
def test_partially_warm_blocked_match_memo_off(seed, monkeypatch):
    """The interesting regime: some pairs remembered, some not.  Warm
    the memo on a subset, then apply to the full set — the vertex-cover
    pair job, intra rectangle, and cross rectangles must still merge to
    the memo-off edge stream."""
    monkeypatch.setattr(pairwise_fn, "BLOCK", 32)
    store, rule = _random_case("shingles", seed)
    rids = store.rids
    baseline = PairwiseComputation(store, rule, strategy="blocked").apply(rids)

    rng = np.random.default_rng(seed + 100)
    for frac in (0.25, 0.5, 0.9):
        memo = _bound_memo(store, rule)
        subset = rids[rng.random(rids.size) < frac]
        pc = PairwiseComputation(store, rule, strategy="blocked", memo=memo)
        if subset.size >= 2:
            pc.apply(subset)  # warms only the subset's pairs
        _assert_identical(baseline, pc.apply(rids))


@pytest.mark.parametrize("seed", range(3))
def test_warm_parallel_blocked_match_serial(seed, monkeypatch):
    """A warm plan ships the same jobs to worker processes as it would
    evaluate in-process; the replay must equal the serial memo-off pass
    bit-for-bit."""
    monkeypatch.setattr(pairwise_fn, "BLOCK", 32)
    store, rule = _random_case("vector", seed)
    rids = store.rids
    baseline = PairwiseComputation(store, rule, strategy="blocked").apply(rids)

    rng = np.random.default_rng(seed + 7)
    memo = _bound_memo(store, rule)
    with ExecutionPool(store, n_jobs=2, min_pairwise_rows=2) as pool:
        pc = PairwiseComputation(store, rule, strategy="blocked", pool=pool, memo=memo)
        subset = rids[rng.random(rids.size) < 0.5]
        if subset.size >= 2:
            pc.apply(subset)
        _assert_identical(baseline, pc.apply(rids))
        assert pool.parallel_calls >= 1, "parallel path was not taken"


@pytest.mark.parametrize("method_seed", [3, 9])
def test_adaptive_run_identical_across_memo_and_jobs(method_seed, tiny_spotsigs):
    """End-to-end: memo {off, on} x n_jobs {1, 2} — four runs, one
    answer, counter for counter on the cold pass."""
    dataset = tiny_spotsigs
    outputs = []
    compared = []
    for pair_memo in (False, True):
        for n_jobs in (1, 2):
            config = AdaptiveConfig(
                seed=method_seed,
                cost_model="analytic",
                pair_memo=pair_memo,
                n_jobs=n_jobs,
            )
            with AdaptiveLSH(dataset.store, dataset.rule, config=config) as m:
                result = m.run(4)
            outputs.append(_cluster_lists(result))
            compared.append(int(result.counters.pairs_compared))
    assert all(out == outputs[0] for out in outputs[1:])
    # Cold runs evaluate every pair exactly once, memo or not.
    assert len(set(compared)) == 1


def test_repeated_refine_of_resolved_clusters_is_free(tiny_spotsigs):
    """Acceptance criterion: refining an already-resolved clustering
    with a warm memo re-verifies nothing — and still produces exactly
    what a memo-off refine of the same clusters would."""
    dataset = tiny_spotsigs

    def run_and_refine(pair_memo):
        config = AdaptiveConfig(seed=3, cost_model="analytic", pair_memo=pair_memo)
        with AdaptiveLSH(dataset.store, dataset.rule, config=config) as m:
            first = m.run(4)
            return m.refine([(c.rids, 1) for c in first.clusters], 4)

    baseline = run_and_refine(False)
    again = run_and_refine(True)
    assert _cluster_lists(again) == _cluster_lists(baseline)
    assert int(again.counters.pairs_compared) == 0
    assert again.pair_memo_stats is not None
    assert again.pair_memo_stats["hits"] > 0


@pytest.mark.parametrize("data_seed", [0, 5])
def test_streaming_insert_then_refine_identical(data_seed):
    """The motivating scenario: records stream in batches with a query
    after each batch.  Every query's output is bit-identical memo on vs
    off, and the memoized replay does strictly less verification."""
    dataset = generate_spotsigs(n_records=360, seed=data_seed)
    batches = np.array_split(np.arange(len(dataset.store), dtype=np.int64), 3)

    def run(pair_memo):
        config = AdaptiveConfig(seed=3, cost_model="analytic", pair_memo=pair_memo)
        stream = StreamingTopK(dataset.store, dataset.rule, config=config)
        outputs, compared = [], 0
        try:
            for batch in batches:
                stream.insert_many(batch)
                result = stream.top_k(4)
                outputs.append(_cluster_lists(result))
                compared += int(result.counters.pairs_compared)
        finally:
            stream.method.close()
        return outputs, compared

    off_outputs, off_compared = run(False)
    on_outputs, on_compared = run(True)
    assert on_outputs == off_outputs
    assert on_compared < off_compared


def test_session_snapshot_restore_and_extension_identical():
    """`ResolverSession.extend_store` snapshots, restores, and re-seats
    the memo; served results must match the memo-off session before and
    after the extension."""
    base = generate_spotsigs(n_records=300, seed=4)
    extra = generate_spotsigs(n_records=120, seed=17)

    def serve(pair_memo):
        config = AdaptiveConfig(seed=3, cost_model="analytic", pair_memo=pair_memo)
        with ResolverSession(base.store, base.rule, config=config) as s:
            before = _cluster_lists(s.top_k(4))
            s.extend_store(extra.store)
            after_result = s.top_k(4)
            return before, _cluster_lists(after_result), after_result

    off_before, off_after, _ = serve(False)
    on_before, on_after, on_result = serve(True)
    assert on_before == off_before
    assert on_after == off_after
    stats = on_result.pair_memo_stats
    assert stats is not None
    # The re-bind across the restore kept the table: verdicts from the
    # pre-extension rounds still serve.
    assert stats["invalidations"] == 0
    assert stats["hits"] > 0
