"""Tests for transitive hashing functions (Definition 1)."""

import numpy as np
import pytest

from repro.core.result import WorkCounters
from repro.core.transitive import TransitiveHashingFunction
from repro.distance import CosineDistance, ThresholdRule
from repro.lsh.design import build_design_context, design_scheme
from tests.conftest import make_vector_store


def make_function(budget=320, seed=0, threshold=10 / 180.0, store=None):
    if store is None:
        store, _ = make_vector_store(seed=seed)
    rule = ThresholdRule(CosineDistance("vec"), threshold)
    ctx = build_design_context(store, rule, seed=seed)
    design = design_scheme(ctx, budget)
    return store, TransitiveHashingFunction(1, design)


class TestApply:
    def test_output_partitions_input(self):
        store, fn = make_function()
        rids = store.rids
        clusters = fn.apply(rids)
        merged = np.sort(np.concatenate(clusters))
        assert np.array_equal(merged, np.sort(rids))

    def test_subset_application(self):
        store, fn = make_function()
        subset = np.array([3, 9, 40, 70, 80])
        clusters = fn.apply(subset)
        merged = np.sort(np.concatenate(clusters))
        assert np.array_equal(merged, np.sort(subset))

    def test_planted_clusters_stay_together(self):
        """Conservative evaluation (Property 1): records of one planted
        cluster land in the same output cluster with a feasible design."""
        store, labels = make_vector_store(seed=1)
        _, fn = make_function(budget=640, store=store)
        clusters = fn.apply(store.rids)
        assignment = {}
        for idx, cluster in enumerate(clusters):
            for rid in cluster:
                assignment[int(rid)] = idx
        for label in (0, 1, 2):
            members = np.nonzero(labels == label)[0]
            assert len({assignment[int(r)] for r in members}) == 1

    def test_fresh_tables_per_invocation(self):
        """Applying the function twice on disjoint sets can never merge
        records across invocations; outputs stay within the input set."""
        store, fn = make_function()
        first = fn.apply(np.arange(0, 20))
        second = fn.apply(np.arange(20, 40))
        assert all(c.max() < 20 for c in first)
        assert all(c.min() >= 20 for c in second)

    def test_deterministic_given_seed(self):
        store1, fn1 = make_function(seed=9)
        store2, fn2 = make_function(seed=9)
        c1 = sorted(tuple(c) for c in fn1.apply(store1.rids))
        c2 = sorted(tuple(c) for c in fn2.apply(store2.rids))
        assert c1 == c2

    def test_counters_track_inserts(self):
        store, fn = make_function(budget=160)
        counters = WorkCounters()
        fn.apply(store.rids, counters)
        assert counters.table_inserts == len(store) * fn.scheme.table_count

    def test_budget_property(self):
        _, fn = make_function(budget=320)
        assert 0 < fn.budget <= 320

    def test_singleton_input(self):
        store, fn = make_function()
        clusters = fn.apply(np.array([5]))
        assert len(clusters) == 1
        assert np.array_equal(clusters[0], [5])


class TestAccuracyScaling:
    def test_larger_budget_fewer_false_merges(self):
        """Increasing accuracy (Property 2): a deeper function produces
        no more false merges than a shallow one, statistically."""
        store, labels = make_vector_store(n_noise=60, seed=4)

        def false_pairs(budget):
            _, fn = make_function(budget=budget, store=store, seed=4)
            clusters = fn.apply(store.rids)
            bad = 0
            for cluster in clusters:
                lab = labels[cluster]
                for value in np.unique(lab):
                    count = int((lab == value).sum())
                    if value == -1:
                        # noise records are all distinct entities
                        bad += count * (count - 1) // 2
                others = cluster.size - len(lab)
            return bad

        assert false_pairs(1280) <= false_pairs(20)
