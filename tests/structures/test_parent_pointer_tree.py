"""Tests for parent-pointer trees (Appendix B.1/B.2), including
property-based cross-checks against a plain union-find."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StructureError
from repro.structures import ParentPointerForest, UnionFind


class TestBasics:
    def test_singleton(self):
        forest = ParentPointerForest()
        root = forest.make_singleton(7)
        assert root.size == 1
        assert list(ParentPointerForest.leaves(root)) == [7]

    def test_contains(self):
        forest = ParentPointerForest()
        forest.make_singleton(1)
        assert 1 in forest
        assert 2 not in forest

    def test_duplicate_singleton_rejected(self):
        forest = ParentPointerForest()
        forest.make_singleton(1)
        with pytest.raises(StructureError):
            forest.make_singleton(1)

    def test_union_merges_leaf_chains(self):
        forest = ParentPointerForest()
        r1 = forest.make_singleton(1)
        r2 = forest.make_singleton(2)
        merged = forest.union(r1, r2)
        assert merged.size == 2
        assert sorted(ParentPointerForest.leaves(merged)) == [1, 2]

    def test_union_same_root_noop(self):
        forest = ParentPointerForest()
        r1 = forest.make_singleton(1)
        assert forest.union(r1, r1) is r1

    def test_union_records_transitivity(self):
        forest = ParentPointerForest()
        for rid in range(4):
            forest.make_singleton(rid)
        forest.union_records(0, 1)
        forest.union_records(2, 3)
        forest.union_records(1, 2)
        assert forest.same_tree(0, 3)
        root = forest.find_root(0)
        assert root.size == 4
        assert sorted(ParentPointerForest.leaves(root)) == [0, 1, 2, 3]

    def test_roots_enumeration(self):
        forest = ParentPointerForest()
        for rid in range(5):
            forest.make_singleton(rid)
        forest.union_records(0, 1)
        roots = forest.roots()
        assert len(roots) == 4
        assert sorted(r.size for r in roots) == [1, 1, 1, 2]

    def test_size_constant_time_field(self):
        forest = ParentPointerForest()
        for rid in range(10):
            forest.make_singleton(rid)
        for rid in range(1, 10):
            forest.union_records(0, rid)
        assert forest.find_root(5).size == 10

    def test_merged_node_loses_leaf_pointers(self):
        forest = ParentPointerForest()
        r1 = forest.make_singleton(1)
        r2 = forest.make_singleton(2)
        forest.union(r1, r2)
        # Old roots must not silently iterate partial clusters.
        assert r1.first_leaf is None and r2.first_leaf is None

    def test_len_counts_records(self):
        forest = ParentPointerForest()
        for rid in (3, 5, 9):
            forest.make_singleton(rid)
        assert len(forest) == 3


@settings(max_examples=80, deadline=None)
@given(
    n=st.integers(2, 40),
    edges=st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)), max_size=80),
)
def test_matches_union_find(n, edges):
    """Property: components and sizes always agree with plain DSU."""
    forest = ParentPointerForest()
    uf = UnionFind(n)
    for rid in range(n):
        forest.make_singleton(rid)
    for a, b in edges:
        a, b = a % n, b % n
        forest.union_records(a, b)
        uf.union(a, b)
    comps_uf = {frozenset(c) for c in uf.components()}
    comps_tree = {
        frozenset(ParentPointerForest.leaves(r)) for r in forest.roots()
    }
    assert comps_uf == comps_tree
    # Sizes agree and leaf chains are complete.
    for root in forest.roots():
        leaves = list(ParentPointerForest.leaves(root))
        assert len(leaves) == root.size
        assert len(set(leaves)) == len(leaves)


@settings(max_examples=40, deadline=None)
@given(
    merges=st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=40)
)
def test_leaf_chain_is_terminated(merges):
    """The leaf chain of every root ends exactly at its last leaf (no
    over-run into other trees)."""
    forest = ParentPointerForest()
    for rid in range(20):
        forest.make_singleton(rid)
    for a, b in merges:
        forest.union_records(a, b)
    for root in forest.roots():
        assert root.last_leaf.next_leaf is None
