"""Tests for the log-size bin index (Appendix B.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.structures import BinIndex


class TestBasics:
    def test_empty(self):
        bins = BinIndex()
        assert len(bins) == 0
        assert not bins

    def test_pop_from_empty_raises(self):
        with pytest.raises(IndexError):
            BinIndex().pop_largest()

    def test_peek_from_empty_raises(self):
        with pytest.raises(IndexError):
            BinIndex().peek_largest_size()

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            BinIndex().add("x", 0)

    def test_single_item(self):
        bins = BinIndex()
        bins.add("a", 5)
        assert bins.peek_largest_size() == 5
        assert bins.pop_largest() == (5, "a")
        assert len(bins) == 0

    def test_pop_order_is_size_descending(self):
        bins = BinIndex()
        for size, item in [(3, "c"), (17, "a"), (9, "b"), (1, "d")]:
            bins.add(item, size)
        popped = [bins.pop_largest() for _ in range(4)]
        assert popped == [(17, "a"), (9, "b"), (3, "c"), (1, "d")]

    def test_same_bin_resolution(self):
        # 9, 10, 15 all land in bin 3 (sizes 8..15); largest must win.
        bins = BinIndex()
        bins.add("a", 9)
        bins.add("b", 15)
        bins.add("c", 10)
        assert bins.pop_largest() == (15, "b")
        assert bins.pop_largest() == (10, "c")

    def test_peek_does_not_remove(self):
        bins = BinIndex()
        bins.add("a", 4)
        assert bins.peek_largest_size() == 4
        assert len(bins) == 1

    def test_drain(self):
        bins = BinIndex()
        for size in (2, 8, 5):
            bins.add(size, size)
        assert [s for s, _ in bins.drain()] == [8, 5, 2]
        assert len(bins) == 0

    def test_interleaved_add_pop(self):
        bins = BinIndex()
        bins.add("a", 10)
        assert bins.pop_largest() == (10, "a")
        bins.add("b", 3)
        bins.add("c", 30)
        assert bins.pop_largest() == (30, "c")
        bins.add("d", 7)
        assert bins.pop_largest() == (7, "d")
        assert bins.pop_largest() == (3, "b")


@settings(max_examples=80, deadline=None)
@given(sizes=st.lists(st.integers(1, 2**40), min_size=1, max_size=60))
def test_drains_in_sorted_order(sizes):
    """Property: popping repeatedly yields sizes in descending order and
    returns every inserted item exactly once."""
    bins = BinIndex()
    for i, size in enumerate(sizes):
        bins.add(i, size)
    drained = list(bins.drain())
    assert sorted((s for s, _ in drained), reverse=True) == [
        s for s, _ in drained
    ]
    assert sorted(i for _, i in drained) == list(range(len(sizes)))
