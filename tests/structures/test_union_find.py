"""Tests for the plain union-find cross-check structure."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures import UnionFind


class TestBasics:
    def test_initially_disjoint(self):
        uf = UnionFind(4)
        assert not uf.connected(0, 1)
        assert len(uf.components()) == 4

    def test_union_connects(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)

    def test_union_idempotent(self):
        uf = UnionFind(3)
        root = uf.union(0, 1)
        assert uf.union(0, 1) == root

    def test_transitivity(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)

    def test_sizes_accumulate(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(0, 2)
        assert uf.size[uf.find(3)] == 4

    def test_components_partition(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(2, 3)
        comps = sorted(sorted(c) for c in uf.components())
        assert comps == [[0, 1], [2, 3], [4], [5]]


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 30),
    edges=st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=60),
)
def test_components_match_reference(n, edges):
    """Property: components equal a brute-force graph reachability."""
    uf = UnionFind(n)
    adj = {i: {i} for i in range(n)}
    for a, b in edges:
        a, b = a % n, b % n
        uf.union(a, b)
    # Brute force: repeated merging of overlapping sets.
    groups = [{i} for i in range(n)]
    for a, b in edges:
        a, b = a % n, b % n
        ga = next(g for g in groups if a in g)
        gb = next(g for g in groups if b in g)
        if ga is not gb:
            ga |= gb
            groups.remove(gb)
    assert {frozenset(c) for c in uf.components()} == {
        frozenset(g) for g in groups
    }
