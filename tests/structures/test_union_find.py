"""Tests for the union-find structures: the plain cross-check
structure and the leaf-chain variant backing batched edge replay."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structures import ClusterUnionFind, ParentPointerForest, UnionFind


class TestBasics:
    def test_initially_disjoint(self):
        uf = UnionFind(4)
        assert not uf.connected(0, 1)
        assert len(uf.components()) == 4

    def test_union_connects(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)

    def test_union_idempotent(self):
        uf = UnionFind(3)
        root = uf.union(0, 1)
        assert uf.union(0, 1) == root

    def test_transitivity(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.connected(0, 2)

    def test_sizes_accumulate(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(0, 2)
        assert uf.size[uf.find(3)] == 4

    def test_components_partition(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(2, 3)
        comps = sorted(sorted(c) for c in uf.components())
        assert comps == [[0, 1], [2, 3], [4], [5]]


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 30),
    edges=st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=60),
)
def test_components_match_reference(n, edges):
    """Property: components equal a brute-force graph reachability."""
    uf = UnionFind(n)
    adj = {i: {i} for i in range(n)}
    for a, b in edges:
        a, b = a % n, b % n
        uf.union(a, b)
    # Brute force: repeated merging of overlapping sets.
    groups = [{i} for i in range(n)]
    for a, b in edges:
        a, b = a % n, b % n
        ga = next(g for g in groups if a in g)
        gb = next(g for g in groups if b in g)
        if ga is not gb:
            ga |= gb
            groups.remove(gb)
    assert {frozenset(c) for c in uf.components()} == {
        frozenset(g) for g in groups
    }


def _edge_arrays(n, edges):
    a = np.array([x % n for x, _ in edges], dtype=np.int64)
    b = np.array([y % n for _, y in edges], dtype=np.int64)
    return a, b


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 30),
    edges=st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=60),
)
def test_union_edges_matches_sequential_unions(n, edges):
    """Property (issue satellite): the batched entry point is the exact
    sequential union order — identical parents and sizes, not merely
    identical components."""
    a, b = _edge_arrays(n, edges)
    batched = UnionFind(n)
    batched.union_edges(a, b)
    sequential = UnionFind(n)
    for x, y in zip(a.tolist(), b.tolist()):
        sequential.union(x, y)
    for x in range(n):  # normalize paths before comparing raw state
        batched.find(x)
        sequential.find(x)
    assert np.array_equal(batched.parent, sequential.parent)
    assert np.array_equal(batched.size, sequential.size)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 30),
    edges=st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=60),
)
def test_cluster_union_find_matches_forest_replay(n, edges):
    """Property (issue satellite): ``ClusterUnionFind.union_edges``
    reproduces a ``ParentPointerForest`` replay of the same edge
    sequence byte for byte — membership, leaf order within each
    cluster, and cluster emission order."""
    a, b = _edge_arrays(n, edges)

    cuf = ClusterUnionFind(n)
    cuf.union_edges(a, b)

    forest = ParentPointerForest()
    for x in range(n):
        forest.make_singleton(x)
    for x, y in zip(a.tolist(), b.tolist()):
        if x != y:
            forest.union_records(x, y)
    expected = [
        np.fromiter(forest.leaves(root), dtype=np.int64)
        for root in forest.roots()
    ]

    actual = cuf.clusters()
    assert len(actual) == len(expected)
    for got, want in zip(actual, expected):
        assert np.array_equal(got, want)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 25),
    edges=st.lists(st.tuples(st.integers(0, 24), st.integers(0, 24)), max_size=50),
    split=st.integers(0, 50),
)
def test_cluster_union_edges_batching_is_transparent(n, edges, split):
    """Splitting one edge stream across several ``union_edges`` calls
    (as the blocked strategy does, block by block) changes nothing."""
    a, b = _edge_arrays(n, edges)
    cut = min(split, a.size)

    whole = ClusterUnionFind(n)
    whole.union_edges(a, b)
    parts = ClusterUnionFind(n)
    parts.union_edges(a[:cut], b[:cut])
    for x, y in zip(a[cut:].tolist(), b[cut:].tolist()):
        parts.union(x, y)  # per-edge entry point on the tail

    got, want = parts.clusters(), whole.clusters()
    assert len(got) == len(want)
    for ga, wa in zip(got, want):
        assert np.array_equal(ga, wa)
