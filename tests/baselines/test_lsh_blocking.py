"""Tests for the LSH-X / LSH-X-nP blocking baselines."""

import numpy as np
import pytest

from repro.baselines import LSHBlocking, PairsBaseline
from repro.errors import ConfigurationError
from tests.conftest import make_vector_store
from repro.distance import CosineDistance, ThresholdRule


@pytest.fixture(scope="module")
def setup():
    store, labels = make_vector_store(
        cluster_sizes=(25, 15, 7), n_noise=40, seed=44
    )
    rule = ThresholdRule(CosineDistance("vec"), 10 / 180.0)
    return store, rule


class TestVerifiedLSH:
    def test_matches_pairs(self, setup):
        store, rule = setup
        lsh = LSHBlocking(store, rule, 1280, seed=3)
        pairs = PairsBaseline(store, rule)
        got = [sorted(c.rids.tolist()) for c in lsh.run(3).clusters]
        expected = [sorted(c.rids.tolist()) for c in pairs.run(3).clusters]
        assert got == expected

    def test_name(self, setup):
        store, rule = setup
        assert LSHBlocking(store, rule, 640, seed=0).name == "LSH640"
        assert (
            LSHBlocking(store, rule, 640, verify=False, seed=0).name
            == "LSH640nP"
        )

    def test_every_record_hashed_x_times(self, setup):
        """LSH-X applies (up to) X hash functions to every record —
        the design may spend slightly less than X, never more."""
        store, rule = setup
        lsh = LSHBlocking(store, rule, 320, seed=3)
        result = lsh.run(3)
        per_record = result.counters.hashes_computed / len(store)
        assert per_record <= 320
        assert per_record > 320 * 0.5

    def test_early_termination_skips_verification(self, setup):
        """With k=1 the verifier must not pay for every candidate
        cluster: pairs charged stay below the all-clusters total."""
        store, rule = setup
        lsh = LSHBlocking(store, rule, 1280, seed=3)
        result = lsh.run(1)
        n = len(store)
        assert result.counters.pairs_charged < n * (n - 1) // 2

    def test_k_must_be_positive(self, setup):
        store, rule = setup
        with pytest.raises(ConfigurationError):
            LSHBlocking(store, rule, 320, seed=0).run(0)

    def test_n_hashes_positive(self, setup):
        store, rule = setup
        with pytest.raises(ConfigurationError):
            LSHBlocking(store, rule, 0)

    def test_rerun_reuses_pools(self, setup):
        store, rule = setup
        lsh = LSHBlocking(store, rule, 320, seed=3)
        first = lsh.run(2)
        second = lsh.run(2)
        # Hash pool warm after the first run: no new hashes computed.
        assert second.counters.hashes_computed == 0
        assert [c.size for c in second.clusters] == [
            c.size for c in first.clusters
        ]


class TestNoPairsVariant:
    def test_np_does_no_pairwise_work(self, setup):
        store, rule = setup
        lsh = LSHBlocking(store, rule, 640, verify=False, seed=3)
        result = lsh.run(3)
        assert result.counters.pairs_compared == 0
        assert result.counters.pairs_charged == 0

    def test_np_with_large_budget_close_to_truth(self, setup):
        store, rule = setup
        lsh = LSHBlocking(store, rule, 2560, verify=False, seed=3)
        sizes = [c.size for c in lsh.run(3).clusters]
        assert sizes[0] >= 25  # top cluster found (possibly merged)

    def test_np_with_tiny_budget_inaccurate(self, setup):
        """Appendix E.1: the first-stage-only variant with few hashes
        merges unrelated records (low precision) — its top cluster is
        noticeably bigger than the true top cluster."""
        store, rule = setup
        lsh = LSHBlocking(store, rule, 20, verify=False, seed=3)
        sizes = [c.size for c in lsh.run(1).clusters]
        assert sizes[0] > 25
