"""Tests for the Pairs baseline."""

import numpy as np
import pytest

from repro.baselines import PairsBaseline
from repro.errors import ConfigurationError
from repro.structures import UnionFind
from tests.conftest import make_vector_store
from repro.distance import CosineDistance, ThresholdRule


@pytest.fixture(scope="module")
def setup():
    store, labels = make_vector_store(seed=55)
    rule = ThresholdRule(CosineDistance("vec"), 10 / 180.0)
    return store, rule, labels


def test_finds_planted_clusters(setup):
    store, rule, labels = setup
    result = PairsBaseline(store, rule).run(3)
    assert [c.size for c in result.clusters] == [30, 18, 8]


def test_matches_brute_force(setup):
    store, rule, _ = setup
    n = len(store)
    uf = UnionFind(n)
    for i in range(n):
        for j in range(i + 1, n):
            if rule.is_match(store, i, j):
                uf.union(i, j)
    expected = sorted(
        (sorted(c) for c in uf.components()), key=len, reverse=True
    )[:3]
    got = [sorted(c.rids.tolist()) for c in PairsBaseline(store, rule).run(3).clusters]
    assert got == expected


def test_counts_all_pairs(setup):
    store, rule, _ = setup
    result = PairsBaseline(store, rule).run(2)
    n = len(store)
    assert result.counters.pairs_charged == n * (n - 1) // 2


def test_component_count_reported(setup):
    store, rule, _ = setup
    result = PairsBaseline(store, rule).run(2)
    assert result.info["components"] >= 3


def test_k_must_be_positive(setup):
    store, rule, _ = setup
    with pytest.raises(ConfigurationError):
        PairsBaseline(store, rule).run(0)


def test_k_exceeding_components(setup):
    store, rule, _ = setup
    result = PairsBaseline(store, rule).run(10_000)
    assert result.k == result.info["components"]
