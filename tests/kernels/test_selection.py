"""The kernel-selection funnel and its configuration surface."""

import numpy as np
import pytest

from repro.core.config import AdaptiveConfig
from repro.errors import ConfigurationError
from repro.kernels import (
    KERNEL_NAMES,
    KERNELS_ENV,
    get_kernels,
    resolve_kernels,
    use_kernels,
)


class TestResolveKernels:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(KERNELS_ENV, raising=False)
        assert resolve_kernels(None) == "numpy"

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        assert resolve_kernels("packed") == "packed"

    def test_env_funnel(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "packed")
        assert resolve_kernels(None) == "packed"

    def test_context_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "numpy")
        with use_kernels("packed"):
            assert resolve_kernels(None) == "packed"
        assert resolve_kernels(None) == "numpy"

    def test_context_none_is_transparent(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "packed")
        with use_kernels(None):
            assert resolve_kernels(None) == "packed"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="kernels"):
            resolve_kernels("gpu")

    def test_unknown_env_rejected(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "warp")
        with pytest.raises(ConfigurationError, match="kernels"):
            resolve_kernels(None)


class TestRegistry:
    def test_names(self):
        assert KERNEL_NAMES == ("numpy", "packed")

    def test_get_kernels_singletons(self):
        for name in KERNEL_NAMES:
            backend = get_kernels(name)
            assert backend.name == name
            assert get_kernels(name) is backend


class TestConfigSurface:
    def test_config_validates_kernels(self):
        with pytest.raises(ConfigurationError, match="kernels"):
            AdaptiveConfig(kernels="gpu")

    def test_kernels_excluded_from_to_dict(self):
        assert "kernels" not in AdaptiveConfig(kernels="packed").to_dict()

    def test_info_reports_resolved_backend(self, tiny_spotsigs):
        from repro import AdaptiveLSH

        for name in KERNEL_NAMES:
            config = AdaptiveConfig(
                seed=0, cost_model="analytic", kernels=name
            )
            with AdaptiveLSH(
                tiny_spotsigs.store, tiny_spotsigs.rule, config=config
            ) as method:
                result = method.run(2)
            assert result.info["kernels"] == name

    def test_pack_cache_lives_on_store(self, tiny_spotsigs):
        store = tiny_spotsigs.store
        backend = get_kernels("packed")
        packed = backend.pack_sets(store, "signatures")
        assert backend.pack_sets(store, "signatures") is packed
        ref = get_kernels("numpy")
        # Different backends cache under different keys.
        assert ref.pack_sets(store, "signatures") is not packed

    def test_parallel_payload_carries_kernels(self, tiny_spotsigs):
        from repro.lsh.minhash import MinHashFamily

        family = MinHashFamily(
            tiny_spotsigs.store, "signatures", seed=0, kernels="packed"
        )
        spec = family.parallel_payload(8)
        assert spec["options"]["kernels"] == "packed"
        rebuilt = MinHashFamily(
            tiny_spotsigs.store,
            spec["field"],
            seed=0,
            bits=spec["options"]["bits"],
            kernels=spec["options"]["kernels"],
        )
        rebuilt.adopt_params(spec["params"])
        rids = np.arange(4, dtype=np.int64)
        assert np.array_equal(
            family.compute(rids, 0, 8), rebuilt.compute(rids, 0, 8)
        )
