"""Packed-backend internals: popcount fallback and layout selection."""

import numpy as np

from repro.kernels import packed as packed_mod
from repro.kernels.packed import (
    _BITSET_VOCAB_LIMIT,
    PackedField,
    _popcount_rows,
)
from repro.records import RecordStore, Schema


def _store(sets):
    arrays = [np.asarray(s, dtype=np.int64) for s in sets]
    return RecordStore(Schema.single_shingles(), {"shingles": arrays})


class TestPopcount:
    def test_lut_fallback_matches_bitwise_count(self, monkeypatch):
        rng = np.random.default_rng(0)
        words = rng.integers(0, 2**63, size=(37, 5), dtype=np.int64).astype(
            np.uint64
        )
        native = _popcount_rows(words)
        monkeypatch.setattr(packed_mod, "_HAS_BITWISE_COUNT", False)
        assert np.array_equal(_popcount_rows(words), native)

    def test_counts_are_exact(self, monkeypatch):
        words = np.array(
            [[0], [1], [2**64 - 1], [2**63]], dtype=np.uint64
        )
        for has_native in (True, False):
            monkeypatch.setattr(
                packed_mod, "_HAS_BITWISE_COUNT", has_native
            )
            assert _popcount_rows(words).tolist() == [0, 1, 64, 1]


class TestPackedLayout:
    def test_small_vocab_gets_bitset(self):
        field = PackedField(_store([[1, 2, 3], [2, 3, 4], []]), "shingles")
        assert field.vocab.size <= _BITSET_VOCAB_LIMIT
        assert field.bitset is not None

    def test_large_vocab_skips_bitset(self):
        rng = np.random.default_rng(1)
        sets = [
            np.unique(rng.integers(0, 2**40, size=8)) for _ in range(600)
        ]
        field = PackedField(_store(sets), "shingles")
        if field.vocab.size > _BITSET_VOCAB_LIMIT:
            assert field.bitset is None

    def test_vocab_always_contains_sentinel(self):
        from repro.kernels.reference import EMPTY_SENTINEL, _splitmix64

        field = PackedField(_store([[5], []]), "shingles")
        scrambled = _splitmix64(
            np.array([EMPTY_SENTINEL], dtype=np.uint64)
        )[0]
        assert scrambled in field.vocab
