"""End-to-end identity: final clusters are bit-identical for every
kernel backend × worker count, and across snapshot restore."""

import numpy as np
import pytest

from repro import AdaptiveConfig, AdaptiveLSH
from repro.datasets import generate_cora, generate_spotsigs
from repro.serve import IndexSnapshot


def _clusters(result):
    return [tuple(int(r) for r in c.rids) for c in result.clusters]


def _run(dataset, kernels, n_jobs=None, k=3):
    config = AdaptiveConfig(
        seed=7, cost_model="analytic", kernels=kernels, n_jobs=n_jobs
    )
    with AdaptiveLSH(dataset.store, dataset.rule, config=config) as method:
        result = method.run(k)
    return result


@pytest.mark.parametrize("generate", [generate_cora, generate_spotsigs])
def test_backends_produce_identical_clusters(generate):
    dataset = generate(n_records=300, seed=1)
    ref = _run(dataset, "numpy")
    fast = _run(dataset, "packed")
    assert _clusters(ref) == _clusters(fast)
    assert ref.counters.pairs_compared == fast.counters.pairs_compared
    assert ref.counters.hashes_computed == fast.counters.hashes_computed
    assert ref.info["kernels"] == "numpy"
    assert fast.info["kernels"] == "packed"


@pytest.mark.parametrize("kernels", ["numpy", "packed"])
def test_parallel_matches_serial_per_backend(kernels):
    dataset = generate_spotsigs(n_records=300, seed=2)
    serial = _run(dataset, kernels, n_jobs=1)
    parallel = _run(dataset, kernels, n_jobs=2)
    assert _clusters(serial) == _clusters(parallel)


def test_snapshot_restore_honours_kernel_override():
    dataset = generate_spotsigs(n_records=250, seed=3)
    config = AdaptiveConfig(seed=4, cost_model="analytic", kernels="numpy")
    with AdaptiveLSH(dataset.store, dataset.rule, config=config) as cold:
        cold_result = cold.run(3)
        snapshot = IndexSnapshot.capture(cold)
    warm = snapshot.restore(dataset.store, kernels="packed")
    try:
        assert warm.kernels == "packed"
        warm_result = warm.run(3)
    finally:
        warm.close()
    assert _clusters(cold_result) == _clusters(warm_result)


def test_streaming_identical_across_backends():
    from repro.online import StreamingTopK

    dataset = generate_cora(n_records=240, seed=5)
    rids = np.arange(len(dataset.store), dtype=np.int64)
    outputs = []
    for kernels in ("numpy", "packed"):
        config = AdaptiveConfig(
            seed=6, cost_model="analytic", kernels=kernels
        )
        stream = StreamingTopK(dataset.store, dataset.rule, config=config)
        try:
            per_query = []
            for batch in np.array_split(rids, 3):
                stream.insert_many(batch)
                per_query.append(_clusters(stream.top_k(3)))
        finally:
            stream.method.close()
        outputs.append(per_query)
    assert outputs[0] == outputs[1]
