"""Property-based equivalence: the packed backend is a bit-identical
drop-in for the pure-NumPy reference oracle.

Random shingle stores cover empty sets (the ``EMPTY_SENTINEL`` path),
small vocabularies (dense-bitset packing) and large sparse ids
(sorted-id CSR packing), b-bit truncation, and every derived distance
shape.  Equality is exact (``np.array_equal`` on raw uint64/float64
output), not approximate — that is the backend contract.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernels import get_kernels
from repro.kernels.packed import _BITSET_VOCAB_LIMIT
from repro.kernels.reference import EMPTY_SENTINEL, jaccard_distance
from repro.lsh.minhash import MinHashFamily
from repro.records import RecordStore, Schema

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def shingle_store(draw):
    """A random shingle store spanning both packed layouts."""
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    n_records = draw(st.integers(1, 40))
    # Small ids exercise the dense bitset; huge ids force sorted-id CSR.
    id_span = draw(
        st.sampled_from([50, 600, _BITSET_VOCAB_LIMIT + 100, 2**40])
    )
    empty_p = draw(st.floats(0.0, 0.4))
    sets = []
    for _ in range(n_records):
        if rng.random() < empty_p:
            sets.append(np.zeros(0, dtype=np.int64))
            continue
        size = int(rng.integers(1, 30))
        ids = rng.integers(0, id_span, size=size)
        sets.append(np.unique(ids).astype(np.int64))
    store = RecordStore(Schema.single_shingles(), {"shingles": sets})
    return store, seed


def _packed_pair(store):
    ref = get_kernels("numpy")
    fast = get_kernels("packed")
    return (ref, ref.pack_sets(store, "shingles")), (
        fast,
        fast.pack_sets(store, "shingles"),
    )


@SETTINGS
@given(data=shingle_store(), bits=st.sampled_from([None, 1, 4, 8]))
def test_minhash_block_bit_identical(data, bits):
    store, seed = data
    ref = MinHashFamily(store, "shingles", seed=0, bits=bits, kernels="numpy")
    fast = MinHashFamily(
        store, "shingles", seed=0, bits=bits, kernels="packed"
    )
    rng = np.random.default_rng(seed)
    rids = rng.permutation(len(store))[: max(1, len(store) // 2)].astype(
        np.int64
    )
    start = int(rng.integers(0, 5))
    stop = start + int(rng.integers(1, 40))
    assert np.array_equal(
        ref.compute(rids, start, stop), fast.compute(rids, start, stop)
    )


@SETTINGS
@given(data=shingle_store())
def test_jaccard_block_bit_identical(data):
    store, seed = data
    (ref, ref_p), (fast, fast_p) = _packed_pair(store)
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 80))
    rids_a = rng.integers(0, len(store), size=m).astype(np.int64)
    rids_b = rng.integers(0, len(store), size=m).astype(np.int64)
    got_ref = ref.jaccard_block(ref_p, rids_a, rids_b)
    got_fast = fast.jaccard_block(fast_p, rids_a, rids_b)
    assert np.array_equal(got_ref, got_fast)
    # Every element also matches the scalar oracle bit for bit.
    sets = store.shingle_sets("shingles")
    for i, (a, b) in enumerate(zip(rids_a, rids_b)):
        assert got_ref[i] == jaccard_distance(sets[int(a)], sets[int(b)])


@SETTINGS
@given(data=shingle_store(), chunk=st.sampled_from([2, 7, 256]))
def test_jaccard_pairwise_bit_identical(data, chunk):
    store, seed = data
    (ref, ref_p), (fast, fast_p) = _packed_pair(store)
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 30))
    rids = rng.integers(0, len(store), size=m).astype(np.int64)
    assert np.array_equal(
        ref.jaccard_pairwise(ref_p, rids, chunk),
        fast.jaccard_pairwise(fast_p, rids, chunk),
    )


@SETTINGS
@given(data=shingle_store())
def test_jaccard_one_to_many_bit_identical(data):
    store, seed = data
    (ref, ref_p), (fast, fast_p) = _packed_pair(store)
    rng = np.random.default_rng(seed)
    rid = int(rng.integers(0, len(store)))
    rids = rng.integers(0, len(store), size=int(rng.integers(1, 50))).astype(
        np.int64
    )
    assert np.array_equal(
        ref.jaccard_one_to_many(ref_p, rid, rids),
        fast.jaccard_one_to_many(fast_p, rid, rids),
    )


@SETTINGS
@given(data=shingle_store())
def test_jaccard_block_matrix_bit_identical(data):
    store, seed = data
    (ref, ref_p), (fast, fast_p) = _packed_pair(store)
    rng = np.random.default_rng(seed)
    rids_a = rng.integers(0, len(store), size=int(rng.integers(1, 25))).astype(
        np.int64
    )
    rids_b = rng.integers(0, len(store), size=int(rng.integers(1, 25))).astype(
        np.int64
    )
    assert np.array_equal(
        ref.jaccard_block_matrix(ref_p, rids_a, rids_b),
        fast.jaccard_block_matrix(fast_p, rids_a, rids_b),
    )


def test_empty_sets_use_sentinel_and_zero_distance():
    sets = [
        np.zeros(0, dtype=np.int64),
        np.zeros(0, dtype=np.int64),
        np.array([1, 2, 3], dtype=np.int64),
    ]
    store = RecordStore(Schema.single_shingles(), {"shingles": sets})
    for backend in ("numpy", "packed"):
        family = MinHashFamily(store, "shingles", seed=0, kernels=backend)
        sig = family.compute(np.array([0, 1], dtype=np.int64), 0, 4)
        # Two empty records hash identically (the scrambled sentinel).
        assert np.array_equal(sig[0], sig[1])
        kern = get_kernels(backend)
        packed = kern.pack_sets(store, "shingles")
        d = kern.jaccard_block(
            packed,
            np.array([0, 0], dtype=np.int64),
            np.array([1, 2], dtype=np.int64),
        )
        # Both-empty pairs are distance 0; empty-vs-nonempty is 1.
        assert d[0] == 0.0
        assert d[1] == 1.0
    assert EMPTY_SENTINEL == np.uint64((1 << 63) - 59)
