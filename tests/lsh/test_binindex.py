"""Property tests for the persistent bin index.

The load-bearing claim is *bit-identity*: :func:`group_table` must
reproduce the legacy void-argsort collision grouping — group content
AND yield order — for every input, including adversarial fingerprint
regimes (all fingerprints equal, low-entropy fingerprints) where the
byte tie-break inside fingerprint runs does all the work.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AdaptiveConfig
from repro.errors import ConfigurationError
from repro.lsh.binindex import (
    BIN_INDEX_ENV,
    H1DeltaIndex,
    SchemeBinIndex,
    csr_to_groups,
    fingerprint_words,
    group_table,
    pack_key_words,
    resolve_bin_index,
    strided_key_words,
)
from repro.lsh.families import SignaturePool
from repro.lsh.minhash import MinHashFamily
from repro.lsh.scheme import HashingScheme, PoolUse, TableGroup
from repro.structures.union_find import UnionFind
from tests.conftest import make_shingle_store


def legacy_groups(rows):
    """The void-argsort reference grouping from
    ``HashingScheme.iter_table_collisions``, inlined byte for byte."""
    rows = np.ascontiguousarray(rows, dtype=np.uint8)
    if rows.shape[0] == 0:
        return []
    void = rows.view(
        np.dtype((np.void, rows.dtype.itemsize * rows.shape[1]))
    ).ravel()
    order = np.argsort(void, kind="stable")
    sorted_keys = void[order]
    change = np.empty(order.size, dtype=bool)
    change[0] = True
    change[1:] = sorted_keys[1:] != sorted_keys[:-1]
    starts = np.nonzero(change)[0]
    ends = np.r_[starts[1:], order.size]
    return [order[s:e] for s, e in zip(starts, ends) if e - s >= 2]


def words_of_rows(rows):
    def words_of(positions):
        return pack_key_words(rows[positions])

    return words_of


def assert_same_groups(got, expected):
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        np.testing.assert_array_equal(g, e)


@st.composite
def key_matrix(draw):
    m = draw(st.integers(0, 60))
    nbytes = draw(st.integers(1, 20))
    alphabet = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return rng.integers(0, alphabet, size=(m, nbytes), dtype=np.uint8)


class TestGroupTable:
    @settings(max_examples=150, deadline=None)
    @given(rows=key_matrix())
    def test_matches_legacy_with_honest_fingerprints(self, rows):
        fps = (
            fingerprint_words(pack_key_words(rows))
            if rows.shape[0]
            else np.empty(0, dtype=np.uint64)
        )
        got = csr_to_groups(*group_table(fps, words_of_rows(rows)))
        assert_same_groups(got, legacy_groups(rows))

    @settings(max_examples=100, deadline=None)
    @given(rows=key_matrix())
    def test_matches_legacy_when_all_fingerprints_collide(self, rows):
        fps = np.zeros(rows.shape[0], dtype=np.uint64)
        got = csr_to_groups(*group_table(fps, words_of_rows(rows)))
        assert_same_groups(got, legacy_groups(rows))

    @settings(max_examples=100, deadline=None)
    @given(rows=key_matrix(), buckets=st.integers(2, 5))
    def test_matches_legacy_with_low_entropy_fingerprints(
        self, rows, buckets
    ):
        honest = (
            fingerprint_words(pack_key_words(rows))
            if rows.shape[0]
            else np.empty(0, dtype=np.uint64)
        )
        fps = honest % np.uint64(buckets)
        got = csr_to_groups(*group_table(fps, words_of_rows(rows)))
        assert_same_groups(got, legacy_groups(rows))

    @settings(max_examples=100, deadline=None)
    @given(rows=key_matrix())
    def test_csr_contract(self, rows):
        fps = (
            fingerprint_words(pack_key_words(rows))
            if rows.shape[0]
            else np.empty(0, dtype=np.uint64)
        )
        members, starts = group_table(fps, words_of_rows(rows))
        assert starts[0] == 0
        assert starts[-1] == members.size
        lens = np.diff(starts)
        assert (lens >= 2).all()
        if members.size:
            assert members.min() >= 0
            assert members.max() < rows.shape[0]
            assert np.unique(members).size == members.size

    def test_empty_and_singleton(self):
        rows = np.zeros((1, 4), dtype=np.uint8)
        members, starts = group_table(
            np.zeros(1, dtype=np.uint64), words_of_rows(rows)
        )
        assert members.size == 0
        assert starts.tolist() == [0]


class TestWords:
    @settings(max_examples=100, deadline=None)
    @given(rows=key_matrix(), data=st.data())
    def test_strided_equals_packed_slice(self, rows, data):
        if rows.shape[0] == 0:
            rows = np.zeros((1, rows.shape[1]), dtype=np.uint8)
        nbytes = data.draw(st.integers(1, rows.shape[1]))
        offset = data.draw(st.integers(0, rows.shape[1] - nbytes))
        np.testing.assert_array_equal(
            strided_key_words(rows, offset, nbytes),
            pack_key_words(rows[:, offset : offset + nbytes]),
        )

    def test_word_order_is_memcmp_order(self):
        rng = np.random.default_rng(7)
        rows = rng.integers(0, 256, size=(64, 11), dtype=np.uint8)
        words = pack_key_words(rows)
        by_words = np.lexsort(words.T[::-1])
        by_bytes = sorted(range(64), key=lambda i: rows[i].tobytes())
        np.testing.assert_array_equal(by_words, np.array(by_bytes))


class TestResolve:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv(BIN_INDEX_ENV, "0")
        assert resolve_bin_index(True) is True
        assert resolve_bin_index(False) is False

    def test_env_values(self, monkeypatch):
        monkeypatch.delenv(BIN_INDEX_ENV, raising=False)
        assert resolve_bin_index() is True
        for raw, expected in [
            ("1", True),
            ("true", True),
            ("on", True),
            ("0", False),
            ("no", False),
            ("off", False),
        ]:
            monkeypatch.setenv(BIN_INDEX_ENV, raw)
            assert resolve_bin_index() is expected

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(BIN_INDEX_ENV, "maybe")
        with pytest.raises(ConfigurationError):
            resolve_bin_index()

    def test_config_knob_round_trips(self):
        cfg = AdaptiveConfig(bin_index=False, bin_index_bytes=1024)
        d = cfg.to_dict()
        assert d["bin_index"] is False
        assert d["bin_index_bytes"] == 1024
        assert AdaptiveConfig.from_dict(d).bin_index is False


@pytest.fixture(scope="module")
def h1_scheme():
    store, _ = make_shingle_store(seed=5)
    pool = SignaturePool(MinHashFamily(store, "shingles", seed=5))
    scheme = HashingScheme([TableGroup(6, (PoolUse(pool, 2),))])
    return store, scheme


def dict_partition(scheme, batches, n):
    """The dict-table streaming reference partition."""
    uf = UnionFind(n)
    tables = [dict() for _ in range(scheme.table_count)]
    for batch in batches:
        for table, keys in zip(tables, scheme.iter_table_keys(batch)):
            for rid_raw, key in zip(batch, keys):
                rid = int(rid_raw)
                prev = table.get(key)
                if prev is not None:
                    uf.union(rid, prev)
                table[key] = rid
    return roots_of(uf, n)


def roots_of(uf, n):
    return tuple(uf.find(i) for i in range(n))


def canonical(roots):
    seen = {}
    return tuple(seen.setdefault(r, len(seen)) for r in roots)


class TestH1DeltaIndex:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n_batches=st.integers(1, 5))
    def test_partition_matches_dict_tables(
        self, h1_scheme, seed, n_batches
    ):
        store, scheme = h1_scheme
        n = len(store)
        rng = np.random.default_rng(seed)
        rids = rng.permutation(n).astype(np.int64)
        batches = np.array_split(rids, n_batches)

        owner = SchemeBinIndex(n)
        delta = owner.h1_delta(scheme, None)
        assert isinstance(delta, H1DeltaIndex)
        uf = UnionFind(n)
        for batch in batches:
            assert delta.insert(batch, uf)
        assert delta.indexed_records == n
        assert canonical(roots_of(uf, n)) == canonical(
            dict_partition(scheme, batches, n)
        )

    def test_export_adopt_round_trip(self, h1_scheme):
        store, scheme = h1_scheme
        n = len(store)
        rids = np.arange(n, dtype=np.int64)
        first, rest = rids[: n // 2], rids[n // 2 :]

        owner = SchemeBinIndex(n)
        delta = owner.h1_delta(scheme, None)
        uf = UnionFind(n)
        assert delta.insert(first, uf)
        state = delta.export_state()

        successor_owner = SchemeBinIndex(n)
        successor = successor_owner.h1_delta(scheme, None, state=state)
        assert successor is not None
        assert successor.indexed_records == first.size
        assert successor.insert(rest, uf)
        assert canonical(roots_of(uf, n)) == canonical(
            dict_partition(scheme, [rids], n)
        )
        assert successor_owner.delta_rows == rest.size * scheme.table_count

    def test_adopt_rejects_layout_mismatch(self, h1_scheme):
        store, scheme = h1_scheme
        owner = SchemeBinIndex(len(store))
        delta = owner.h1_delta(scheme, None)
        uf = UnionFind(len(store))
        assert delta.insert(np.arange(4, dtype=np.int64), uf)
        state = delta.export_state()
        state["table_count"] = scheme.table_count + 1
        assert owner.h1_delta(scheme, None, state=state) is None

    def test_adopt_rejects_over_budget(self, h1_scheme):
        store, scheme = h1_scheme
        owner = SchemeBinIndex(len(store))
        delta = owner.h1_delta(scheme, None)
        uf = UnionFind(len(store))
        assert delta.insert(np.arange(8, dtype=np.int64), uf)
        state = delta.export_state()
        broke = SchemeBinIndex(len(store), max_bytes=0)
        assert broke.h1_delta(scheme, None, state=state) is None
        assert broke.degraded == 1

    def test_insert_over_budget_returns_false_without_mutation(
        self, h1_scheme
    ):
        store, scheme = h1_scheme
        # Enough budget for the fingerprint matrix but not the arrays.
        owner = SchemeBinIndex(
            len(store), max_bytes=len(store) * (scheme.table_count * 8 + 1)
        )
        delta = owner.h1_delta(scheme, None)
        uf = UnionFind(len(store))
        before = roots_of(uf, len(store))
        assert delta.insert(np.arange(10, dtype=np.int64), uf) is False
        assert owner.degraded == 1
        assert delta.indexed_records == 0
        assert roots_of(uf, len(store)) == before


class TestBudgetDegradation:
    def test_zero_budget_groups_identically(self, h1_scheme):
        store, scheme = h1_scheme
        rids = np.arange(len(store), dtype=np.int64)

        cached = SchemeBinIndex(len(store))
        broke = SchemeBinIndex(len(store), max_bytes=0)
        got_cached = [
            csr_to_groups(*csr)
            for csr in cached.level(1).iter_table_groups(scheme, rids)
        ]
        got_broke = [
            csr_to_groups(*csr)
            for csr in broke.level(1).iter_table_groups(scheme, rids)
        ]
        legacy = list(scheme.iter_table_collisions(rids))
        assert broke.degraded == 1
        assert broke.indexed_bytes == 0
        assert cached.indexed_bytes > 0
        for a, b, c in zip(got_cached, got_broke, legacy):
            assert_same_groups(a, c)
            assert_same_groups(b, c)

    def test_cached_fingerprints_hit_on_reuse(self, h1_scheme):
        store, scheme = h1_scheme
        rids = np.arange(len(store), dtype=np.int64)
        owner = SchemeBinIndex(len(store))
        for _ in owner.level(1).iter_table_groups(scheme, rids):
            pass
        assert owner.fp_hits == 0
        for _ in owner.level(1).iter_table_groups(scheme, rids):
            pass
        assert owner.fp_hits == len(store)

    def test_level_groups_match_legacy_on_real_scheme(self, h1_scheme):
        store, scheme = h1_scheme
        rng = np.random.default_rng(11)
        rids = np.sort(
            rng.choice(len(store), size=len(store) // 2, replace=False)
        ).astype(np.int64)
        owner = SchemeBinIndex(len(store))
        got = [
            csr_to_groups(*csr)
            for csr in owner.level(1).iter_table_groups(scheme, rids)
        ]
        legacy = list(scheme.iter_table_collisions(rids))
        assert len(got) == scheme.table_count
        for a, b in zip(got, legacy):
            assert_same_groups(a, b)
