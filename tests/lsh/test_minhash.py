"""Statistical tests: minhash collides with probability ~= Jaccard
similarity, including the structured-id edge cases that broke naive
multiplicative hashing (id 0, tiny sequential ids)."""

import numpy as np
import pytest

from repro.distance.jaccard import jaccard_distance
from repro.lsh.minhash import MinHashFamily
from repro.records import RecordStore, Schema


def store_from(sets):
    return RecordStore(Schema.single_shingles(), {"shingles": sets})


def collision_rate(store, r1, r2, n=4000, seed=0):
    family = MinHashFamily(store, "shingles", seed=seed)
    sig = family.compute(np.array([r1, r2]), 0, n)
    return float((sig[0] == sig[1]).mean())


@pytest.mark.parametrize(
    "a,b",
    [
        (list(range(0, 100)), list(range(50, 150))),  # J = 1/3
        (list(range(0, 40)), list(range(0, 40))),  # J = 1
        (list(range(0, 30)), list(range(100, 130))),  # J = 0
        (list(range(0, 80)), list(range(0, 20))),  # J = 0.25
    ],
)
def test_collision_rate_matches_jaccard(a, b):
    store = store_from([a, b])
    expected = 1 - jaccard_distance(
        np.asarray(sorted(set(a))), np.asarray(sorted(set(b)))
    )
    rate = collision_rate(store, 0, 1)
    assert rate == pytest.approx(expected, abs=0.035)


def test_id_zero_is_not_degenerate():
    """Regression: with pure multiplicative hashing, id 0 hashes to 0
    under every function and always wins the minimum; two sets sharing
    id 0 would collide on every hash regardless of their Jaccard."""
    a = [0] + list(range(1000, 1040))
    b = [0] + list(range(2000, 2040))
    store = store_from([a, b])  # J = 1/81
    rate = collision_rate(store, 0, 1)
    assert rate < 0.08

def test_small_sequential_ids_not_biased():
    a = list(range(0, 60))
    b = list(range(30, 90))  # J = 30/90
    store = store_from([a, b])
    assert collision_rate(store, 0, 1) == pytest.approx(1 / 3, abs=0.04)


def test_empty_sets_always_collide():
    store = store_from([[], []])
    assert collision_rate(store, 0, 1, n=200) == 1.0


def test_empty_vs_nonempty_rarely_collide():
    store = store_from([[], list(range(50))])
    assert collision_rate(store, 0, 1, n=2000) < 0.01


def test_batch_order_invariance():
    """Signatures must not depend on which records are computed together
    (the size-sorted batching must be transparent)."""
    rng = np.random.default_rng(0)
    sets = [
        rng.choice(500, size=size, replace=False)
        for size in (5, 200, 17, 90, 33, 150)
    ]
    store = store_from(sets)
    family = MinHashFamily(store, "shingles", seed=9)
    together = family.compute(np.arange(6), 0, 64)
    family2 = MinHashFamily(store, "shingles", seed=9)
    separate = np.vstack(
        [family2.compute(np.array([i]), 0, 64) for i in range(6)]
    )
    assert np.array_equal(together, separate)


def test_incremental_range_consistency():
    store = store_from([list(range(40)), list(range(20, 60))])
    family = MinHashFamily(store, "shingles", seed=2)
    full = family.compute(np.array([0, 1]), 0, 100)
    parts = np.hstack(
        [
            family.compute(np.array([0, 1]), 0, 30),
            family.compute(np.array([0, 1]), 30, 100),
        ]
    )
    assert np.array_equal(full, parts)
