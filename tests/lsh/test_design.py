"""Tests for the scheme-design programs (§5.1, Appendix C)."""

import numpy as np
import pytest

from repro.distance import (
    CosineDistance,
    JaccardDistance,
    OrRule,
    ThresholdRule,
    WeightedAverageRule,
)
from repro.errors import ConfigurationError, DesignError
from repro.lsh.design import (
    build_design_context,
    design_group,
    design_scheme,
    design_sequence,
)
from repro.lsh.probability import collision_prob_curve
from repro.records import FieldKind, FieldSpec, RecordStore, Schema
from tests.conftest import make_shingle_store, make_vector_store


def linear_p(x):
    return np.clip(1.0 - np.asarray(x, dtype=float), 0.0, 1.0)


class FakeComponent:
    """Leaf component stub with a linear p(x)."""

    def __init__(self, d_thr):
        self.label = f"fake@{d_thr}"
        self.pool = None
        self.pfunc = linear_p
        self.d_thr = d_thr


class TestDesignGroup:
    def test_budget_respected(self):
        design = design_group([FakeComponent(0.1)], budget=2100)
        assert design.budget <= 2100

    def test_constraint_satisfied(self):
        comp = FakeComponent(15 / 180.0)
        design = design_group([comp], budget=2100, epsilon=1e-3)
        assert design.feasible
        prob = collision_prob_curve(linear_p, design.ws[0], design.z, comp.d_thr)
        assert float(prob) >= 1 - 1e-3

    def test_maximizes_w_among_feasible(self):
        """The optimum is the largest feasible w (paper §5.1)."""
        comp = FakeComponent(15 / 180.0)
        design = design_group([comp], budget=2100, epsilon=1e-3)
        w, z = design.ws[0], design.z
        # One more hash per table (same table count) must be infeasible
        # or exceed the budget.
        bigger_feasible = (
            (w + 1) * z <= 2100
            and float(collision_prob_curve(linear_p, w + 1, z, comp.d_thr))
            >= 1 - 1e-3
        )
        assert not bigger_feasible

    def test_small_budget_tight_rule_falls_back(self):
        """Two strict components under a tiny budget: no feasible
        allocation exists; the fallback uses minimum hashes."""
        comps = [FakeComponent(0.3), FakeComponent(0.8)]
        design = design_group(comps, budget=20, epsilon=1e-3)
        assert not design.feasible
        assert design.ws == (1, 1)
        assert design.z == 10

    def test_two_components_feasible_with_big_budget(self):
        comps = [FakeComponent(0.3), FakeComponent(0.8)]
        design = design_group(comps, budget=640, epsilon=1e-3)
        assert design.feasible

    def test_min_ws_enforced(self):
        comp = FakeComponent(0.5)
        design = design_group([comp], budget=100, min_ws=(4,))
        assert design.ws[0] >= 4

    def test_min_z_enforced(self):
        comp = FakeComponent(0.5)
        design = design_group([comp], budget=100, min_z=12)
        assert design.z >= 12

    def test_budget_too_small_raises(self):
        with pytest.raises(DesignError):
            design_group([FakeComponent(0.5)], budget=3, min_ws=(2,), min_z=2)


class TestBuildContext:
    def test_single_threshold_rule(self):
        store, _ = make_vector_store()
        rule = ThresholdRule(CosineDistance("vec"), 0.1)
        ctx = build_design_context(store, rule, seed=0)
        assert len(ctx.branches) == 1
        assert len(ctx.branches[0]) == 1

    def test_and_rule_components(self, tiny_cora):
        ctx = build_design_context(tiny_cora.store, tiny_cora.rule, seed=0)
        assert len(ctx.branches) == 1
        assert len(ctx.branches[0]) == 2  # weighted-average + rest

    def test_or_rule_branches(self):
        store, _ = make_shingle_store()
        schema_rule = OrRule(
            [
                ThresholdRule(JaccardDistance("shingles"), 0.5),
                ThresholdRule(JaccardDistance("shingles"), 0.7),
            ]
        )
        ctx = build_design_context(store, schema_rule, seed=0)
        assert len(ctx.branches) == 2

    def test_nested_or_rejected(self):
        store, _ = make_shingle_store()
        inner = OrRule(
            [
                ThresholdRule(JaccardDistance("shingles"), 0.5),
                ThresholdRule(JaccardDistance("shingles"), 0.7),
            ]
        )
        nested = OrRule([inner, ThresholdRule(JaccardDistance("shingles"), 0.6)])
        with pytest.raises(ConfigurationError):
            build_design_context(store, nested, seed=0)


class TestDesignScheme:
    def test_monotonicity_across_sequence(self):
        store, _ = make_shingle_store()
        rule = ThresholdRule(JaccardDistance("shingles"), 0.6)
        _, designs = design_sequence(
            store, rule, [20, 40, 80, 160, 320], seed=0
        )
        for prev, nxt in zip(designs, designs[1:]):
            for g_prev, g_next in zip(prev.groups, nxt.groups):
                assert g_next.z >= g_prev.z
                assert all(
                    w_next >= w_prev
                    for w_prev, w_next in zip(g_prev.ws, g_next.ws)
                )

    def test_pools_shared_across_sequence(self):
        store, _ = make_shingle_store()
        rule = ThresholdRule(JaccardDistance("shingles"), 0.6)
        ctx, designs = design_sequence(store, rule, [20, 40, 80], seed=0)
        pools = {id(comp.pool) for branch in ctx.branches for comp in branch}
        for design in designs:
            for group in design.groups:
                for comp, _w in zip(group.components, group.ws):
                    assert id(comp.pool) in pools

    def test_budgets_must_increase(self):
        store, _ = make_shingle_store()
        rule = ThresholdRule(JaccardDistance("shingles"), 0.6)
        with pytest.raises(ConfigurationError):
            design_sequence(store, rule, [40, 40], seed=0)

    def test_empty_budgets_rejected(self):
        store, _ = make_shingle_store()
        rule = ThresholdRule(JaccardDistance("shingles"), 0.6)
        with pytest.raises(ConfigurationError):
            design_sequence(store, rule, [], seed=0)

    def test_or_rule_splits_budget(self):
        store, _ = make_shingle_store()
        rule = OrRule(
            [
                ThresholdRule(JaccardDistance("shingles"), 0.5),
                ThresholdRule(JaccardDistance("shingles"), 0.7),
            ]
        )
        ctx = build_design_context(store, rule, seed=0)
        design = design_scheme(ctx, 640)
        assert len(design.groups) == 2
        assert design.spent_budget <= 640

    def test_describe_is_readable(self):
        store, _ = make_shingle_store()
        rule = ThresholdRule(JaccardDistance("shingles"), 0.6)
        ctx = build_design_context(store, rule, seed=0)
        design = design_scheme(ctx, 320)
        assert "w=" in design.describe() and "z=" in design.describe()

    def test_weighted_average_uses_one_pool(self):
        schema = Schema(
            (
                FieldSpec("a", FieldKind.SHINGLES),
                FieldSpec("b", FieldKind.SHINGLES),
            )
        )
        store = RecordStore(
            schema, {"a": [[1, 2], [2, 3]], "b": [[4], [4, 5]]}
        )
        rule = WeightedAverageRule(
            [JaccardDistance("a"), JaccardDistance("b")],
            weights=[0.5, 0.5],
            threshold=0.4,
        )
        ctx = build_design_context(store, rule, seed=0)
        assert len(ctx.branches) == 1
        assert len(ctx.branches[0]) == 1  # single mixture component

    def test_cora_rule_design_eventually_feasible(self, tiny_cora):
        _, designs = design_sequence(
            tiny_cora.store, tiny_cora.rule, [20, 40, 80, 160, 320], seed=0
        )
        assert not designs[0].feasible  # AND rule too strict at 20
        assert designs[-1].feasible
