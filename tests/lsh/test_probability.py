"""Tests for the AND-OR collision probability math (Appendix A, §5.1)."""

import numpy as np
import pytest

from repro.lsh.probability import (
    and_feasible,
    and_objective,
    and_or_collision_prob,
    collision_prob_curve,
    or_combine,
    scheme_feasible,
    scheme_objective,
)


def linear_p(x):
    return np.clip(1.0 - np.asarray(x, dtype=float), 0.0, 1.0)


class TestAndOrCollisionProb:
    def test_single_table_single_hash(self):
        assert and_or_collision_prob(0.3, 1) == pytest.approx(0.3)

    def test_or_amplification(self):
        # 1 - (1 - 0.3)^2 = 0.51
        assert and_or_collision_prob(0.3, 2) == pytest.approx(0.51)

    def test_extremes(self):
        assert and_or_collision_prob(0.0, 10) == pytest.approx(0.0)
        assert and_or_collision_prob(1.0, 10) == pytest.approx(1.0)

    def test_vectorized(self):
        q = np.array([0.0, 0.5, 1.0])
        got = and_or_collision_prob(q, 3)
        assert np.allclose(got, [0.0, 1 - 0.5**3, 1.0])

    def test_example3_from_paper(self):
        """Paper Example 3: two tables, three hyperplanes each; for an
        angle theta the probability is 1 - (1 - (1-theta/180)^3)^2."""
        theta = 30.0
        p = 1 - theta / 180.0
        expected = 1 - (1 - p**3) ** 2
        got = collision_prob_curve(linear_p, 3, 2, theta / 180.0)
        assert float(got) == pytest.approx(expected)

    def test_monotone_decreasing_in_distance(self):
        x = np.linspace(0, 1, 50)
        curve = collision_prob_curve(linear_p, 8, 16, x)
        assert np.all(np.diff(curve) <= 1e-12)

    def test_more_hashes_sharper_drop(self):
        """Figure 5's qualitative point: at a distance past the
        threshold, a bigger scheme has a lower collision probability."""
        x_far = 55.0 / 180.0
        small = collision_prob_curve(linear_p, 1, 1, x_far)
        mid = collision_prob_curve(linear_p, 15, 20, x_far)
        big = collision_prob_curve(linear_p, 30, 70, x_far)
        assert float(big) < float(mid) < float(small)


class TestObjectiveAndFeasibility:
    def test_objective_decreases_with_w_at_fixed_budget(self):
        budget = 2100
        objectives = [
            scheme_objective(linear_p, w, budget // w) for w in (15, 30, 60)
        ]
        assert objectives[0] > objectives[1] > objectives[2]

    def test_feasibility_monotone_in_w(self):
        """Section 5.1: if the constraint fails for w, it fails for all
        greater w (same budget)."""
        budget, d_thr, eps = 2100, 15 / 180.0, 1e-3
        feas = [
            scheme_feasible(linear_p, w, budget // w, d_thr, eps)
            for w in range(1, 80)
        ]
        # Once infeasible, always infeasible.
        first_bad = feas.index(False) if False in feas else len(feas)
        assert all(feas[:first_bad])
        assert not any(feas[first_bad:])

    def test_objective_bounds(self):
        obj = scheme_objective(linear_p, 4, 5)
        assert 0.0 < obj < 1.0

    def test_and_objective_reduces_to_single(self):
        single = scheme_objective(linear_p, 6, 7, grid_points=129)
        multi = and_objective([linear_p], [6], 7, grid_points=129)
        assert multi == pytest.approx(single, rel=1e-9)

    def test_and_objective_two_fields_smaller_than_one(self):
        """ANDing a second field can only reduce the collision volume."""
        one = and_objective([linear_p], [4], 10, grid_points=65)
        two = and_objective([linear_p, linear_p], [4, 2], 10, grid_points=65)
        assert two < one

    def test_and_feasible_corner(self):
        assert and_feasible([linear_p, linear_p], [1, 1], 100, [0.3, 0.5], 1e-3)
        assert not and_feasible([linear_p, linear_p], [9, 9], 2, [0.3, 0.5], 1e-3)


class TestOrCombine:
    def test_single_branch_identity(self):
        assert or_combine([np.array([0.25])])[0] == pytest.approx(0.25)

    def test_two_branches(self):
        got = or_combine([np.array([0.5]), np.array([0.5])])
        assert got[0] == pytest.approx(0.75)

    def test_never_decreases(self):
        a = np.linspace(0, 1, 11)
        combined = or_combine([a, np.full_like(a, 0.1)])
        assert np.all(combined >= a - 1e-12)
