"""Tests for the per-level packed-key cache."""

import numpy as np

from repro.distance import CosineDistance
from repro.lsh.design import design_sequence
from repro.lsh.keycache import LevelKeyCache
from repro.distance.rules import ThresholdRule
from tests.conftest import make_vector_store


def _scheme(store, rule):
    _ctx, designs = design_sequence(store, rule, [20, 40], seed=3)
    return designs[0].to_scheme()


def _setup():
    store, _ = make_vector_store(cluster_sizes=(8, 6), n_noise=20, seed=4)
    rule = ThresholdRule(CosineDistance("vec"), 10 / 180.0)
    return store, _scheme(store, rule)


class TestLevelKeyCache:
    def test_cached_rows_equal_fresh_rows(self):
        store, scheme = _setup()
        cache = LevelKeyCache(len(store))
        entry = cache.entry(1)
        rids = store.rids
        fresh, layout = scheme.table_key_rows(rids)
        first, first_layout = entry.rows(scheme, rids)
        again, again_layout = entry.rows(scheme, rids)
        assert first_layout == layout and again_layout == layout
        assert np.array_equal(first, fresh)
        assert np.array_equal(again, fresh)
        assert cache.hits == len(store)
        assert cache.misses == len(store)

    def test_partial_fill_then_extend(self):
        store, scheme = _setup()
        cache = LevelKeyCache(len(store))
        entry = cache.entry(1)
        head = store.rids[:10]
        entry.rows(scheme, head)
        rows, _ = entry.rows(scheme, store.rids)
        fresh, _ = scheme.table_key_rows(store.rids)
        assert np.array_equal(rows, fresh)
        assert cache.hits == 10
        assert cache.misses == len(store)

    def test_byte_cap_degrades_to_passthrough(self):
        store, scheme = _setup()
        cache = LevelKeyCache(len(store), max_bytes=8)
        entry = cache.entry(1)
        rows, _ = entry.rows(scheme, store.rids)
        fresh, _ = scheme.table_key_rows(store.rids)
        assert np.array_equal(rows, fresh)
        assert cache.cached_bytes == 0
        assert cache.hits == 0
        # Still correct (and still a miss) on repeat lookups.
        again, _ = entry.rows(scheme, store.rids)
        assert np.array_equal(again, fresh)
        assert cache.hits == 0

    def test_stats_shape(self):
        store, scheme = _setup()
        cache = LevelKeyCache(len(store))
        cache.entry(1).rows(scheme, store.rids)
        stats = cache.stats()
        assert stats["levels"] == 1
        assert stats["bytes"] > 0
        assert stats["misses"] == len(store)

    def test_collisions_with_cache_match_without(self):
        store, scheme = _setup()
        cache = LevelKeyCache(len(store))
        entry = cache.entry(1)
        rids = store.rids[5:40]
        plain = [
            [g.tolist() for g in groups]
            for groups in scheme.iter_table_collisions(rids)
        ]
        cached = [
            [g.tolist() for g in groups]
            for groups in scheme.iter_table_collisions(rids, key_cache=entry)
        ]
        cached_again = [
            [g.tolist() for g in groups]
            for groups in scheme.iter_table_collisions(rids, key_cache=entry)
        ]
        assert plain == cached == cached_again
