"""Tests for (w, z)-scheme table layouts and collision grouping."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.lsh.families import SignaturePool
from repro.lsh.hyperplanes import RandomHyperplaneFamily
from repro.lsh.minhash import MinHashFamily
from repro.lsh.scheme import HashingScheme, PoolUse, TableGroup
from tests.conftest import make_shingle_store, make_vector_store


@pytest.fixture()
def vector_pool():
    store, _ = make_vector_store(seed=2)
    return SignaturePool(RandomHyperplaneFamily(store, "vec", seed=2))


@pytest.fixture()
def shingle_pool():
    store, _ = make_shingle_store(seed=2)
    return SignaturePool(MinHashFamily(store, "shingles", seed=2))


class TestValidation:
    def test_w_must_be_positive(self, vector_pool):
        with pytest.raises(ConfigurationError):
            PoolUse(vector_pool, 0)

    def test_z_must_be_positive(self, vector_pool):
        with pytest.raises(ConfigurationError):
            TableGroup(0, (PoolUse(vector_pool, 1),))

    def test_group_needs_pools(self):
        with pytest.raises(ConfigurationError):
            TableGroup(1, ())

    def test_scheme_needs_groups(self):
        with pytest.raises(ConfigurationError):
            HashingScheme([])


class TestBudgets:
    def test_single_group_budget(self, vector_pool):
        scheme = HashingScheme([TableGroup(5, (PoolUse(vector_pool, 4),))])
        assert scheme.budget == 20
        assert scheme.table_count == 5

    def test_and_group_budget(self, vector_pool, shingle_pool):
        group = TableGroup(
            3, (PoolUse(vector_pool, 4), PoolUse(shingle_pool, 2))
        )
        assert group.hashes_per_table == 6
        assert group.budget == 18

    def test_or_scheme_budget(self, vector_pool, shingle_pool):
        scheme = HashingScheme(
            [
                TableGroup(2, (PoolUse(vector_pool, 3),)),
                TableGroup(4, (PoolUse(shingle_pool, 5),)),
            ]
        )
        assert scheme.budget == 6 + 20
        assert scheme.table_count == 6


class TestKeysAndCollisions:
    def test_key_count_matches_tables(self, vector_pool):
        scheme = HashingScheme([TableGroup(7, (PoolUse(vector_pool, 3),))])
        rids = np.arange(9)
        tables = list(scheme.iter_table_keys(rids))
        assert len(tables) == 7
        assert all(len(keys) == 9 for keys in tables)

    def test_identical_records_share_all_buckets(self):
        store, _ = make_vector_store(cluster_sizes=(2,), n_noise=0, scale=0.0)
        pool = SignaturePool(RandomHyperplaneFamily(store, "vec", seed=1))
        scheme = HashingScheme([TableGroup(6, (PoolUse(pool, 4),))])
        for keys in scheme.iter_table_keys(np.array([0, 1])):
            assert keys[0] == keys[1]

    def test_collision_groups_match_key_equality(self, shingle_pool):
        scheme = HashingScheme([TableGroup(8, (PoolUse(shingle_pool, 1),))])
        rids = np.arange(20)
        keys_by_table = list(scheme.iter_table_keys(rids))
        groups_by_table = list(scheme.iter_table_collisions(rids))
        assert len(keys_by_table) == len(groups_by_table)
        for keys, groups in zip(keys_by_table, groups_by_table):
            expected: dict = {}
            for pos, key in enumerate(keys):
                expected.setdefault(key, []).append(pos)
            expected_groups = {
                frozenset(v) for v in expected.values() if len(v) >= 2
            }
            got_groups = {frozenset(g.tolist()) for g in groups}
            assert got_groups == expected_groups

    def test_collision_groups_have_no_singletons(self, vector_pool):
        scheme = HashingScheme([TableGroup(4, (PoolUse(vector_pool, 2),))])
        for groups in scheme.iter_table_collisions(np.arange(30)):
            assert all(len(g) >= 2 for g in groups)

    def test_multi_pool_keys_concatenate(self, vector_pool, shingle_pool):
        """AND construction: records match a bucket only if BOTH pools'
        slices agree."""
        group = TableGroup(3, (PoolUse(vector_pool, 2), PoolUse(shingle_pool, 2)))
        scheme = HashingScheme([group])
        rids = np.arange(12)
        and_keys = list(scheme.iter_table_keys(rids))
        only_vec = list(
            HashingScheme(
                [TableGroup(3, (PoolUse(vector_pool, 2),))]
            ).iter_table_keys(rids)
        )
        for table_and, table_vec in zip(and_keys, only_vec):
            for i in range(len(rids)):
                for j in range(len(rids)):
                    if table_and[i] == table_and[j]:
                        assert table_vec[i] == table_vec[j]

    def test_incremental_reuse_across_schemes(self, vector_pool):
        """A bigger scheme over the same pool recomputes nothing."""
        small = HashingScheme([TableGroup(4, (PoolUse(vector_pool, 3),))])
        list(small.iter_table_keys(np.arange(10)))
        computed = vector_pool.hashes_computed
        big = HashingScheme([TableGroup(8, (PoolUse(vector_pool, 3),))])
        list(big.iter_table_keys(np.arange(10)))
        assert vector_pool.hashes_computed == computed + 10 * 12
