"""Tests for hash families and the incremental signature pool."""

import numpy as np
import pytest

from repro.lsh.families import SignaturePool
from repro.lsh.hyperplanes import RandomHyperplaneFamily
from repro.lsh.minhash import MinHashFamily
from tests.conftest import make_shingle_store, make_vector_store


@pytest.fixture(scope="module")
def hyper_family():
    store, _ = make_vector_store(seed=5)
    return RandomHyperplaneFamily(store, "vec", seed=1)


@pytest.fixture(scope="module")
def min_family():
    store, _ = make_shingle_store(seed=5)
    return MinHashFamily(store, "shingles", seed=1)


class TestDeterminism:
    def test_hyperplane_columns_stable(self, hyper_family):
        rids = np.arange(10)
        first = hyper_family.compute(rids, 0, 32)
        again = hyper_family.compute(rids, 0, 32)
        assert np.array_equal(first, again)

    def test_hyperplane_extension_preserves_prefix(self, hyper_family):
        rids = np.arange(10)
        small = hyper_family.compute(rids, 0, 16)
        large = hyper_family.compute(rids, 0, 48)
        assert np.array_equal(large[:, :16], small)

    def test_minhash_columns_stable(self, min_family):
        rids = np.arange(8)
        first = min_family.compute(rids, 0, 20)
        again = min_family.compute(rids, 0, 20)
        assert np.array_equal(first, again)

    def test_minhash_partial_range(self, min_family):
        rids = np.arange(8)
        full = min_family.compute(rids, 0, 30)
        tail = min_family.compute(rids, 10, 30)
        assert np.array_equal(full[:, 10:], tail)

    def test_same_seed_same_family(self):
        store, _ = make_vector_store(seed=7)
        f1 = RandomHyperplaneFamily(store, "vec", seed=42)
        f2 = RandomHyperplaneFamily(store, "vec", seed=42)
        rids = np.arange(5)
        assert np.array_equal(f1.compute(rids, 0, 8), f2.compute(rids, 0, 8))

    def test_different_seed_different_family(self):
        store, _ = make_vector_store(seed=7)
        f1 = RandomHyperplaneFamily(store, "vec", seed=1)
        f2 = RandomHyperplaneFamily(store, "vec", seed=2)
        rids = np.arange(20)
        assert not np.array_equal(
            f1.compute(rids, 0, 32), f2.compute(rids, 0, 32)
        )


class TestSignaturePool:
    def _pool(self):
        store, _ = make_vector_store(seed=3)
        return SignaturePool(RandomHyperplaneFamily(store, "vec", seed=3))

    def test_initially_empty(self):
        pool = self._pool()
        assert pool.capacity == 0
        assert pool.hashes_computed == 0
        assert pool.filled(0) == 0

    def test_signatures_shape(self):
        pool = self._pool()
        sig = pool.signatures(np.arange(6), 12)
        assert sig.shape == (6, 12)

    def test_counter_counts_new_hashes_only(self):
        pool = self._pool()
        pool.signatures(np.arange(6), 12)
        assert pool.hashes_computed == 72
        pool.signatures(np.arange(6), 12)
        assert pool.hashes_computed == 72  # cached, nothing new
        pool.signatures(np.arange(6), 20)
        assert pool.hashes_computed == 72 + 6 * 8

    def test_incremental_extension_is_consistent(self):
        pool = self._pool()
        small = pool.signatures(np.arange(4), 8).copy()
        large = pool.signatures(np.arange(4), 24)
        assert np.array_equal(large[:, :8], small)

    def test_mixed_fill_levels(self):
        """Records arriving at different fill levels must batch
        correctly (the adaptive algorithm creates exactly this)."""
        pool = self._pool()
        pool.signatures(np.array([0, 1]), 10)
        pool.signatures(np.array([2, 3]), 4)
        mixed = pool.signatures(np.array([0, 1, 2, 3]), 16)
        fresh_pool = self._pool()
        fresh = fresh_pool.signatures(np.array([0, 1, 2, 3]), 16)
        assert np.array_equal(mixed, fresh)

    def test_subset_requests_leave_others_cold(self):
        pool = self._pool()
        pool.signatures(np.array([5]), 64)
        assert pool.filled(5) == 64
        assert pool.filled(6) == 0
