"""Tests for b-bit minhashing (Li & König, the paper's [22])."""

import numpy as np
import pytest

from repro.distance import JaccardDistance
from repro.errors import ConfigurationError
from repro.lsh.minhash import MinHashFamily
from repro.records import RecordStore, Schema
from repro.core.config import AdaptiveConfig


def store_with_jaccard(sim: float, base: int = 150):
    overlap = int(round(2 * base * sim / (1 + sim)))
    a = list(range(base))
    b = list(range(base - overlap, 2 * base - overlap))
    return RecordStore(Schema.single_shingles(), {"shingles": [a, b]})


class TestFamily:
    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    def test_collision_rate_matches_theory(self, bits):
        sim = 0.5
        store = store_with_jaccard(sim)
        family = MinHashFamily(store, "shingles", seed=bits, bits=bits)
        sig = family.compute(np.array([0, 1]), 0, 8000)
        rate = float((sig[0] == sig[1]).mean())
        expected = sim + (1 - sim) * 2.0**-bits
        assert rate == pytest.approx(expected, abs=0.03)

    def test_values_fit_in_b_bits(self):
        store = store_with_jaccard(0.5)
        family = MinHashFamily(store, "shingles", seed=0, bits=3)
        sig = family.compute(np.array([0, 1]), 0, 200)
        assert sig.max() < 8

    def test_invalid_bits(self):
        store = store_with_jaccard(0.5)
        with pytest.raises(ConfigurationError):
            MinHashFamily(store, "shingles", bits=0)
        with pytest.raises(ConfigurationError):
            MinHashFamily(store, "shingles", bits=40)

    def test_collision_prob_curve(self):
        store = store_with_jaccard(0.5)
        family = MinHashFamily(store, "shingles", bits=2)
        x = np.array([0.0, 0.5, 1.0])
        assert np.allclose(family.collision_prob(x), [1.0, 0.625, 0.25])


class TestDistanceIntegration:
    def test_jaccard_distance_carries_bits(self):
        dist = JaccardDistance("shingles", minhash_bits=4)
        assert float(dist.collision_prob(1.0)) == pytest.approx(2.0**-4)
        store = store_with_jaccard(0.5)
        family = dist.make_family(store, seed=0)
        assert family.bits == 4

    def test_design_compensates_for_flat_curve(self):
        """With b-bit signatures the collision floor is 2^-b, so the
        designer must use more hashes per table to stay selective."""
        from repro.distance import ThresholdRule
        from repro.lsh.design import build_design_context, design_scheme

        store = store_with_jaccard(0.5, base=40)
        plain = ThresholdRule(JaccardDistance("shingles"), 0.6)
        bbit = ThresholdRule(JaccardDistance("shingles", minhash_bits=1), 0.6)
        w_plain = design_scheme(
            build_design_context(store, plain, seed=0), 640
        ).groups[0].ws[0]
        w_bbit = design_scheme(
            build_design_context(store, bbit, seed=0), 640
        ).groups[0].ws[0]
        assert w_bbit >= w_plain

    def test_end_to_end_with_bbit_rule(self, tiny_spotsigs):
        """adaLSH still matches Pairs when hashing is 4-bit."""
        from dataclasses import replace

        from repro.baselines import PairsBaseline
        from repro.core import AdaptiveLSH
        from repro.distance import ThresholdRule

        rule = ThresholdRule(
            JaccardDistance("signatures", minhash_bits=4), 0.6
        )
        ds = replace(tiny_spotsigs, rule=rule)
        ada = AdaptiveLSH(ds.store, ds.rule, config=AdaptiveConfig(seed=1, cost_model="analytic")).run(3)
        pairs = PairsBaseline(ds.store, ds.rule).run(3)
        assert [c.size for c in ada.clusters] == [c.size for c in pairs.clusters]
