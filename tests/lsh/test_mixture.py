"""Tests for the weighted-average mixture family (Definition 7,
Theorem 3: collision probability equals 1 - weighted distance)."""

import numpy as np
import pytest

from repro.distance import JaccardDistance
from repro.lsh.minhash import MinHashFamily
from repro.lsh.mixture import WeightedMixtureFamily
from repro.errors import ConfigurationError
from repro.records import FieldKind, FieldSpec, RecordStore, Schema

SCHEMA = Schema(
    (
        FieldSpec("f1", FieldKind.SHINGLES),
        FieldSpec("f2", FieldKind.SHINGLES),
    )
)


def make_store(j1: float, j2: float, base: int = 120):
    """Two records whose fields have Jaccard similarities j1 and j2."""

    def pair(j, offset):
        overlap = int(round(2 * base * j / (1 + j)))
        a = list(range(offset, offset + base))
        b = list(range(offset + base - overlap, offset + 2 * base - overlap))
        return a, b

    a1, b1 = pair(j1, 0)
    a2, b2 = pair(j2, 10_000)
    return RecordStore(SCHEMA, {"f1": [a1, b1], "f2": [a2, b2]})


def mixture_for(store, weights, seed=0):
    fams = [
        MinHashFamily(store, "f1", seed=seed + 1),
        MinHashFamily(store, "f2", seed=seed + 2),
    ]
    return WeightedMixtureFamily(store, fams, weights, seed=seed)


class TestTheorem3:
    @pytest.mark.parametrize(
        "j1,j2,weights",
        [
            (0.8, 0.2, [0.5, 0.5]),
            (0.6, 0.6, [0.3, 0.7]),
            (1.0, 0.0, [0.25, 0.75]),
        ],
    )
    def test_collision_rate_is_weighted_similarity(self, j1, j2, weights):
        store = make_store(j1, j2)
        d1 = JaccardDistance("f1").distance(store, 0, 1)
        d2 = JaccardDistance("f2").distance(store, 0, 1)
        expected = 1 - (weights[0] * d1 + weights[1] * d2)
        mixture = mixture_for(store, weights, seed=17)
        sig = mixture.compute(np.array([0, 1]), 0, 5000)
        rate = float((sig[0] == sig[1]).mean())
        assert rate == pytest.approx(expected, abs=0.04)


class TestMechanics:
    def test_assignment_roughly_follows_weights(self):
        store = make_store(0.5, 0.5)
        mixture = mixture_for(store, [0.2, 0.8], seed=3)
        mixture._ensure_assignment(4000)
        frac = float((mixture._assignment[:4000] == 0).mean())
        assert frac == pytest.approx(0.2, abs=0.03)

    def test_columns_deterministic(self):
        store = make_store(0.5, 0.3)
        mixture = mixture_for(store, [0.5, 0.5], seed=5)
        first = mixture.compute(np.array([0, 1]), 0, 64)
        again = mixture.compute(np.array([0, 1]), 0, 64)
        assert np.array_equal(first, again)

    def test_range_consistency(self):
        store = make_store(0.5, 0.3)
        mixture = mixture_for(store, [0.5, 0.5], seed=5)
        full = mixture.compute(np.array([0, 1]), 0, 80)
        tail = mixture.compute(np.array([0, 1]), 48, 80)
        assert np.array_equal(full[:, 48:], tail)

    def test_needs_families(self):
        store = make_store(0.5, 0.5)
        with pytest.raises(ConfigurationError):
            WeightedMixtureFamily(store, [], [], seed=0)

    def test_weight_count_checked(self):
        store = make_store(0.5, 0.5)
        fam = MinHashFamily(store, "f1", seed=0)
        with pytest.raises(ConfigurationError):
            WeightedMixtureFamily(store, [fam], [0.5, 0.5], seed=0)
