"""Tests for the §5.1 mixed scheme (z tables of w hashes plus one
remainder table of w' fresh hashes) and the PoolUse column offsets
that keep the remainder table independent."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.lsh.design import design_group
from repro.lsh.families import SignaturePool
from repro.lsh.hyperplanes import RandomHyperplaneFamily
from repro.lsh.probability import (
    collision_prob_curve,
    mixed_scheme_objective,
    mixed_scheme_prob,
)
from repro.lsh.scheme import HashingScheme, PoolUse, TableGroup
from tests.conftest import make_vector_store
from tests.lsh.test_design import FakeComponent, linear_p


class TestMixedProbability:
    def test_reduces_to_pure_when_w_rem_huge(self):
        """A remainder table of astronomically many hashes never
        collides, so the mixed curve equals the pure curve."""
        x = np.linspace(0.01, 0.99, 20)
        pure = collision_prob_curve(linear_p, 4, 8, x)
        mixed = mixed_scheme_prob(linear_p, 4, 8, 4000, x)
        assert np.allclose(mixed, pure, atol=1e-9)

    def test_remainder_adds_collisions(self):
        x = np.linspace(0.0, 1.0, 30)
        pure = collision_prob_curve(linear_p, 4, 8, x)
        mixed = mixed_scheme_prob(linear_p, 4, 8, 2, x)
        assert np.all(mixed >= pure - 1e-12)

    def test_small_remainder_raises_objective(self):
        """A w'=1 table collides on almost everything, so the mixed
        objective is much larger — the optimizer must reject it."""
        from repro.lsh.probability import scheme_objective

        pure = scheme_objective(linear_p, 30, 70)
        mixed = mixed_scheme_objective(linear_p, 30, 70, 1)
        assert mixed > 2 * pure


class TestDesignWithRemainder:
    def test_tiny_remainder_rejected(self):
        # budget 810 = 8*101 + 2: the leftover-2 table would destroy
        # selectivity; the optimizer must not keep it.
        design = design_group([FakeComponent(15 / 180.0)], budget=810)
        if design.remainder_w:
            assert design.remainder_w > 4

    def test_budget_never_exceeded(self):
        for budget in (20, 130, 811, 2100):
            design = design_group([FakeComponent(0.2)], budget=budget)
            assert design.budget <= budget

    def test_remainder_tables_materialize(self):
        store, _ = make_vector_store(seed=8)
        pool = SignaturePool(RandomHyperplaneFamily(store, "vec", seed=8))
        comp = FakeComponent(0.1)
        comp.pool = pool
        design = design_group([comp], budget=100)
        groups = design.to_table_groups()
        if design.remainder_w:
            assert groups[-1].z == 1
            assert groups[-1].uses[0].w == design.remainder_w
            assert groups[-1].uses[0].offset == design.z * design.ws[0]
        else:
            assert len(groups) == 1


class TestPoolOffsets:
    def _pool(self):
        store, _ = make_vector_store(seed=9)
        return SignaturePool(RandomHyperplaneFamily(store, "vec", seed=9))

    def test_negative_offset_rejected(self):
        with pytest.raises(ConfigurationError):
            PoolUse(self._pool(), 2, offset=-1)

    def test_offset_tables_use_fresh_columns(self):
        """Two single-table groups over the same pool with different
        offsets must produce different bucket keys (different hash
        functions), while identical offsets reproduce identical keys."""
        pool = self._pool()
        rids = np.arange(30)
        base = HashingScheme([TableGroup(1, (PoolUse(pool, 4, offset=0),))])
        shifted = HashingScheme([TableGroup(1, (PoolUse(pool, 4, offset=4),))])
        again = HashingScheme([TableGroup(1, (PoolUse(pool, 4, offset=0),))])
        keys_base = next(iter(base.iter_table_keys(rids)))
        keys_shift = next(iter(shifted.iter_table_keys(rids)))
        keys_again = next(iter(again.iter_table_keys(rids)))
        assert keys_base == keys_again
        assert keys_base != keys_shift

    def test_offset_matches_manual_slice(self):
        pool = self._pool()
        rids = np.arange(10)
        scheme = HashingScheme([TableGroup(2, (PoolUse(pool, 3, offset=5),))])
        blocks = list(scheme._iter_table_blocks(rids))
        sigs = pool.signatures(rids, 5 + 2 * 3)
        assert np.array_equal(blocks[0], sigs[:, 5:8])
        assert np.array_equal(blocks[1], sigs[:, 8:11])
