"""Statistical tests: random hyperplanes collide with probability
1 - theta/180 (paper Example 2 / Example 6)."""

import numpy as np
import pytest

from repro.lsh.hyperplanes import RandomHyperplaneFamily
from repro.records import RecordStore, Schema


def make_pair_at_angle(degrees: float, dim: int = 8, seed: int = 0):
    rng = np.random.default_rng(seed)
    v = rng.normal(size=dim)
    v /= np.linalg.norm(v)
    u = rng.normal(size=dim)
    u -= (u @ v) * v
    u /= np.linalg.norm(u)
    theta = np.deg2rad(degrees)
    w = np.cos(theta) * v + np.sin(theta) * u
    return RecordStore(Schema.single_vector(), {"vec": np.vstack([v, w])})


@pytest.mark.parametrize("degrees", [10, 30, 60, 90, 150])
def test_collision_rate_matches_angle(degrees):
    store = make_pair_at_angle(degrees, seed=degrees)
    family = RandomHyperplaneFamily(store, "vec", seed=degrees)
    n = 6000
    sig = family.compute(np.array([0, 1]), 0, n)
    rate = float((sig[0] == sig[1]).mean())
    expected = 1 - degrees / 180.0
    # Binomial std at n=6000 is <= 0.0065; 4 sigma tolerance.
    assert rate == pytest.approx(expected, abs=0.03)


def test_identical_vectors_always_collide():
    store = RecordStore(
        Schema.single_vector(), {"vec": np.array([[1.0, 2.0], [2.0, 4.0]])}
    )
    family = RandomHyperplaneFamily(store, "vec", seed=0)
    sig = family.compute(np.array([0, 1]), 0, 500)
    assert np.array_equal(sig[0], sig[1])


def test_opposite_vectors_never_collide():
    store = RecordStore(
        Schema.single_vector(), {"vec": np.array([[1.0, 0.0], [-1.0, 0.0]])}
    )
    family = RandomHyperplaneFamily(store, "vec", seed=0)
    sig = family.compute(np.array([0, 1]), 0, 500)
    assert not np.any(sig[0] == sig[1])


def test_values_are_binary():
    store = make_pair_at_angle(45)
    family = RandomHyperplaneFamily(store, "vec", seed=3)
    sig = family.compute(np.array([0, 1]), 0, 64)
    assert set(np.unique(sig)) <= {0, 1}
