"""Tests for the deterministic work partitioner."""

import pytest

from repro.parallel import chunk_spans


class TestChunkSpans:
    def test_covers_range_without_gaps(self):
        spans = chunk_spans(100, 3)
        assert spans[0][0] == 0
        assert spans[-1][1] == 100
        for (_, prev_hi), (lo, _) in zip(spans, spans[1:]):
            assert prev_hi == lo

    @pytest.mark.parametrize("n_items", [1, 2, 7, 64, 1000])
    @pytest.mark.parametrize("n_chunks", [1, 2, 3, 8])
    def test_all_items_assigned_exactly_once(self, n_items, n_chunks):
        spans = chunk_spans(n_items, n_chunks)
        covered = [i for lo, hi in spans for i in range(lo, hi)]
        assert covered == list(range(n_items))

    def test_deterministic(self):
        assert chunk_spans(977, 5, 16) == chunk_spans(977, 5, 16)

    def test_min_chunk_limits_chunk_count(self):
        spans = chunk_spans(100, 8, min_chunk=40)
        assert len(spans) == 2
        assert all(hi - lo >= 40 for lo, hi in spans)

    def test_small_input_collapses_to_one_chunk(self):
        assert chunk_spans(10, 4, min_chunk=16) == [(0, 10)]

    def test_empty_input(self):
        assert chunk_spans(0, 4) == []

    def test_balanced_sizes(self):
        sizes = [hi - lo for lo, hi in chunk_spans(103, 4)]
        assert max(sizes) - min(sizes) <= 1
