"""Tests for the execution pool: n_jobs resolution, store transfer,
and bit-identical parallel signature computation."""

import os

import numpy as np
import pytest

from repro.distance import CosineDistance, EuclideanDistance, JaccardDistance
from repro.errors import ConfigurationError
from repro.parallel import (
    ExecutionPool,
    payload_from_store,
    resolve_n_jobs,
    store_from_payload,
)
from repro.parallel.pool import N_JOBS_ENV
from tests.conftest import make_shingle_store, make_vector_store


class TestResolveNJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(N_JOBS_ENV, raising=False)
        assert resolve_n_jobs(None) == 1

    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "8")
        assert resolve_n_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "4")
        assert resolve_n_jobs(None) == 4

    def test_negative_counts_from_cpu_pool(self):
        cpus = os.cpu_count() or 1
        assert resolve_n_jobs(-1) == cpus
        assert resolve_n_jobs(-cpus) == 1

    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_n_jobs(0)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "lots")
        with pytest.raises(ConfigurationError):
            resolve_n_jobs(None)


class TestStorePayload:
    def test_mixed_store_roundtrip(self):
        store, _ = make_vector_store(cluster_sizes=(6, 4), n_noise=5, seed=1)
        rebuilt = store_from_payload(payload_from_store(store))
        assert len(rebuilt) == len(store)
        assert np.array_equal(rebuilt.vectors("vec"), store.vectors("vec"))

    def test_shingle_store_roundtrip(self):
        store, _ = make_shingle_store(cluster_sizes=(5, 3), n_noise=4, seed=2)
        rebuilt = store_from_payload(payload_from_store(store))
        for a, b in zip(
            store.shingle_sets("shingles"), rebuilt.shingle_sets("shingles")
        ):
            assert np.array_equal(a, b)


def _forced_pool(store):
    """A 2-worker pool with every size threshold disabled."""
    return ExecutionPool(
        store,
        n_jobs=2,
        min_signature_work=0,
        min_signature_rows=1,
        min_pairwise_rows=2,
    )


def _family_cases():
    vec_store, _ = make_vector_store(
        cluster_sizes=(10, 8), n_noise=20, seed=5
    )
    shingle_store, _ = make_shingle_store(
        cluster_sizes=(8, 6), n_noise=15, seed=6
    )
    return [
        ("minhash", shingle_store, JaccardDistance("shingles")),
        ("minhash-4bit", shingle_store, JaccardDistance("shingles", minhash_bits=4)),
        ("hyperplane", vec_store, CosineDistance("vec")),
        ("pstable", vec_store, EuclideanDistance("vec")),
    ]


class TestSignatureParity:
    @pytest.mark.parametrize(
        "name,store,distance",
        _family_cases(),
        ids=[case[0] for case in _family_cases()],
    )
    def test_parallel_matches_serial_bit_for_bit(self, name, store, distance):
        serial_family = distance.make_family(store, seed=9)
        parallel_family = distance.make_family(store, seed=9)
        rids = store.rids
        expected = serial_family.compute(rids, 0, 48)
        with _forced_pool(store) as pool:
            pool.register_family(parallel_family)
            got = pool.compute_signatures(parallel_family, rids, 0, 48)
            assert got is not None
            assert got.dtype == expected.dtype
            assert np.array_equal(got, expected)
            # Incremental extension reuses the same parameter draws.
            extended = pool.compute_signatures(parallel_family, rids, 48, 80)
            assert extended is not None
            assert np.array_equal(
                extended, serial_family.compute(rids, 48, 80)
            )
            assert pool.parallel_calls == 2
            assert pool.tasks_dispatched >= 4

    def test_serial_pool_returns_none(self):
        store, _ = make_vector_store(cluster_sizes=(4,), n_noise=4, seed=0)
        family = CosineDistance("vec").make_family(store, seed=1)
        pool = ExecutionPool(store, n_jobs=1)
        assert pool.compute_signatures(family, store.rids, 0, 16) is None
        assert pool.stats()["serial_calls"] == 1

    def test_below_threshold_returns_none(self):
        store, _ = make_vector_store(cluster_sizes=(4,), n_noise=4, seed=0)
        family = CosineDistance("vec").make_family(store, seed=1)
        with ExecutionPool(store, n_jobs=2) as pool:
            assert pool.compute_signatures(family, store.rids, 0, 16) is None
            assert pool.stats()["serial_calls"] == 1
            assert pool.stats()["parallel_calls"] == 0
