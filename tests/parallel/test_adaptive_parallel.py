"""End-to-end determinism: AdaptiveLSH with workers and/or the
signature key cache returns exactly the serial result."""

import numpy as np

from repro.core import AdaptiveLSH
from repro.distance import JaccardDistance, ThresholdRule
from tests.conftest import make_shingle_store
from repro.core.config import AdaptiveConfig


def _clusters(result):
    return [tuple(int(r) for r in c.rids) for c in result.clusters]


def _setup():
    store, _ = make_shingle_store(
        cluster_sizes=(30, 20, 12, 8, 5), n_noise=60, seed=9
    )
    return store, ThresholdRule(JaccardDistance("shingles"), 0.4)


def test_n_jobs_run_is_bit_identical():
    store, rule = _setup()
    serial = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=2, cost_model="analytic")).run(5)
    with AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=2, cost_model="analytic", n_jobs=2)) as method:
        # Drop the size thresholds so this test-size store actually
        # dispatches instead of falling back to serial.
        assert method._exec_pool is not None
        method._exec_pool.min_signature_work = 0
        method._exec_pool.min_signature_rows = 1
        method._exec_pool.min_pairwise_rows = 2
        parallel = method.run(5)
    stats = parallel.info["parallel"]
    assert stats["n_jobs"] == 2
    assert stats["tasks_dispatched"] > 0
    assert _clusters(serial) == _clusters(parallel)
    assert serial.counters.pairs_compared == parallel.counters.pairs_compared
    assert serial.counters.table_inserts == parallel.counters.table_inserts


def test_key_cache_hits_on_rerun_and_preserves_output():
    store, rule = _setup()
    method = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=2, cost_model="analytic"))
    first = method.run(5)
    assert first.info["signature_cache"]["misses"] > 0
    second = method.run(5)
    assert second.info["signature_cache"]["hits"] > 0
    assert _clusters(first) == _clusters(second)

    uncached = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=2, cost_model="analytic", signature_cache=False)).run(5)
    assert "signature_cache" not in uncached.info
    assert _clusters(first) == _clusters(uncached)


def test_env_knob_reaches_adaptive(monkeypatch):
    from repro.parallel.pool import N_JOBS_ENV

    store, rule = _setup()
    monkeypatch.setenv(N_JOBS_ENV, "2")
    method = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=2, cost_model="analytic"))
    try:
        assert method.n_jobs == 2
        assert method._exec_pool is not None
    finally:
        method.close()
    monkeypatch.delenv(N_JOBS_ENV)
    serial = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=2, cost_model="analytic"))
    assert serial.n_jobs == 1
    assert serial._exec_pool is None


def test_incremental_refine_reuses_cache():
    store, rule = _setup()
    method = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=2, cost_model="analytic"))
    result = method.run(5)
    refined = method.refine(
        [(c.rids, int(np.int64(1))) for c in result.clusters], 3
    )
    assert refined.info["signature_cache"]["hits"] > 0
    assert refined.output_size > 0
