"""Property test (issue satellite): the rowwise, blocked, and
parallel-blocked pairwise strategies produce identical connected
components on random stores and rules across seeds — and the two
blocked variants are bit-identical, cluster order included."""

import numpy as np
import pytest

from repro.core import pairwise_fn
from repro.core.pairwise_fn import PairwiseComputation
from repro.distance import CosineDistance, JaccardDistance, ThresholdRule
from repro.parallel import ExecutionPool
from tests.conftest import make_shingle_store, make_vector_store


def _random_case(kind, seed):
    rng = np.random.default_rng(seed)
    sizes = tuple(int(s) for s in rng.integers(3, 20, size=rng.integers(2, 5)))
    noise = int(rng.integers(10, 40))
    if kind == "vector":
        store, _ = make_vector_store(
            cluster_sizes=sizes, n_noise=noise, seed=seed
        )
        threshold = float(rng.uniform(0.03, 0.12))
        rule = ThresholdRule(CosineDistance("vec"), threshold)
    else:
        store, _ = make_shingle_store(
            cluster_sizes=sizes, n_noise=noise, seed=seed
        )
        threshold = float(rng.uniform(0.3, 0.6))
        rule = ThresholdRule(JaccardDistance("shingles"), threshold)
    return store, rule


def _components(clusters):
    return {frozenset(int(r) for r in c) for c in clusters}


@pytest.mark.parametrize("kind", ["vector", "shingles"])
@pytest.mark.parametrize("seed", range(4))
def test_all_strategies_agree(kind, seed, monkeypatch):
    store, rule = _random_case(kind, seed)
    rids = store.rids

    rowwise = PairwiseComputation(store, rule, strategy="rowwise").apply(rids)
    blocked = PairwiseComputation(store, rule, strategy="blocked").apply(rids)

    # Shrink the row-block height so even these modest stores span
    # several blocks and genuinely exercise the fan-out.
    monkeypatch.setattr(pairwise_fn, "BLOCK", 32)
    with ExecutionPool(store, n_jobs=2, min_pairwise_rows=2) as pool:
        parallel = PairwiseComputation(
            store, rule, strategy="blocked", pool=pool
        ).apply(rids)
        assert pool.parallel_calls >= 1, "parallel path was not taken"

    assert _components(rowwise) == _components(blocked)
    assert _components(blocked) == _components(parallel)
    # The parallel replay preserves the serial union sequence exactly,
    # so with the same (patched) block size the serial blocked pass
    # must agree bit-for-bit, order included.
    blocked_small = PairwiseComputation(store, rule, strategy="blocked").apply(
        rids
    )
    assert len(blocked_small) == len(parallel)
    for a, b in zip(blocked_small, parallel):
        assert np.array_equal(a, b)


def test_auto_picks_rowwise_then_blocked():
    """Regression (issue satellite): the measured ROWWISE_LIMIT keeps
    mid-size clusters on the rowwise path and large sets on blocked.
    The old ``ROWWISE_LIMIT = 3`` sent nearly every cluster Adaptive
    LSH hands to ``P`` down the blocked path."""
    store, rule = _random_case("vector", 0)
    pc = PairwiseComputation(store, rule, strategy="auto")
    assert pairwise_fn.ROWWISE_LIMIT >= 8, "mid-size clusters must stay rowwise"
    assert pc.choose_strategy(8) == "rowwise"
    assert pc.choose_strategy(pairwise_fn.ROWWISE_LIMIT) == "rowwise"
    assert pc.choose_strategy(pairwise_fn.ROWWISE_LIMIT + 1) == "blocked"
    assert pc.choose_strategy(5000) == "blocked"
