"""The documented public surface imports and works end-to-end."""

import numpy as np

import repro


def test_all_exports_exist():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__.count(".") == 2


def test_quickstart_flow(tiny_spotsigs):
    """The README quickstart, verbatim in spirit."""
    result = repro.AdaptiveLSH(tiny_spotsigs.store, tiny_spotsigs.rule, config=repro.AdaptiveConfig(seed=0)).run(k=3)
    assert result.k == 3
    sizes = [c.size for c in result.clusters]
    assert sizes == sorted(sizes, reverse=True)


def test_adaptive_filter_helper(tiny_spotsigs):
    result = repro.adaptive_filter(tiny_spotsigs.store, tiny_spotsigs.rule, 2, config=repro.AdaptiveConfig(seed=0, cost_model="analytic"))
    assert result.k == 2


def test_metrics_helpers():
    p, r, f1 = repro.precision_recall_f1([1, 2], [2, 3])
    assert 0 <= f1 <= 1
    map_score, mar_score = repro.map_mar([[1, 2]], [[1, 2]], 1)
    assert map_score == mar_score == 1.0
