"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig5" in out and "fig22" in out


def test_run_analytic_figure(capsys):
    assert main(["run", "fig7"]) == 0
    out = capsys.readouterr().out
    assert "### fig7" in out


def test_run_unknown_figure(capsys):
    assert main(["run", "fig99"]) == 2


def test_report_writes_file(tmp_path, capsys):
    out_file = tmp_path / "report.md"
    code = main(
        ["report", "--out", str(out_file), "--figures", "fig5", "fig7"]
    )
    assert code == 0
    body = out_file.read_text()
    assert "# Experiment report" in body
    assert "### fig5" in body and "### fig7" in body


def test_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "filtered in" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
