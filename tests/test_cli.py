"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig5" in out and "fig22" in out


def test_run_analytic_figure(capsys):
    assert main(["run", "fig7"]) == 0
    out = capsys.readouterr().out
    assert "### fig7" in out


def test_run_unknown_figure(capsys):
    assert main(["run", "fig99"]) == 2


def test_report_writes_file(tmp_path, capsys):
    out_file = tmp_path / "report.md"
    code = main(
        ["report", "--out", str(out_file), "--figures", "fig5", "fig7"]
    )
    assert code == 0
    body = out_file.read_text()
    assert "# Experiment report" in body
    assert "### fig5" in body and "### fig7" in body


def test_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "filtered in" in out


def test_demo_metrics_out_and_summary(tmp_path, capsys):
    from repro.obs import RunReport

    path = tmp_path / "metrics.json"
    assert main(["--metrics-out", str(path), "demo"]) == 0
    out = capsys.readouterr().out
    assert "wrote metrics to" in out

    report = RunReport.load(path)
    assert report.method == "adaLSH"
    assert report.rounds  # per-round events present
    assert report.residuals  # cost-model prediction vs actual
    assert report.spans  # span tree present
    assert report.counters["hashes_computed"] > 0

    assert main(["metrics", str(path), "--rounds", "3"]) == 0
    out = capsys.readouterr().out
    assert "run: adaLSH" in out
    assert "cost-model residuals" in out


def test_metrics_missing_file(tmp_path, capsys):
    assert main(["metrics", str(tmp_path / "nope.json")]) == 2


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_snapshot_then_query(tmp_path, capsys):
    snap = tmp_path / "index.npz"
    code = main(
        [
            "snapshot", "--out", str(snap),
            "--generate", "querylog", "--records", "300", "--warm-k", "3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "wrote snapshot of 300 records" in out
    assert snap.exists()

    code = main(
        [
            "query", "--snapshot", str(snap),
            "--generate", "querylog", "--records", "300", "-k", "3", "5",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "k=3:" in out and "k=5:" in out
    assert "warm_start=True" in out


def test_query_metrics_out(tmp_path, capsys):
    from repro.obs import RunReport

    snap = tmp_path / "index.npz"
    assert main(
        ["snapshot", "--out", str(snap), "--generate", "querylog",
         "--records", "300"]
    ) == 0
    metrics = tmp_path / "metrics.json"
    assert main(
        ["--metrics-out", str(metrics), "query", "--snapshot", str(snap),
         "--generate", "querylog", "--records", "300", "-k", "4"]
    ) == 0
    capsys.readouterr()
    report = RunReport.load(metrics)
    assert report.serving["warm_start"] is True
    assert "adaLSH.prepare" not in [s["name"] for s in report.spans]


def test_snapshot_requires_dataset_source(tmp_path):
    with pytest.raises(SystemExit, match="--data PATH or --generate"):
        main(["snapshot", "--out", str(tmp_path / "x.npz")])


def test_loadreport_renders_and_checks(tmp_path, capsys):
    good = {
        "offered": {"requests": 10, "queries": 9, "writes": 1},
        "completed": 10,
        "throughput_rps": 12.5,
        "latency_ms": {"p50": 4.0, "p95": 9.0, "p99": 11.0},
        "shed_rate": 0.0,
        "error_rate": 0.0,
        "coalesced": 2,
        "generations_seen": [0],
        "identity": {"checked": 3, "matched": 3},
        "gates": {"identity_ok": True, "shed_rate_ok": True,
                  "error_rate_ok": True, "pass": True},
    }
    path = tmp_path / "BENCH_serve_load.json"
    path.write_text(json.dumps(good))
    assert main(["loadreport", str(path)]) == 0
    out = capsys.readouterr().out
    assert "| latency p50 / p95 / p99 (ms) | 4.00 / 9.00 / 11.00 |" in out
    assert "| gates | PASS |" in out

    good["gates"]["pass"] = False
    good["gates"]["identity_ok"] = False
    path.write_text(json.dumps(good))
    # Without --check the render always succeeds; with it, failed gates
    # propagate into the exit code.
    assert main(["loadreport", str(path)]) == 0
    assert main(["loadreport", str(path), "--check"]) == 1
    assert main(["loadreport", str(tmp_path / "missing.json")]) == 2


def test_loadtest_smoke(tmp_path, capsys):
    out_path = tmp_path / "load.json"
    code = main(
        [
            "loadtest", "--generate", "querylog", "--records", "120",
            "--workers", "inline", "--shards", "2",
            "--qps", "25", "--duration", "1", "-k", "2", "4",
            "--out", str(out_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "| gates | PASS |" in out
    summary = json.loads(out_path.read_text())
    assert summary["identity"]["ok"] is True
    assert summary["gates"]["pass"] is True
