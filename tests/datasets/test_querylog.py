"""Tests for the query-log generator (the short-set stress regime)."""

import numpy as np
import pytest

from repro.baselines import PairsBaseline
from repro.core import AdaptiveLSH
from repro.datasets import generate_querylog
from repro.datasets.querylog import querylog_rule
from repro.core.config import AdaptiveConfig


@pytest.fixture(scope="module")
def querylog():
    return generate_querylog(n_records=600, seed=5)


class TestStructure:
    def test_record_count(self, querylog):
        assert len(querylog) == 600

    def test_sets_are_short(self, querylog):
        sizes = querylog.store.set_sizes("tokens")
        assert sizes.max() <= 25
        assert np.median(sizes) <= 14

    def test_top1_fraction(self, querylog):
        assert querylog.top_k_fraction(1) == pytest.approx(0.04, abs=0.01)

    def test_background_singletons_exist(self, querylog):
        assert (querylog.entity_sizes() == 1).sum() > 100

    def test_deterministic(self):
        a = generate_querylog(n_records=200, seed=1)
        b = generate_querylog(n_records=200, seed=1)
        assert np.array_equal(a.labels, b.labels)

    def test_rule_threshold(self):
        assert querylog_rule(0.5).threshold == pytest.approx(0.5)


class TestSimilarityRegime:
    def test_intra_entity_pairs_mostly_match(self, querylog):
        top = querylog.ground_truth_clusters()[0]
        matches = querylog.rule.pairwise_match(querylog.store, top)
        rate = (matches.sum() - top.size) / (top.size * (top.size - 1))
        assert rate > 0.3  # transitivity closes the rest

    def test_noise_floor_higher_than_spotsigs(self, querylog, tiny_spotsigs):
        """The documented stress property: random query pairs are much
        closer (in Jaccard) than random article pairs."""
        from repro.distance import JaccardDistance

        rng = np.random.default_rng(0)

        def mean_random_sim(ds, field):
            rids = rng.choice(len(ds), size=60, replace=False)
            dist = JaccardDistance(field).pairwise(ds.store, rids)
            off = dist[np.triu_indices(60, k=1)]
            return 1.0 - float(np.mean(off))

        assert mean_random_sim(querylog, "tokens") > 3 * mean_random_sim(
            tiny_spotsigs, "signatures"
        )


class TestEndToEnd:
    def test_adaptive_matches_pairs(self, querylog):
        ada = AdaptiveLSH(querylog.store, querylog.rule, config=AdaptiveConfig(seed=3, cost_model="analytic")).run(3)
        pairs = PairsBaseline(querylog.store, querylog.rule).run(3)
        assert [c.size for c in ada.clusters] == [c.size for c in pairs.clusters]

    def test_reasonable_accuracy(self, querylog):
        from repro.eval.metrics import precision_recall_f1

        result = PairsBaseline(querylog.store, querylog.rule).run(3)
        _p, _r, f1 = precision_recall_f1(
            result.output_rids, querylog.top_k_rids(3)
        )
        assert f1 > 0.7
