"""Tests for the Dataset container and the paper's extension sampler."""

import numpy as np
import pytest

from repro.datasets import extend_dataset
from repro.datasets.base import Dataset
from repro.errors import DatasetError
from tests.conftest import make_shingle_store
from repro.distance import JaccardDistance, ThresholdRule


@pytest.fixture(scope="module")
def dataset():
    store, labels = make_shingle_store(seed=10)
    # Noise records get unique entity labels.
    labels = labels.copy()
    next_label = labels.max() + 1
    for i in np.nonzero(labels == -1)[0]:
        labels[i] = next_label
        next_label += 1
    return Dataset(
        name="toy",
        store=store,
        labels=labels,
        rule=ThresholdRule(JaccardDistance("shingles"), 0.6),
    )


class TestGroundTruth:
    def test_clusters_partition_records(self, dataset):
        clusters = dataset.ground_truth_clusters()
        merged = np.sort(np.concatenate(clusters))
        assert np.array_equal(merged, np.arange(len(dataset)))

    def test_clusters_sorted_by_size(self, dataset):
        sizes = [c.size for c in dataset.ground_truth_clusters()]
        assert sizes == sorted(sizes, reverse=True)

    def test_entity_sizes(self, dataset):
        assert dataset.entity_sizes()[:3].tolist() == [20, 12, 6]

    def test_top_k_rids(self, dataset):
        top1 = dataset.top_k_rids(1)
        assert top1.size == 20
        top2 = dataset.top_k_rids(2)
        assert top2.size == 32

    def test_top_k_fraction(self, dataset):
        assert dataset.top_k_fraction(1) == pytest.approx(20 / len(dataset))

    def test_label_count_validated(self, dataset):
        with pytest.raises(DatasetError):
            Dataset("bad", dataset.store, dataset.labels[:-1], dataset.rule)


class TestExtension:
    def test_factor_one_is_identity(self, dataset):
        assert extend_dataset(dataset, 1) is dataset

    def test_extension_size(self, dataset):
        ext = extend_dataset(dataset, 3, seed=0)
        assert len(ext) == 3 * len(dataset)

    def test_new_records_are_copies(self, dataset):
        """Each appended record duplicates an existing record of its
        entity (paper §6.3)."""
        ext = extend_dataset(dataset, 2, seed=0)
        n = len(dataset)
        originals = dataset.store.shingle_sets("shingles")
        for rid in range(n, len(ext)):
            new_set = ext.store.shingle_sets("shingles")[rid]
            entity = ext.labels[rid]
            members = np.nonzero(dataset.labels == entity)[0]
            assert any(
                np.array_equal(new_set, originals[int(m)]) for m in members
            )

    def test_extension_preserves_original_prefix(self, dataset):
        ext = extend_dataset(dataset, 2, seed=0)
        n = len(dataset)
        assert np.array_equal(ext.labels[:n], dataset.labels)

    def test_extension_deterministic(self, dataset):
        a = extend_dataset(dataset, 2, seed=5)
        b = extend_dataset(dataset, 2, seed=5)
        assert np.array_equal(a.labels, b.labels)

    def test_invalid_factor(self, dataset):
        with pytest.raises(DatasetError):
            extend_dataset(dataset, 0)

    def test_name_and_info(self, dataset):
        ext = extend_dataset(dataset, 4, seed=0)
        assert ext.name == "toy4x"
        assert ext.info["factor"] == 4
