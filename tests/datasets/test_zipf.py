"""Tests for Zipfian entity-size construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.zipfsizes import zipf_sizes, zipf_sizes_for_total
from repro.errors import DatasetError


class TestZipfSizes:
    def test_anchored_top1(self):
        sizes = zipf_sizes(10, 1.0, largest=100)
        assert sizes[0] == 100
        assert sizes[1] == 50

    def test_descending(self):
        sizes = zipf_sizes(50, 1.2, largest=500)
        assert np.all(np.diff(sizes) <= 0)

    def test_min_size_floor(self):
        sizes = zipf_sizes(100, 2.0, largest=10, min_size=1)
        assert sizes.min() == 1

    def test_paper_exponent_values(self):
        """§7.4.2: top-1 1700 at s=1.2 gives top-2 ~800, top-3 ~500."""
        sizes = zipf_sizes(500, 1.2, largest=1700)
        assert sizes[1] == pytest.approx(800, abs=80)
        assert sizes[2] == pytest.approx(500, abs=60)

    def test_invalid_params(self):
        with pytest.raises(DatasetError):
            zipf_sizes(0, 1.0, largest=10)
        with pytest.raises(DatasetError):
            zipf_sizes(5, -1.0, largest=10)
        with pytest.raises(DatasetError):
            zipf_sizes(5, 1.0, largest=0)


class TestZipfSizesForTotal:
    def test_exact_total(self):
        sizes = zipf_sizes_for_total(20, 1.3, total=500)
        assert sizes.sum() == 500

    def test_descending(self):
        sizes = zipf_sizes_for_total(20, 1.3, total=500)
        assert np.all(np.diff(sizes) <= 0)

    def test_total_too_small(self):
        with pytest.raises(DatasetError):
            zipf_sizes_for_total(10, 1.0, total=5)

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1, 40),
        exponent=st.floats(0.3, 2.5),
        extra=st.integers(0, 400),
    )
    def test_property_exact_total_and_floor(self, n, exponent, extra):
        total = n + extra
        sizes = zipf_sizes_for_total(n, exponent, total)
        assert sizes.sum() == total
        assert sizes.min() >= 1
        assert len(sizes) == n
