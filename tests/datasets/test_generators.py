"""Tests for the three paper-dataset generators: structural invariants
and the similarity regimes the paper's experiments depend on."""

import numpy as np
import pytest

from repro.datasets import (
    generate_cora,
    generate_popular_images,
    generate_spotsigs,
)
from repro.datasets.popularimages import images_rule
from repro.datasets.spotsigs import spotsigs_rule
from repro.distance import JaccardDistance
from repro.distance.cosine import CosineDistance
from repro.errors import DatasetError


class TestSpotSigs:
    def test_record_count(self, tiny_spotsigs):
        assert len(tiny_spotsigs) == 400

    def test_top1_fraction_near_five_percent(self, tiny_spotsigs):
        assert tiny_spotsigs.top_k_fraction(1) == pytest.approx(0.05, abs=0.01)

    def test_sizes_zipf_shaped(self, tiny_spotsigs):
        sizes = tiny_spotsigs.entity_sizes()
        assert sizes[0] > sizes[1] > sizes[3]

    def test_intra_entity_pairs_mostly_match(self, tiny_spotsigs):
        ds = tiny_spotsigs
        top = ds.ground_truth_clusters()[0]
        matches = ds.rule.pairwise_match(ds.store, top)
        rate = (matches.sum() - top.size) / (top.size * (top.size - 1))
        assert rate > 0.6

    def test_cross_entity_pairs_rarely_match(self, tiny_spotsigs):
        ds = tiny_spotsigs
        clusters = ds.ground_truth_clusters()
        a, b = clusters[0][:10], clusters[1][:10]
        cross = ds.rule.match_block(ds.store, a, b)
        assert cross.mean() < 0.02

    def test_threshold_variants(self):
        rule = spotsigs_rule(0.5)
        assert rule.threshold == pytest.approx(0.5)

    def test_deterministic(self):
        a = generate_spotsigs(n_records=200, seed=3)
        b = generate_spotsigs(n_records=200, seed=3)
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = generate_spotsigs(n_records=200, seed=3)
        b = generate_spotsigs(n_records=200, seed=4)
        assert not np.array_equal(a.labels, b.labels)


class TestCora:
    def test_record_count(self, tiny_cora):
        assert len(tiny_cora) == 400

    def test_has_three_fields(self, tiny_cora):
        assert set(tiny_cora.store.schema.names) == {"title", "authors", "rest"}

    def test_rule_is_combined_and(self, tiny_cora):
        from repro.distance import AndRule, WeightedAverageRule

        assert isinstance(tiny_cora.rule, AndRule)
        assert isinstance(tiny_cora.rule.children[0], WeightedAverageRule)

    def test_intra_entity_title_similarity_high(self, tiny_cora):
        ds = tiny_cora
        top = ds.ground_truth_clusters()[0][:15]
        dist = JaccardDistance("title").pairwise(ds.store, top)
        off_diag = dist[np.triu_indices(top.size, k=1)]
        assert np.median(off_diag) < 0.3

    def test_most_intra_entity_pairs_match(self, tiny_cora):
        ds = tiny_cora
        top = ds.ground_truth_clusters()[0]
        matches = ds.rule.pairwise_match(ds.store, top)
        rate = (matches.sum() - top.size) / (top.size * (top.size - 1))
        assert rate > 0.5

    def test_raw_strings_available(self, tiny_cora):
        raw = tiny_cora.info["raw"]
        assert len(raw) == len(tiny_cora)
        assert {"title", "authors", "rest"} <= set(raw[0])

    def test_deterministic(self):
        a = generate_cora(n_records=150, seed=9)
        b = generate_cora(n_records=150, seed=9)
        assert np.array_equal(a.labels, b.labels)


class TestPopularImages:
    def test_record_count(self, tiny_images):
        assert len(tiny_images) == 600

    def test_top1_size_respected(self, tiny_images):
        assert tiny_images.entity_sizes()[0] == 40

    def test_histograms_are_unit_nonnegative(self, tiny_images):
        vectors = tiny_images.store.vectors("histogram")
        assert np.all(vectors >= 0)
        norms = np.linalg.norm(vectors, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-9)

    def test_copies_cluster_near_original(self, tiny_images):
        ds = tiny_images
        top = ds.ground_truth_clusters()[0][:20]
        dist = CosineDistance("histogram").pairwise(ds.store, top)
        degrees = dist[np.triu_indices(top.size, k=1)] * 180.0
        # Perturbations are capped at 6 degrees from the base, so any
        # pair is within 12 degrees; most are far closer.
        assert degrees.max() < 12.0
        assert np.median(degrees) < 4.0

    def test_threshold_sensitivity(self, tiny_images):
        """Figure 17's lever: a 5-degree rule matches more intra-entity
        pairs than a 2-degree rule."""
        ds = tiny_images
        top = ds.ground_truth_clusters()[0]
        loose = images_rule(5.0).pairwise_match(ds.store, top).mean()
        strict = images_rule(2.0).pairwise_match(ds.store, top).mean()
        assert loose > strict

    def test_fillers_are_singletons(self, tiny_images):
        sizes = tiny_images.entity_sizes()
        assert (sizes == 1).sum() > 0

    def test_zipf_exponent_changes_top_sizes(self):
        flat = generate_popular_images(
            n_records=400, n_popular=20, zipf_exponent=1.05, top1_size=30, seed=1
        )
        steep = generate_popular_images(
            n_records=400, n_popular=20, zipf_exponent=1.2, top1_size=60, seed=1
        )
        assert steep.entity_sizes()[0] > flat.entity_sizes()[0]

    def test_popular_overflow_rejected(self):
        with pytest.raises(DatasetError):
            generate_popular_images(
                n_records=100, n_popular=50, top1_size=90, seed=0
            )

    def test_deterministic(self):
        a = generate_popular_images(n_records=300, n_popular=10, top1_size=25, seed=2)
        b = generate_popular_images(n_records=300, n_popular=10, top1_size=25, seed=2)
        assert np.allclose(
            a.store.vectors("histogram"), b.store.vectors("histogram")
        )


class TestText:
    def test_vocabulary_size_and_uniqueness(self):
        from repro.datasets.text import make_vocabulary

        vocab = make_vocabulary(200, seed=1)
        assert len(vocab) == 200
        assert len(set(vocab)) == 200

    def test_token_ids_stable(self):
        from repro.datasets.text import token_ids

        a = token_ids(["alpha", "beta"])
        b = token_ids(["beta", "alpha"])
        assert np.array_equal(a, b)

    def test_corrupt_tokens_drop(self):
        from repro.datasets.text import corrupt_tokens

        rng = np.random.default_rng(0)
        tokens = [f"t{i}" for i in range(200)]
        out = corrupt_tokens(tokens, rng, drop_p=0.5)
        assert 40 < len(out) < 160

    def test_corrupt_tokens_never_empty(self):
        from repro.datasets.text import corrupt_tokens

        rng = np.random.default_rng(0)
        out = corrupt_tokens(["only"], rng, drop_p=1.0)
        assert out == ["only"]


class TestStreamCora:
    """PR-8 streaming generator: chunked Cora with per-chunk shuffles,
    deterministic under a fixed seed, feeding the on-disk StoreWriter."""

    def test_deterministic(self):
        from repro.datasets import stream_cora

        def collect():
            out = []
            for columns, labels in stream_cora(250, chunk_records=64, seed=4):
                out.append((columns, labels))
            return out

        first, second = collect(), collect()
        assert len(first) == len(second) == 4  # ceil(250 / 64)
        for (cols_a, labels_a), (cols_b, labels_b) in zip(first, second):
            assert np.array_equal(labels_a, labels_b)
            assert list(cols_a) == list(cols_b)
            for name in cols_a:
                assert len(cols_a[name]) == len(cols_b[name])
                for row_a, row_b in zip(cols_a[name], cols_b[name]):
                    assert np.array_equal(row_a, row_b)

    def test_chunk_sizes_cover_exactly(self):
        from repro.datasets import stream_cora

        sizes = [
            labels.size for _, labels in stream_cora(250, chunk_records=64, seed=0)
        ]
        assert sizes == [64, 64, 64, 58]

    def test_rejects_bad_chunk_records(self):
        from repro.datasets import stream_cora

        with pytest.raises(DatasetError):
            list(stream_cora(10, chunk_records=0))

    def test_entity_sizes_match_one_shot(self):
        """The streamed labels partition records into the same entity
        size profile as the one-shot generator (order aside)."""
        from repro.datasets import generate_cora, stream_cora

        streamed = np.concatenate(
            [labels for _, labels in stream_cora(300, chunk_records=75, seed=9)]
        )
        one_shot = generate_cora(300, seed=9).labels
        assert streamed.size == one_shot.size == 300
        assert sorted(np.bincount(streamed)[np.bincount(streamed) > 0]) == sorted(
            np.bincount(one_shot)[np.bincount(one_shot) > 0]
        )
