"""Unit tests for the record model (schemas, stores, batch accessors)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchemaError
from repro.records import FieldKind, FieldSpec, RecordStore, Schema


class TestSchema:
    def test_single_vector_helper(self):
        schema = Schema.single_vector("v")
        assert schema.names == ("v",)
        assert schema.kind_of("v") is FieldKind.VECTOR

    def test_single_shingles_helper(self):
        schema = Schema.single_shingles("s")
        assert schema.kind_of("s") is FieldKind.SHINGLES

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(
                (
                    FieldSpec("a", FieldKind.VECTOR),
                    FieldSpec("a", FieldKind.SHINGLES),
                )
            )

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema(())

    def test_empty_field_name_rejected(self):
        with pytest.raises(SchemaError):
            FieldSpec("", FieldKind.VECTOR)

    def test_unknown_field_lookup(self):
        schema = Schema.single_vector()
        with pytest.raises(SchemaError):
            schema.kind_of("nope")

    def test_iteration_and_len(self):
        schema = Schema(
            (
                FieldSpec("a", FieldKind.VECTOR),
                FieldSpec("b", FieldKind.SHINGLES),
            )
        )
        assert len(schema) == 2
        assert [f.name for f in schema] == ["a", "b"]


class TestRecordStore:
    def _store(self):
        schema = Schema(
            (
                FieldSpec("vec", FieldKind.VECTOR),
                FieldSpec("toks", FieldKind.SHINGLES),
            )
        )
        return RecordStore(
            schema,
            {
                "vec": np.arange(12, dtype=float).reshape(4, 3),
                "toks": [[1, 2], [2, 3, 4], [], [9]],
            },
        )

    def test_len(self):
        assert len(self._store()) == 4

    def test_getitem_returns_record_view(self):
        store = self._store()
        record = store[1]
        assert record.rid == 1
        assert np.array_equal(record["vec"], [3.0, 4.0, 5.0])
        assert np.array_equal(record["toks"], [2, 3, 4])

    def test_getitem_out_of_range(self):
        with pytest.raises(IndexError):
            self._store()[4]

    def test_iteration_covers_all_rows(self):
        assert [r.rid for r in self._store()] == [0, 1, 2, 3]

    def test_missing_column_rejected(self):
        with pytest.raises(SchemaError):
            RecordStore(Schema.single_vector(), {})

    def test_extra_column_rejected(self):
        with pytest.raises(SchemaError):
            RecordStore(
                Schema.single_vector(),
                {"vec": np.zeros((2, 2)), "other": np.zeros((2, 2))},
            )

    def test_inconsistent_row_counts_rejected(self):
        schema = Schema(
            (
                FieldSpec("a", FieldKind.VECTOR),
                FieldSpec("b", FieldKind.SHINGLES),
            )
        )
        with pytest.raises(SchemaError):
            RecordStore(schema, {"a": np.zeros((3, 2)), "b": [[1], [2]]})

    def test_vector_must_be_2d(self):
        with pytest.raises(SchemaError):
            RecordStore(Schema.single_vector(), {"vec": np.zeros(5)})

    def test_negative_shingle_ids_rejected(self):
        with pytest.raises(SchemaError):
            RecordStore(Schema.single_shingles(), {"shingles": [[-1, 2]]})

    def test_shingles_deduplicated_and_sorted(self):
        store = RecordStore(
            Schema.single_shingles(), {"shingles": [[5, 1, 5, 3, 1]]}
        )
        assert np.array_equal(store.shingle_sets("shingles")[0], [1, 3, 5])

    def test_vectors_accessor_rejects_shingle_field(self):
        store = self._store()
        with pytest.raises(SchemaError):
            store.vectors("toks")

    def test_shingles_accessor_rejects_vector_field(self):
        store = self._store()
        with pytest.raises(SchemaError):
            store.shingle_sets("vec")

    def test_set_sizes(self):
        store = self._store()
        assert np.array_equal(store.set_sizes("toks"), [2, 3, 0, 1])

    def test_csr_row_sums_match_set_sizes(self):
        store = self._store()
        csr = store.shingle_csr("toks")
        assert np.array_equal(
            np.asarray(csr.sum(axis=1)).ravel(), [2, 3, 0, 1]
        )

    def test_csr_width_is_distinct_shingle_count(self):
        store = RecordStore(
            Schema.single_shingles(),
            {"shingles": [[10**9, 5], [5, 7]]},
        )
        assert store.shingle_csr("shingles").shape[1] == 3

    def test_csr_is_cached(self):
        store = self._store()
        assert store.shingle_csr("toks") is store.shingle_csr("toks")

    def test_take_reorders_rows(self):
        store = self._store()
        sub = store.take([2, 0])
        assert len(sub) == 2
        assert np.array_equal(sub.vectors("vec")[0], store.vectors("vec")[2])
        assert np.array_equal(
            sub.shingle_sets("toks")[1], store.shingle_sets("toks")[0]
        )

    def test_concat_appends_rows(self):
        store = self._store()
        both = store.concat(store.take([0]))
        assert len(both) == 5
        assert np.array_equal(both.vectors("vec")[4], store.vectors("vec")[0])

    def test_concat_schema_mismatch_rejected(self):
        store = self._store()
        other = RecordStore(Schema.single_vector(), {"vec": np.zeros((1, 3))})
        with pytest.raises(SchemaError):
            store.concat(other)

    def test_rids_are_contiguous(self):
        assert np.array_equal(self._store().rids, [0, 1, 2, 3])


class TestCopyPaths:
    """The PR-8 copy-path bugfixes: take/concat/slice_view go through
    the trusted constructor and share arrays instead of re-validating
    and re-copying every shingle set."""

    def _store(self, n=10):
        rng = np.random.default_rng(3)
        schema = Schema(
            (
                FieldSpec("vec", FieldKind.VECTOR),
                FieldSpec("toks", FieldKind.SHINGLES),
            )
        )
        return RecordStore(
            schema,
            {
                "vec": rng.normal(size=(n, 4)),
                "toks": [
                    sorted(set(rng.integers(0, 40, rng.integers(0, 6))))
                    for _ in range(n)
                ],
            },
        )

    def test_take_shares_shingle_values_on_contiguous_range(self):
        store = self._store()
        sub = store.take(np.arange(3, 8))
        assert np.shares_memory(
            sub.shingle_sets("toks").values, store.shingle_sets("toks").values
        )
        assert np.shares_memory(sub.vectors("vec"), store.vectors("vec"))

    def test_slice_view_is_zero_copy(self):
        store = self._store()
        view = store.slice_view(2, 7)
        assert len(view) == 5
        assert np.shares_memory(view.vectors("vec"), store.vectors("vec"))
        assert np.shares_memory(
            view.shingle_sets("toks").values,
            store.shingle_sets("toks").values,
        )
        for i in range(5):
            assert np.array_equal(
                view.shingle_sets("toks")[i], store.shingle_sets("toks")[i + 2]
            )

    def test_slice_view_bad_range_rejected(self):
        store = self._store()
        with pytest.raises(SchemaError):
            store.slice_view(5, 2)
        with pytest.raises(SchemaError):
            store.slice_view(0, 99)

    def test_take_gather_matches_python_reference(self):
        store = self._store()
        rids = np.asarray([7, 0, 7, 3])
        sub = store.take(rids)
        for out_row, rid in enumerate(rids):
            assert np.array_equal(
                sub.shingle_sets("toks")[out_row],
                store.shingle_sets("toks")[int(rid)],
            )

    def test_concat_equals_rebuild(self):
        store = self._store(6)
        other = store.take([4, 1])
        both = store.concat(other)
        assert len(both) == 8
        rebuilt = RecordStore(
            store.schema,
            {
                "vec": np.vstack([store.vectors("vec"), other.vectors("vec")]),
                "toks": list(store.shingle_sets("toks"))
                + list(other.shingle_sets("toks")),
            },
        )
        assert both.content_fingerprint() == rebuilt.content_fingerprint()

    def test_adopted_column_is_not_copied(self):
        offsets = np.asarray([0, 2, 2, 5], dtype=np.int64)
        values = np.asarray([1, 4, 0, 2, 9], dtype=np.int64)
        store = RecordStore(
            Schema.single_shingles("s"), {"s": (offsets, values)}
        )
        assert store.shingle_sets("s").values is values

    def test_invalid_adopted_column_rejected(self):
        offsets = np.asarray([0, 2], dtype=np.int64)
        values = np.asarray([4, 1], dtype=np.int64)  # not sorted
        with pytest.raises(SchemaError):
            RecordStore(Schema.single_shingles("s"), {"s": (offsets, values)})


class TestFingerprint:
    def _store(self):
        schema = Schema(
            (
                FieldSpec("vec", FieldKind.VECTOR),
                FieldSpec("toks", FieldKind.SHINGLES),
            )
        )
        return RecordStore(
            schema,
            {
                "vec": np.arange(24, dtype=float).reshape(8, 3) / 7.0,
                "toks": [
                    [1, 2],
                    [2, 3, 4],
                    [],
                    [9],
                    [0, 5, 6, 7],
                    [3],
                    [8, 10],
                    [2, 4, 6],
                ],
            },
        )

    def test_digest_pinned(self):
        """Regression pin: the chunked fingerprint must keep emitting
        exactly the digest of the original whole-matrix
        ``tobytes()`` implementation."""
        assert self._store().content_fingerprint() == (
            "6d393fd33011cd5b34f869c0e079b3cf609b03a37329a28e5ab86b4641ad8022"
        )
        assert self._store().content_fingerprint(limit=3) == (
            "e802e0435a47b82e66c89ebd3c954daf750e28882b1d58f18c6194788116d0e0"
        )

    def test_chunked_equals_one_shot_reference(self):
        """The digest is invariant to the chunk size — forcing many
        tiny chunks reproduces the one-shot stream byte for byte."""
        import hashlib

        store = self._store()

        def one_shot(limit=None):
            n = len(store) if limit is None else min(int(limit), len(store))
            digest = hashlib.sha256()
            digest.update(f"n={n}".encode())
            for spec in store.schema:
                digest.update(f"|{spec.name}:{spec.kind.value}".encode())
                if spec.kind is FieldKind.VECTOR:
                    mat = store.vectors(spec.name)[:n]
                    digest.update(
                        f":{mat.shape[1] if mat.ndim == 2 else 0}".encode()
                    )
                    digest.update(np.ascontiguousarray(mat).tobytes())
                else:
                    sets = store.shingle_sets(spec.name)
                    for i in range(n):
                        digest.update(np.int64(sets[i].size).tobytes())
                        digest.update(sets[i].tobytes())
            return digest.hexdigest()

        assert store.content_fingerprint() == one_shot()
        assert store.content_fingerprint(limit=5) == one_shot(5)
        original = RecordStore._FINGERPRINT_CHUNK_ROWS
        try:
            RecordStore._FINGERPRINT_CHUNK_ROWS = 2
            assert store.content_fingerprint() == one_shot()
            assert store.content_fingerprint(limit=5) == one_shot(5)
        finally:
            RecordStore._FINGERPRINT_CHUNK_ROWS = original

    def test_concat_prefix_property_still_holds(self):
        store = self._store()
        extended = store.concat(store.take([0, 3]))
        assert (
            extended.content_fingerprint(limit=len(store))
            == store.content_fingerprint()
        )


@settings(max_examples=50, deadline=None)
@given(
    sets=st.lists(
        st.lists(st.integers(min_value=0, max_value=200), max_size=20),
        min_size=1,
        max_size=20,
    )
)
def test_csr_roundtrips_set_membership(sets):
    """Property: the CSR incidence matrix preserves exact set contents
    modulo the compaction mapping (row sums = distinct element counts,
    pairwise intersections match set intersections)."""
    store = RecordStore(Schema.single_shingles(), {"shingles": sets})
    csr = store.shingle_csr("shingles")
    stored = store.shingle_sets("shingles")
    sums = np.asarray(csr.sum(axis=1)).ravel()
    for i, s in enumerate(sets):
        assert sums[i] == len(set(s))
    inter = (csr @ csr.T).toarray()
    for i in range(len(sets)):
        for j in range(len(sets)):
            assert inter[i, j] == len(
                set(stored[i].tolist()) & set(stored[j].tolist())
            )
