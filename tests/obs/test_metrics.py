"""Tests for the metrics registry (counters/gauges/histograms)."""

from repro.obs import MetricsRegistry
from repro.obs.metrics import NULL_INSTRUMENT


class TestCounters:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        reg.counter("pairs").inc()
        reg.counter("pairs").inc(41)
        assert reg.counter("pairs").value == 42

    def test_same_instance_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a") is not reg.counter("b")


class TestGauges:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        reg.gauge("cost_p").set(1.5)
        reg.gauge("cost_p").set(2.5)
        assert reg.gauge("cost_p").value == 2.5


class TestHistograms:
    def test_summary_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("seconds")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == 2.0
        assert h.min == 1.0
        assert h.max == 3.0

    def test_empty_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("empty")
        assert h.mean == 0.0
        assert h.to_value()["min"] is None


class TestSnapshot:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"]["count"] == 1

    def test_snapshot_sorted(self):
        reg = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            reg.counter(name).inc()
        assert list(reg.snapshot()["counters"]) == ["alpha", "mid", "zeta"]

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestDisabledRegistry:
    def test_returns_shared_null_instrument(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is NULL_INSTRUMENT
        assert reg.gauge("b") is NULL_INSTRUMENT
        assert reg.histogram("c") is NULL_INSTRUMENT

    def test_noop_operations_record_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("a").inc(100)
        reg.gauge("b").set(1)
        reg.histogram("c").observe(2.0)
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
