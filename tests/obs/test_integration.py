"""End-to-end observability: AdaptiveLSH with a RunObserver attached."""

import pytest

from repro.core import AdaptiveLSH
from repro.obs import DISABLED, RunObserver, RunReport
from repro.distance import CosineDistance, ThresholdRule
from tests.conftest import make_vector_store
from repro.core.config import AdaptiveConfig


@pytest.fixture(scope="module")
def observed_run():
    store, _ = make_vector_store(seed=21)
    rule = ThresholdRule(CosineDistance("vec"), 10 / 180.0)
    obs = RunObserver()
    method = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=1, cost_model="analytic"), observer=obs)
    result = method.run(3)
    return method, result, obs


class TestObservedRun:
    def test_one_event_per_round(self, observed_run):
        method, result, obs = observed_run
        assert len(obs.rounds) == result.counters.rounds

    def test_events_are_structured(self, observed_run):
        method, _, obs = observed_run
        for event in obs.rounds:
            assert event.wall_time >= 0.0
            assert event.predicted_cost >= 0.0
            assert event.jump == (event.action == "P")

    def test_trace_backcompat_view(self, observed_run):
        """AdaptiveLSH.trace still returns the legacy dict schema."""
        method, result, obs = observed_run
        assert len(method.trace) == result.counters.rounds
        for entry in method.trace:
            assert set(entry) == {
                "round", "action", "size", "from_level",
                "subclusters", "largest_out",
            }

    def test_last_report_built(self, observed_run):
        method, result, _ = observed_run
        report = method.last_report
        assert isinstance(report, RunReport)
        assert report.method == "adaLSH"
        assert report.k == 3
        assert report.counters["rounds"] == result.counters.rounds
        assert report.counters["hashes_computed"] == (
            result.counters.hashes_computed
        )
        assert report.residuals  # at least one action kind aggregated
        assert report.cost_model["level_costs"]

    def test_report_has_spans_and_pool_stats(self, observed_run):
        method, _, _ = observed_run
        report = method.last_report
        names = [span["name"] for span in report.spans]
        assert "adaLSH.run" in names
        run_span = report.spans[names.index("adaLSH.run")]
        assert any(c["name"] == "round" for c in run_span.get("children", []))
        assert report.hash_pools
        assert report.hash_pools[0]["hashes_computed"] > 0

    def test_report_json_round_trip(self, observed_run):
        method, _, _ = observed_run
        report = method.last_report
        assert RunReport.from_json(report.to_json()) == report

    def test_hash_and_pair_metrics_populated(self, observed_run):
        _, result, obs = observed_run
        snap = obs.metrics.snapshot()
        hash_counters = [
            name for name in snap["counters"] if name.startswith("hash.computed.")
        ]
        assert hash_counters
        if result.counters.pairs_compared:
            assert snap["counters"]["pairwise.pairs_compared"] == (
                result.counters.pairs_compared
            )


class TestTraceViaObserver:
    def test_observer_populates_trace_view(self):
        store, _ = make_vector_store(seed=22)
        rule = ThresholdRule(CosineDistance("vec"), 10 / 180.0)
        method = AdaptiveLSH(
            store,
            rule,
            config=AdaptiveConfig(seed=1, cost_model="analytic"),
            observer=RunObserver(),
        )
        result = method.run(2)
        assert method.obs is not DISABLED
        assert len(method.trace) == result.counters.rounds
        assert method.last_report is not None


class TestDisabledMode:
    def test_default_uses_shared_disabled_observer(self):
        store, _ = make_vector_store(seed=23)
        rule = ThresholdRule(CosineDistance("vec"), 10 / 180.0)
        method = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=1, cost_model="analytic"))
        method.run(2)
        assert method.obs is DISABLED
        assert method.trace == []
        assert method.last_report is None
        assert DISABLED.rounds == []
        assert DISABLED.tracer.roots == []
        assert DISABLED.metrics.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_disabled_observer_result_unchanged(self):
        """Observability must not alter the algorithm's output."""
        store, _ = make_vector_store(seed=24)
        rule = ThresholdRule(CosineDistance("vec"), 10 / 180.0)
        plain = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic")).run(3)
        observed = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=5, cost_model="analytic"), observer=RunObserver()).run(3)
        assert [c.size for c in plain.clusters] == [
            c.size for c in observed.clusters
        ]
        assert plain.counters.pairs_compared == observed.counters.pairs_compared
        assert plain.counters.hashes_computed == observed.counters.hashes_computed
