"""Tests for the Span/Tracer timing API."""

import time

from repro.obs import NULL_SPAN, Span, Tracer


class TestSpanNesting:
    def test_children_attach_to_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner-1"):
                pass
            with tracer.span("inner-2"):
                with tracer.span("leaf"):
                    pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner-1", "inner-2"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.roots] == ["a", "b"]

    def test_duration_measured(self):
        tracer = Tracer()
        with tracer.span("sleep"):
            time.sleep(0.01)
        assert tracer.roots[0].duration >= 0.009

    def test_parent_covers_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.005)
        outer = tracer.roots[0]
        assert outer.duration >= outer.children[0].duration

    def test_current_tracks_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("open") as span:
            assert tracer.current is span
        assert tracer.current is None

    def test_abandoned_inner_span_tolerated(self):
        """Generators abandoned mid-run exit spans out of order."""
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        # outer exits while inner is still open (e.g. a GeneratorExit).
        outer.__exit__(None, None, None)
        assert tracer.current is None
        assert [s.name for s in tracer.roots] == ["outer"]

    def test_attrs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", k=5) as span:
            span.set(rounds=7)
        assert tracer.roots[0].attrs == {"k": 5, "rounds": 7}

    def test_to_dict_round_trippable_shape(self):
        tracer = Tracer()
        with tracer.span("outer", k=1):
            with tracer.span("inner"):
                pass
        data = tracer.to_list()
        assert data[0]["name"] == "outer"
        assert data[0]["attrs"] == {"k": 1}
        assert data[0]["children"][0]["name"] == "inner"
        assert data[0]["seconds"] >= 0.0

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.roots == []


class TestDisabledTracer:
    def test_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("x") is NULL_SPAN
        assert tracer.span("y", attr=1) is NULL_SPAN

    def test_null_span_is_noop_context(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x") as span:
            span.set(foo=1)
        assert tracer.roots == []
        assert tracer.current is None

    def test_no_span_objects_allocated(self):
        """Disabled tracing must not build Span instances."""
        tracer = Tracer(enabled=False)
        for _ in range(100):
            with tracer.span("hot"):
                pass
        assert tracer.roots == []

    def test_null_span_is_not_a_span(self):
        assert not isinstance(NULL_SPAN, Span)
