"""Tests for RunReport serialization and residual aggregation."""

import json

from repro.obs import RoundEvent, RunObserver, RunReport, cost_residuals
from repro.obs.report import REPORT_VERSION


def make_events():
    return [
        RoundEvent(
            round=1, action="H2", size=100, from_level=1, subclusters=5,
            largest_out=40, wall_time=0.02, predicted_cost=0.01, jump=False,
        ),
        RoundEvent(
            round=2, action="P", size=40, from_level=2, subclusters=2,
            largest_out=30, wall_time=0.004, predicted_cost=0.008, jump=True,
        ),
        RoundEvent(
            round=3, action="H3", size=30, from_level=2, subclusters=1,
            largest_out=30, wall_time=0.01, predicted_cost=0.005, jump=False,
        ),
    ]


def make_report():
    obs = RunObserver()
    for event in make_events():
        obs.record_round(event)
    obs.counter("pairs").inc(10)
    obs.histogram("hash.seconds").observe(0.25)
    with obs.span("run", k=2):
        pass
    return obs.build_report(
        method="adaLSH",
        k=2,
        wall_time=0.034,
        counters={"rounds": 3, "hashes_computed": 1000},
        cost_model={"level_costs": [1.0, 2.0], "cost_p": 0.5},
        hash_pools=[{"name": "root", "family": "minhash[f]",
                     "hashes_computed": 1000, "seconds": 0.25}],
        info={"selection": "largest"},
    )


class TestResiduals:
    def test_aggregates_by_action_kind(self):
        res = cost_residuals(make_events())
        assert res["hash"]["rounds"] == 2
        assert res["pairwise"]["rounds"] == 1
        assert res["hash"]["predicted_total"] == 0.015
        assert res["hash"]["actual_total"] == 0.03

    def test_residual_and_ratio(self):
        res = cost_residuals(make_events())
        assert res["hash"]["residual"] == 0.03 - 0.015
        assert res["hash"]["ratio"] == 2.0
        assert res["pairwise"]["ratio"] == 0.5

    def test_zero_prediction_gives_null_ratio(self):
        events = [
            RoundEvent(round=1, action="H2", size=2, from_level=1,
                       subclusters=1, largest_out=2, wall_time=0.1,
                       predicted_cost=0.0)
        ]
        assert cost_residuals(events)["hash"]["ratio"] is None

    def test_empty(self):
        assert cost_residuals([]) == {}


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self):
        report = make_report()
        restored = RunReport.from_json(report.to_json())
        assert restored == report

    def test_json_is_plain_data(self):
        data = json.loads(make_report().to_json())
        assert data["method"] == "adaLSH"
        assert data["version"] == REPORT_VERSION
        assert data["rounds"][0]["action"] == "H2"
        assert data["metrics"]["counters"]["pairs"] == 10
        assert data["residuals"]["hash"]["rounds"] == 2
        assert data["spans"][0]["name"] == "run"

    def test_save_load(self, tmp_path):
        report = make_report()
        path = tmp_path / "metrics.json"
        report.save(path)
        assert RunReport.load(path) == report


class TestTable:
    def test_table_has_all_sections(self):
        table = make_report().to_table()
        assert "run: adaLSH" in table
        assert "cost-model residuals" in table
        assert "hash pools" in table
        assert "rounds (first" in table
        assert "histograms:" in table
        assert "H2" in table and "P" in table

    def test_table_truncates_rounds(self):
        report = make_report()
        table = report.to_table(max_rounds=1)
        assert "2 more rounds" in table


class TestLegacyDict:
    def test_legacy_schema(self):
        event = make_events()[0]
        assert event.legacy_dict() == {
            "round": 1,
            "action": "H2",
            "size": 100,
            "from_level": 1,
            "subclusters": 5,
            "largest_out": 40,
        }
