"""Shared fixtures: small clustered stores and tiny datasets.

Session-scoped where generation is deterministic and read-only, so the
whole suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import generate_cora, generate_popular_images, generate_spotsigs
from repro.distance import CosineDistance, JaccardDistance, ThresholdRule
from repro.records import RecordStore, Schema


def make_vector_store(
    cluster_sizes=(30, 18, 8), n_noise=40, dim=16, scale=0.01, seed=0
):
    """A vector store with planted clusters around random base vectors.

    Returns ``(store, labels)``; noise records get label -1.
    """
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(len(cluster_sizes), dim))
    rows, labels = [], []
    for i, size in enumerate(cluster_sizes):
        for _ in range(size):
            rows.append(base[i] + rng.normal(scale=scale, size=dim))
            labels.append(i)
    for _ in range(n_noise):
        rows.append(rng.normal(size=dim))
        labels.append(-1)
    store = RecordStore(Schema.single_vector(), {"vec": np.asarray(rows)})
    return store, np.asarray(labels)


def make_shingle_store(
    cluster_sizes=(20, 12, 6), n_noise=30, base_size=60, keep_p=0.8, seed=0
):
    """A shingle store with planted near-duplicate clusters."""
    rng = np.random.default_rng(seed)
    sets, labels = [], []
    next_id = 0
    for i, size in enumerate(cluster_sizes):
        base = np.arange(next_id, next_id + base_size)
        next_id += base_size
        for _ in range(size):
            kept = base[rng.random(base.size) < keep_p]
            sets.append(kept if kept.size else base[:1])
            labels.append(i)
    for _ in range(n_noise):
        sets.append(np.arange(next_id, next_id + base_size))
        next_id += base_size
        labels.append(-1)
    store = RecordStore(Schema.single_shingles(), {"shingles": sets})
    return store, np.asarray(labels)


@pytest.fixture(scope="session")
def vector_store():
    return make_vector_store()


@pytest.fixture(scope="session")
def shingle_store():
    return make_shingle_store()


@pytest.fixture(scope="session")
def vector_rule():
    return ThresholdRule(CosineDistance("vec"), 10.0 / 180.0)


@pytest.fixture(scope="session")
def shingle_rule():
    return ThresholdRule(JaccardDistance("shingles"), 0.6)


@pytest.fixture(scope="session")
def tiny_spotsigs():
    return generate_spotsigs(n_records=400, seed=11)


@pytest.fixture(scope="session")
def tiny_cora():
    return generate_cora(n_records=400, seed=12)


@pytest.fixture(scope="session")
def tiny_images():
    return generate_popular_images(
        n_records=600, n_popular=25, top1_size=40, seed=13
    )
