"""Tests for Jaccard distance over shingle sets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance import JaccardDistance
from repro.distance.jaccard import jaccard_distance
from repro.records import RecordStore, Schema


def store_from(sets):
    return RecordStore(Schema.single_shingles(), {"shingles": sets})


@pytest.fixture
def dist():
    return JaccardDistance("shingles")


class TestScalar:
    def test_identical_sets(self, dist):
        store = store_from([[1, 2, 3], [3, 2, 1]])
        assert dist.distance(store, 0, 1) == 0.0

    def test_disjoint_sets(self, dist):
        store = store_from([[1, 2], [3, 4]])
        assert dist.distance(store, 0, 1) == 1.0

    def test_half_overlap(self, dist):
        store = store_from([[1, 2], [2, 3]])
        assert dist.distance(store, 0, 1) == pytest.approx(1 - 1 / 3)

    def test_both_empty_sets_match(self, dist):
        store = store_from([[], []])
        assert dist.distance(store, 0, 1) == 0.0

    def test_one_empty_set(self, dist):
        store = store_from([[], [1]])
        assert dist.distance(store, 0, 1) == 1.0

    def test_subset(self, dist):
        store = store_from([[1, 2, 3, 4], [1, 2]])
        assert dist.distance(store, 0, 1) == pytest.approx(0.5)


class TestBatch:
    def _random_store(self, seed, n=10):
        rng = np.random.default_rng(seed)
        sets = [
            rng.choice(40, size=rng.integers(0, 15), replace=False)
            for _ in range(n)
        ]
        return store_from(sets)

    def test_pairwise_matches_scalar(self, dist):
        store = self._random_store(0)
        mat = dist.pairwise(store, np.arange(10))
        for i in range(10):
            for j in range(10):
                assert mat[i, j] == pytest.approx(
                    dist.distance(store, i, j), abs=1e-12
                )

    def test_one_to_many_matches_scalar(self, dist):
        store = self._random_store(1)
        rids = np.array([1, 3, 5])
        got = dist.one_to_many(store, 0, rids)
        expected = [dist.distance(store, 0, int(r)) for r in rids]
        assert np.allclose(got, expected)

    def test_block_matches_scalar(self, dist):
        store = self._random_store(2)
        a, b = np.array([0, 4]), np.array([1, 2, 3])
        got = dist.block(store, a, b)
        for i, ra in enumerate(a):
            for j, rb in enumerate(b):
                assert got[i, j] == pytest.approx(
                    dist.distance(store, int(ra), int(rb))
                )

    def test_pairwise_diagonal_zero(self, dist):
        store = self._random_store(3)
        mat = dist.pairwise(store, np.arange(10))
        assert np.allclose(np.diag(mat), 0.0)


class TestChunkedPairwise:
    """Regression tests (issue satellite): ``pairwise`` evaluates row
    chunks instead of densifying one m x m sparse product, without
    changing a single output bit."""

    def _store(self, n, seed=0):
        rng = np.random.default_rng(seed)
        sets = [
            rng.choice(2000, size=int(rng.integers(5, 30)), replace=False)
            for _ in range(n)
        ]
        return store_from(sets)

    def test_matches_block_exactly(self, dist):
        # Enough rows to span several chunks, plus a ragged tail.
        m = JaccardDistance._PAIRWISE_CHUNK * 2 + 37
        store = self._store(m)
        rids = np.arange(m, dtype=np.int64)
        expected = dist.block(store, rids, rids)
        np.fill_diagonal(expected, 0.0)
        # Intersection counts are exact integers, so the chunked floats
        # must equal the one-shot formula bit for bit, not approximately.
        assert np.array_equal(dist.pairwise(store, rids), expected)

    def test_chunk_size_is_invisible(self, dist, monkeypatch):
        store = self._store(131, seed=2)
        rids = np.arange(131, dtype=np.int64)
        reference = dist.pairwise(store, rids)
        monkeypatch.setattr(JaccardDistance, "_PAIRWISE_CHUNK", 7)
        assert np.array_equal(dist.pairwise(store, rids), reference)

    def test_peak_memory_stays_near_output_size(self, dist, monkeypatch):
        """The old ``csr @ csr.T`` densified transients several times
        the m x m output; chunked evaluation keeps the peak below twice
        the output, which a full densification cannot achieve."""
        import tracemalloc

        m = 1024
        store = self._store(m, seed=1)
        rids = np.arange(m, dtype=np.int64)
        monkeypatch.setattr(JaccardDistance, "_PAIRWISE_CHUNK", 64)
        dist.pairwise(store, rids[:8])  # warm the store's CSR cache
        output_bytes = m * m * 8
        tracemalloc.start()
        try:
            mat = dist.pairwise(store, rids)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert mat.shape == (m, m)
        assert peak < 2 * output_bytes


@settings(max_examples=60, deadline=None)
@given(
    a=st.frozensets(st.integers(0, 60), max_size=20),
    b=st.frozensets(st.integers(0, 60), max_size=20),
)
def test_jaccard_matches_set_arithmetic(a, b):
    arr_a = np.asarray(sorted(a), dtype=np.int64)
    arr_b = np.asarray(sorted(b), dtype=np.int64)
    got = jaccard_distance(arr_a, arr_b)
    if not a and not b:
        assert got == 0.0
    else:
        assert got == pytest.approx(1 - len(a & b) / len(a | b))


@settings(max_examples=30, deadline=None)
@given(
    sets=st.lists(
        st.frozensets(st.integers(0, 50), max_size=12), min_size=2, max_size=8
    )
)
def test_triangle_like_bounds(sets):
    """Jaccard distance is a metric: check symmetry and range on random
    set collections (full triangle inequality spot-checked pairwise)."""
    store = store_from([sorted(s) for s in sets])
    dist = JaccardDistance("shingles")
    n = len(sets)
    mat = dist.pairwise(store, np.arange(n))
    assert np.all(mat >= -1e-12) and np.all(mat <= 1 + 1e-12)
    assert np.allclose(mat, mat.T)
    for i in range(n):
        for j in range(n):
            for k in range(n):
                assert mat[i, j] <= mat[i, k] + mat[k, j] + 1e-9
