"""Tests for normalized Euclidean distance and the p-stable family."""

import numpy as np
import pytest

from repro.distance import EuclideanDistance, ThresholdRule
from repro.distance.euclidean import pstable_collision_prob
from repro.errors import ConfigurationError
from repro.lsh.pstable import PStableFamily
from repro.records import RecordStore, Schema
from repro.core.config import AdaptiveConfig


def store_from(rows):
    return RecordStore(Schema.single_vector(), {"vec": np.asarray(rows, float)})


@pytest.fixture
def dist():
    return EuclideanDistance("vec", scale=10.0, bucket_width=0.3)


class TestDistance:
    def test_identical(self, dist):
        store = store_from([[1, 2], [1, 2]])
        assert dist.distance(store, 0, 1) == 0.0

    def test_known_distance(self, dist):
        store = store_from([[0, 0], [3, 4]])
        assert dist.distance(store, 0, 1) == pytest.approx(0.5)  # 5 / 10

    def test_clamped_at_one(self, dist):
        store = store_from([[0, 0], [100, 0]])
        assert dist.distance(store, 0, 1) == 1.0

    def test_pairwise_matches_scalar(self, dist):
        store = store_from(np.random.default_rng(0).normal(size=(8, 4)))
        mat = dist.pairwise(store, np.arange(8))
        for i in range(8):
            for j in range(8):
                assert mat[i, j] == pytest.approx(
                    dist.distance(store, i, j), abs=1e-9
                )

    def test_one_to_many_matches_scalar(self, dist):
        store = store_from(np.random.default_rng(1).normal(size=(6, 3)))
        got = dist.one_to_many(store, 2, np.array([0, 1, 5]))
        expected = [dist.distance(store, 2, r) for r in (0, 1, 5)]
        assert np.allclose(got, expected)

    def test_block_matches_scalar(self, dist):
        store = store_from(np.random.default_rng(2).normal(size=(6, 3)))
        got = dist.block(store, np.array([0, 1]), np.array([2, 3, 4]))
        for i, a in enumerate((0, 1)):
            for j, b in enumerate((2, 3, 4)):
                assert got[i, j] == pytest.approx(dist.distance(store, a, b))

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            EuclideanDistance("vec", scale=0.0)
        with pytest.raises(ConfigurationError):
            EuclideanDistance("vec", bucket_width=-1.0)


class TestCollisionCurve:
    def test_boundary_values(self):
        assert pstable_collision_prob(0.0) == 1.0
        assert pstable_collision_prob(50.0) < 0.05

    def test_monotone_decreasing(self):
        c = np.linspace(0, 10, 100)
        p = pstable_collision_prob(c)
        assert np.all(np.diff(p) <= 1e-12)

    def test_half_width_reference(self):
        # At d = r the collision probability is a known constant ~0.37.
        assert float(pstable_collision_prob(1.0)) == pytest.approx(0.368, abs=0.01)


class TestFamily:
    def _pair_at(self, distance, dim=8, seed=0):
        rng = np.random.default_rng(seed)
        v = rng.normal(size=dim)
        direction = rng.normal(size=dim)
        direction /= np.linalg.norm(direction)
        return store_from([v, v + distance * direction])

    @pytest.mark.parametrize("d_over_r", [0.25, 1.0, 3.0])
    def test_empirical_collision_rate(self, d_over_r):
        r = 2.0
        store = self._pair_at(d_over_r * r, seed=int(d_over_r * 10))
        family = PStableFamily(store, "vec", bucket_width=r, seed=1)
        sig = family.compute(np.array([0, 1]), 0, 6000)
        rate = float((sig[0] == sig[1]).mean())
        expected = float(pstable_collision_prob(d_over_r))
        assert rate == pytest.approx(expected, abs=0.03)

    def test_prefix_stability(self):
        store = self._pair_at(1.0)
        f1 = PStableFamily(store, "vec", bucket_width=1.0, seed=5)
        f2 = PStableFamily(store, "vec", bucket_width=1.0, seed=5)
        chunked = np.hstack(
            [f1.compute(np.array([0, 1]), 0, 10), f1.compute(np.array([0, 1]), 10, 30)]
        )
        oneshot = f2.compute(np.array([0, 1]), 0, 30)
        assert np.array_equal(chunked, oneshot)

    def test_invalid_width(self):
        store = self._pair_at(1.0)
        with pytest.raises(ConfigurationError):
            PStableFamily(store, "vec", bucket_width=0.0)


class TestEndToEnd:
    def test_adaptive_lsh_on_euclidean_rule(self):
        """Planted Gaussian blobs are recovered through the full
        adaptive pipeline with a Euclidean rule."""
        from repro.baselines import PairsBaseline
        from repro.core import AdaptiveLSH

        rng = np.random.default_rng(3)
        rows, expected_sizes = [], [25, 12]
        for i, size in enumerate(expected_sizes):
            center = rng.normal(scale=10.0, size=6)
            for _ in range(size):
                rows.append(center + rng.normal(scale=0.05, size=6))
        for _ in range(60):
            rows.append(rng.normal(scale=10.0, size=6))
        store = store_from(rows)
        rule = ThresholdRule(
            EuclideanDistance("vec", scale=5.0, bucket_width=0.2), 0.1
        )
        ada = AdaptiveLSH(store, rule, config=AdaptiveConfig(seed=0, cost_model="analytic")).run(2)
        pairs = PairsBaseline(store, rule).run(2)
        assert [c.size for c in ada.clusters] == [c.size for c in pairs.clusters]
        assert [c.size for c in ada.clusters] == expected_sizes
