"""Tests for match-rule composition (Appendix C semantics)."""

import numpy as np
import pytest

from repro.distance import (
    AndRule,
    CosineDistance,
    JaccardDistance,
    OrRule,
    ThresholdRule,
    WeightedAverageRule,
)
from repro.errors import ConfigurationError, SchemaError
from repro.records import FieldKind, FieldSpec, RecordStore, Schema

SCHEMA = Schema(
    (
        FieldSpec("vec", FieldKind.VECTOR),
        FieldSpec("toks", FieldKind.SHINGLES),
        FieldSpec("toks2", FieldKind.SHINGLES),
    )
)


@pytest.fixture(scope="module")
def store():
    rng = np.random.default_rng(0)
    n = 14
    return RecordStore(
        SCHEMA,
        {
            "vec": rng.normal(size=(n, 6)),
            "toks": [
                rng.choice(30, size=rng.integers(1, 12), replace=False)
                for _ in range(n)
            ],
            "toks2": [
                rng.choice(30, size=rng.integers(1, 12), replace=False)
                for _ in range(n)
            ],
        },
    )


def brute_force(rule, store):
    n = len(store)
    out = np.zeros((n, n), dtype=bool)
    for i in range(n):
        for j in range(n):
            out[i, j] = rule.is_match(store, i, j)
    return out


RULES = {
    "threshold_vec": ThresholdRule(CosineDistance("vec"), 0.3),
    "threshold_toks": ThresholdRule(JaccardDistance("toks"), 0.7),
    "and": AndRule(
        [
            ThresholdRule(CosineDistance("vec"), 0.4),
            ThresholdRule(JaccardDistance("toks"), 0.8),
        ]
    ),
    "or": OrRule(
        [
            ThresholdRule(CosineDistance("vec"), 0.2),
            ThresholdRule(JaccardDistance("toks"), 0.5),
        ]
    ),
    "weighted": WeightedAverageRule(
        [JaccardDistance("toks"), JaccardDistance("toks2")],
        weights=[0.6, 0.4],
        threshold=0.75,
    ),
    "combined": AndRule(
        [
            WeightedAverageRule(
                [JaccardDistance("toks"), JaccardDistance("toks2")],
                weights=[0.5, 0.5],
                threshold=0.8,
            ),
            ThresholdRule(CosineDistance("vec"), 0.45),
        ]
    ),
}


@pytest.mark.parametrize("name", sorted(RULES))
class TestConsistency:
    """Every evaluation path must agree with scalar is_match."""

    def test_pairwise_match(self, store, name):
        rule = RULES[name]
        expected = brute_force(rule, store)
        got = rule.pairwise_match(store, np.arange(len(store)))
        assert np.array_equal(got, expected)

    def test_match_one_to_many(self, store, name):
        rule = RULES[name]
        rids = np.arange(len(store))
        for rid in (0, 5, 13):
            got = rule.match_one_to_many(store, rid, rids)
            expected = [rule.is_match(store, rid, int(r)) for r in rids]
            assert np.array_equal(got, expected)

    def test_match_block(self, store, name):
        rule = RULES[name]
        a = np.array([0, 3, 7])
        b = np.array([1, 2, 9, 11])
        got = rule.match_block(store, a, b)
        for i, ra in enumerate(a):
            for j, rb in enumerate(b):
                assert got[i, j] == rule.is_match(store, int(ra), int(rb))

    def test_symmetry(self, store, name):
        rule = RULES[name]
        mat = rule.pairwise_match(store, np.arange(len(store)))
        assert np.array_equal(mat, mat.T)

    def test_diagonal_true(self, store, name):
        rule = RULES[name]
        mat = rule.pairwise_match(store, np.arange(len(store)))
        assert mat.diagonal().all()


class TestComposition:
    def test_and_is_conjunction(self, store):
        children = [
            ThresholdRule(CosineDistance("vec"), 0.4),
            ThresholdRule(JaccardDistance("toks"), 0.8),
        ]
        rule = AndRule(children)
        rids = np.arange(len(store))
        expected = children[0].pairwise_match(store, rids) & children[
            1
        ].pairwise_match(store, rids)
        assert np.array_equal(rule.pairwise_match(store, rids), expected)

    def test_or_is_disjunction(self, store):
        children = [
            ThresholdRule(CosineDistance("vec"), 0.2),
            ThresholdRule(JaccardDistance("toks"), 0.5),
        ]
        rule = OrRule(children)
        rids = np.arange(len(store))
        expected = children[0].pairwise_match(store, rids) | children[
            1
        ].pairwise_match(store, rids)
        assert np.array_equal(rule.pairwise_match(store, rids), expected)

    def test_weighted_average_is_mixture(self, store):
        rule = RULES["weighted"]
        d1 = JaccardDistance("toks")
        d2 = JaccardDistance("toks2")
        combined = rule.combined_distance(store, 0, 1)
        expected = 0.6 * d1.distance(store, 0, 1) + 0.4 * d2.distance(store, 0, 1)
        assert combined == pytest.approx(expected)

    def test_field_distances_collects_leaves(self):
        rule = RULES["combined"]
        fields = [d.field for d in rule.field_distances()]
        assert fields == ["toks", "toks2", "vec"]


class TestValidation:
    def test_threshold_range(self):
        with pytest.raises(ConfigurationError):
            ThresholdRule(CosineDistance("vec"), 0.0)
        with pytest.raises(ConfigurationError):
            ThresholdRule(CosineDistance("vec"), 1.5)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            WeightedAverageRule(
                [JaccardDistance("toks"), JaccardDistance("toks2")],
                weights=[0.7, 0.7],
                threshold=0.5,
            )

    def test_weights_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            WeightedAverageRule(
                [JaccardDistance("toks"), JaccardDistance("toks2")],
                weights=[1.2, -0.2],
                threshold=0.5,
            )

    def test_weight_count_must_match(self):
        with pytest.raises(ConfigurationError):
            WeightedAverageRule(
                [JaccardDistance("toks")], weights=[0.5, 0.5], threshold=0.5
            )

    def test_composite_needs_two_children(self):
        with pytest.raises(ConfigurationError):
            AndRule([ThresholdRule(CosineDistance("vec"), 0.5)])

    def test_composite_children_type_checked(self):
        with pytest.raises(ConfigurationError):
            OrRule([ThresholdRule(CosineDistance("vec"), 0.5), "nope"])

    def test_validate_against_schema(self, store):
        rule = ThresholdRule(CosineDistance("missing"), 0.5)
        with pytest.raises(SchemaError):
            rule.validate(store)
