"""Tests for the normalized-angle cosine distance."""

import numpy as np
import pytest

from repro.distance import CosineDistance
from repro.distance.cosine import degrees_to_normalized, normalized_to_degrees
from repro.errors import SchemaError
from repro.records import RecordStore, Schema


def store_from(rows):
    return RecordStore(Schema.single_vector(), {"vec": np.asarray(rows, float)})


@pytest.fixture
def dist():
    return CosineDistance("vec")


class TestConversions:
    def test_degrees_roundtrip(self):
        assert degrees_to_normalized(90.0) == pytest.approx(0.5)
        assert normalized_to_degrees(0.5) == pytest.approx(90.0)

    def test_threshold_examples(self):
        # Paper Example 5: 15 degrees -> 15/180.
        assert degrees_to_normalized(15.0) == pytest.approx(15.0 / 180.0)


class TestDistance:
    def test_identical_vectors(self, dist):
        store = store_from([[1, 0], [1, 0]])
        assert dist.distance(store, 0, 1) == pytest.approx(0.0, abs=1e-12)

    def test_orthogonal_vectors(self, dist):
        store = store_from([[1, 0], [0, 1]])
        assert dist.distance(store, 0, 1) == pytest.approx(0.5)

    def test_opposite_vectors(self, dist):
        store = store_from([[1, 0], [-1, 0]])
        assert dist.distance(store, 0, 1) == pytest.approx(1.0)

    def test_scale_invariance(self, dist):
        store = store_from([[1, 2, 3], [10, 20, 30]])
        assert dist.distance(store, 0, 1) == pytest.approx(0.0, abs=1e-7)

    def test_forty_five_degrees(self, dist):
        store = store_from([[1, 0], [1, 1]])
        assert dist.distance(store, 0, 1) == pytest.approx(0.25)

    def test_symmetry(self, dist):
        store = store_from([[1, 0.3], [0.2, 1]])
        assert dist.distance(store, 0, 1) == pytest.approx(
            dist.distance(store, 1, 0)
        )

    def test_zero_vector_convention(self, dist):
        # Zero vectors sit at 90 degrees from everything (arccos 0).
        store = store_from([[0, 0], [1, 0]])
        assert dist.distance(store, 0, 1) == pytest.approx(0.5)


class TestBatchAccessors:
    def test_pairwise_matches_scalar(self, dist):
        rng = np.random.default_rng(0)
        store = store_from(rng.normal(size=(8, 5)))
        mat = dist.pairwise(store, np.arange(8))
        # arccos is ill-conditioned near 0 distance, so compare loosely.
        for i in range(8):
            for j in range(8):
                assert mat[i, j] == pytest.approx(
                    dist.distance(store, i, j), abs=1e-6
                )

    def test_pairwise_diagonal_zero(self, dist):
        store = store_from(np.random.default_rng(1).normal(size=(5, 4)))
        mat = dist.pairwise(store, np.arange(5))
        assert np.allclose(np.diag(mat), 0.0)

    def test_one_to_many_matches_scalar(self, dist):
        store = store_from(np.random.default_rng(2).normal(size=(7, 4)))
        rids = np.array([0, 2, 4, 6])
        got = dist.one_to_many(store, 3, rids)
        expected = [dist.distance(store, 3, int(r)) for r in rids]
        assert np.allclose(got, expected, atol=1e-9)

    def test_block_matches_scalar(self, dist):
        store = store_from(np.random.default_rng(3).normal(size=(6, 4)))
        a, b = np.array([0, 1, 5]), np.array([2, 3])
        got = dist.block(store, a, b)
        assert got.shape == (3, 2)
        for i, ra in enumerate(a):
            for j, rb in enumerate(b):
                assert got[i, j] == pytest.approx(
                    dist.distance(store, int(ra), int(rb)), abs=1e-9
                )

    def test_pairwise_subset_selection(self, dist):
        store = store_from(np.random.default_rng(4).normal(size=(6, 3)))
        mat = dist.pairwise(store, np.array([5, 1]))
        assert mat.shape == (2, 2)
        assert mat[0, 1] == pytest.approx(dist.distance(store, 5, 1), abs=1e-9)


class TestValidation:
    def test_collision_prob_is_linear(self, dist):
        x = np.linspace(0, 1, 11)
        assert np.allclose(dist.collision_prob(x), 1 - x)

    def test_collision_prob_clipped(self, dist):
        assert dist.collision_prob(1.5) == 0.0

    def test_validate_wrong_kind(self, dist):
        store = RecordStore(Schema.single_shingles("vec"), {"vec": [[1]]})
        with pytest.raises(SchemaError):
            dist.validate(store)

    def test_make_family_type(self, dist):
        from repro.lsh.hyperplanes import RandomHyperplaneFamily

        store = store_from([[1.0, 0.0]])
        assert isinstance(dist.make_family(store, 0), RandomHyperplaneFamily)
