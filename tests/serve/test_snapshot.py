"""Snapshot round-trip guarantees: warm starts are bit-identical.

The tentpole invariant: capture → save → load → restore yields a
method whose ``run(k)`` output equals the cold run byte for byte —
same clusters, same rids, same work counters — for every dataset
family, seed, and worker count.
"""

import numpy as np
import pytest

from repro import AdaptiveConfig, AdaptiveLSH
from repro.datasets import (
    generate_cora,
    generate_popular_images,
    generate_querylog,
    generate_spotsigs,
)
from repro.errors import SnapshotError
from repro.io import pack_json_header, unpack_json_header
from repro.serve import SNAPSHOT_MAGIC, SNAPSHOT_VERSION, IndexSnapshot


def _generate(name, seed):
    if name == "spotsigs":
        return generate_spotsigs(n_records=400, seed=seed)
    if name == "querylog":
        return generate_querylog(n_records=400, seed=seed)
    if name == "cora":
        return generate_cora(n_records=300, seed=seed)
    return generate_popular_images(
        n_records=400, n_popular=30, top1_size=20, seed=seed
    )


def _result_key(result):
    """Everything decision-observable about a FilterResult, exactly.

    ``hashes_computed`` is deliberately excluded: a warm start serves
    captured columns, so it performs *less* hashing work while making
    byte-identical decisions (same clusters, same pairwise work, same
    round count).
    """
    return (
        [c.rids.tolist() for c in result.clusters],
        [c.source for c in result.clusters],
        result.counters.pairs_compared,
        result.counters.pairs_charged,
        result.counters.rounds,
        sorted(result.output_rids.tolist()),
    )


def _cold_and_warm(dataset, tmp_path, k, seed, n_jobs=None):
    config = AdaptiveConfig(seed=seed, cost_model="analytic")
    cold = AdaptiveLSH(dataset.store, dataset.rule, config=config)
    cold_result = cold.run(k)
    path = tmp_path / "index.npz"
    IndexSnapshot.capture(cold).save(path)
    cold.close()
    warm = IndexSnapshot.load(path).restore(dataset.store, n_jobs=n_jobs)
    try:
        warm_result = warm.run(k)
    finally:
        warm.close()
    return cold_result, warm_result, warm


class TestRoundTrip:
    @pytest.mark.parametrize(
        "name", ["spotsigs", "querylog", "cora", "images"]
    )
    def test_warm_run_bit_identical(self, name, tmp_path):
        dataset = _generate(name, seed=7)
        cold, warm, method = _cold_and_warm(dataset, tmp_path, k=4, seed=7)
        assert _result_key(warm) == _result_key(cold)
        assert method.warm_started

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_bit_identical_across_seeds(self, seed, tmp_path):
        dataset = _generate("querylog", seed=seed)
        cold, warm, _ = _cold_and_warm(dataset, tmp_path, k=3, seed=seed)
        assert _result_key(warm) == _result_key(cold)

    def test_bit_identical_with_workers(self, tmp_path):
        dataset = _generate("spotsigs", seed=5)
        cold, warm, method = _cold_and_warm(
            dataset, tmp_path, k=4, seed=5, n_jobs=2
        )
        assert _result_key(warm) == _result_key(cold)
        assert method.n_jobs == 2

    def test_warm_skips_all_captured_hashing(self, tmp_path):
        """A snapshot captured after a run carries that run's columns;
        replaying the same query computes zero new hashes."""
        dataset = _generate("spotsigs", seed=2)
        cold, warm, _ = _cold_and_warm(dataset, tmp_path, k=4, seed=2)
        assert cold.counters.hashes_computed > 0
        assert warm.counters.hashes_computed == 0

    def test_snapshot_before_any_run(self, tmp_path):
        """Capturing right after prepare() (no query yet) also restores
        to a bit-identical method — the pools are simply empty."""
        dataset = _generate("cora", seed=9)
        config = AdaptiveConfig(seed=9, cost_model="analytic")
        cold = AdaptiveLSH(dataset.store, dataset.rule, config=config)
        path = tmp_path / "index.npz"
        IndexSnapshot.capture(cold).save(path)  # prepares, no run
        cold_result = cold.run(3)
        cold.close()
        warm = IndexSnapshot.load(path).restore(dataset.store)
        try:
            warm_result = warm.run(3)
        finally:
            warm.close()
        assert _result_key(warm_result) == _result_key(cold_result)

    def test_arrays_round_trip_dtype_exact(self, tmp_path):
        dataset = _generate("querylog", seed=4)
        config = AdaptiveConfig(seed=4, cost_model="analytic")
        with AdaptiveLSH(dataset.store, dataset.rule, config=config) as m:
            m.run(3)
            snap = IndexSnapshot.capture(m)
        path = tmp_path / "index.npz"
        snap.save(path)
        loaded = IndexSnapshot.load(path)
        assert set(loaded.arrays) == set(snap.arrays)
        for key, arr in snap.arrays.items():
            assert loaded.arrays[key].dtype == arr.dtype, key
            np.testing.assert_array_equal(loaded.arrays[key], arr)
        assert loaded.header == unpack_json_header(
            pack_json_header(snap.header)
        )


class TestValidation:
    @pytest.fixture(scope="class")
    def saved(self, tmp_path_factory):
        dataset = _generate("querylog", seed=6)
        config = AdaptiveConfig(seed=6, cost_model="analytic")
        with AdaptiveLSH(dataset.store, dataset.rule, config=config) as m:
            snap = IndexSnapshot.capture(m)
        path = tmp_path_factory.mktemp("snap") / "index.npz"
        snap.save(path)
        return dataset, path

    def test_not_a_snapshot(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(SnapshotError, match="not an index snapshot"):
            IndexSnapshot.load(path)

    def test_wrong_magic(self, saved, tmp_path):
        _, path = saved
        snap = IndexSnapshot.load(path)
        snap.header["magic"] = "something-else"
        bad = tmp_path / "bad.npz"
        snap.save(bad)
        with pytest.raises(SnapshotError, match="not an index snapshot"):
            IndexSnapshot.load(bad)

    def test_unknown_version(self, saved, tmp_path):
        _, path = saved
        snap = IndexSnapshot.load(path)
        snap.header["version"] = SNAPSHOT_VERSION + 1
        bad = tmp_path / "bad.npz"
        snap.save(bad)
        with pytest.raises(SnapshotError, match="version"):
            IndexSnapshot.load(bad)

    def test_magic_constant(self, saved):
        _, path = saved
        assert IndexSnapshot.load(path).header["magic"] == SNAPSHOT_MAGIC

    def test_strict_rejects_different_store(self, saved):
        _, path = saved
        other = _generate("querylog", seed=99)
        with pytest.raises(SnapshotError, match="does not match"):
            IndexSnapshot.load(path).restore(other.store)

    def test_strict_rejects_extended_store(self, saved):
        dataset, path = saved
        extended = dataset.store.concat(dataset.store)
        with pytest.raises(SnapshotError, match="strict=False"):
            IndexSnapshot.load(path).restore(extended)

    def test_schema_mismatch(self, saved, vector_store, vector_rule):
        _, path = saved
        store, _ = vector_store
        with pytest.raises(SnapshotError, match="schema"):
            IndexSnapshot.load(path).restore(store)


class TestExtensionRestore:
    def test_non_strict_accepts_extension(self, tmp_path):
        """strict=False restores onto a store extended past the
        captured prefix; prefix queries still match the cold method."""
        dataset = _generate("spotsigs", seed=8)
        config = AdaptiveConfig(seed=8, cost_model="analytic")
        with AdaptiveLSH(dataset.store, dataset.rule, config=config) as m:
            m.run(3)
            snap = IndexSnapshot.capture(m)
        extra = _generate("spotsigs", seed=80)
        extended = dataset.store.concat(extra.store)
        warm = snap.restore(extended, strict=False)
        try:
            assert warm.warm_started
            assert len(warm.store) == len(dataset.store) + len(extra.store)
        finally:
            warm.close()

    def test_non_strict_still_checks_prefix(self, tmp_path):
        dataset = _generate("spotsigs", seed=8)
        config = AdaptiveConfig(seed=8, cost_model="analytic")
        with AdaptiveLSH(dataset.store, dataset.rule, config=config) as m:
            snap = IndexSnapshot.capture(m)
        other = _generate("spotsigs", seed=81)
        extended = other.store.concat(dataset.store)
        with pytest.raises(SnapshotError, match="extension"):
            snap.restore(extended, strict=False)
