"""Load harness: schedule determinism, payload round-trips, gating."""

import asyncio
import json

import numpy as np
import pytest

from repro import AdaptiveConfig
from repro.datasets import generate_querylog
from repro.errors import ConfigurationError
from repro.records import RecordStore
from repro.serve import LoadProfile, ResolverService, ServiceConfig, run_loadtest
from repro.serve.loadgen import (
    build_schedule,
    render_markdown,
    store_columns_payload,
    summarize,
)

ADAPTIVE = AdaptiveConfig(cost_model="analytic")


@pytest.fixture(scope="module")
def dataset():
    return generate_querylog(n_records=160, seed=6)


class TestProfile:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LoadProfile(qps=0)
        with pytest.raises(ConfigurationError):
            LoadProfile(duration_s=0)
        with pytest.raises(ConfigurationError):
            LoadProfile(k_values=())
        with pytest.raises(ConfigurationError):
            LoadProfile(write_fraction=1.0)

    def test_to_dict_is_json_ready(self):
        out = LoadProfile().to_dict()
        assert out["k_values"] == [2, 5, 10]
        json.dumps(out)


class TestSchedule:
    def test_deterministic(self):
        profile = LoadProfile(qps=80, duration_s=2.0, write_fraction=0.2, seed=3)
        a = build_schedule(profile, 10)
        b = build_schedule(profile, 10)
        assert [(op.at, op.kind, op.k, op.chunk) for op in a] == [
            (op.at, op.kind, op.k, op.chunk) for op in b
        ]
        assert all(0 <= op.at < 2.0 for op in a)

    def test_writes_bounded_by_reserve_chunks(self):
        profile = LoadProfile(qps=200, duration_s=2.0, write_fraction=0.5, seed=0)
        sched = build_schedule(profile, 3)
        writes = [op for op in sched if op.kind == "insert"]
        assert len(writes) == 3  # capped; the rest degrade to queries
        assert [op.chunk for op in writes] == [0, 1, 2]

    def test_zipf_skew_prefers_first_k(self):
        profile = LoadProfile(
            qps=300, duration_s=3.0, k_values=(2, 5, 10), zipf_s=2.0, seed=1
        )
        sched = build_schedule(profile, 0)
        counts = {k: 0 for k in profile.k_values}
        for op in sched:
            counts[op.k] += 1
        assert counts[2] > counts[5] > counts[10]


class TestPayloads:
    def test_columns_roundtrip(self, dataset):
        payload = store_columns_payload(dataset.store, 3, 9)
        json.dumps(payload)  # wire-safe
        rebuilt = RecordStore(dataset.store.schema, payload)
        assert len(rebuilt) == 6
        original = dataset.store.take(np.arange(3, 9))
        assert rebuilt.content_fingerprint() == original.content_fingerprint()


class TestSummary:
    def _summary(self, **identity_overrides):
        profile = LoadProfile(qps=10, duration_s=1.0)
        identity = {
            "checked": 2,
            "matched": 2,
            "mismatched_repeats": 0,
            "mismatches": [],
            "ok": True,
        }
        identity.update(identity_overrides)
        return summarize(profile, [], 1.0, identity)

    def test_gates_pass_when_clean(self):
        summary = self._summary()
        assert summary["gates"]["pass"] is True

    def test_identity_failure_fails_gates(self):
        summary = self._summary(matched=1, ok=False)
        assert summary["gates"]["identity_ok"] is False
        assert summary["gates"]["pass"] is False

    def test_render_markdown_table(self):
        text = render_markdown(self._summary())
        assert text.startswith("| metric | value |")
        assert "| identity checks | 2/2 matched |" in text
        assert "| gates | PASS |" in text
        failed = render_markdown(self._summary(matched=0, ok=False))
        assert "FAIL" in failed and "identity_ok" in failed


class TestEndToEnd:
    def test_loadtest_gates_and_identity(self, dataset):
        """A short inline-worker run: everything completes, the sampled
        responses match the oracle, and the summary carries the
        percentile fields the CI table renders."""
        store = dataset.store.take(np.arange(120))
        reserve = dataset.store.take(np.arange(120, 160))
        config = ServiceConfig(
            n_shards=2,
            workers="inline",
            seed=6,
            rollover_records=16,
            adaptive=ADAPTIVE,
        )
        profile = LoadProfile(
            qps=40,
            duration_s=1.5,
            k_values=(2, 4),
            write_fraction=0.15,
            write_chunk=8,
            seed=2,
        )
        service = ResolverService(store, dataset.rule, config)

        async def go():
            async with service:
                return await run_loadtest(service, profile, reserve)

        summary = asyncio.run(go())
        assert summary["errors"] == 0, summary["error_samples"]
        assert summary["identity"]["checked"] >= 1
        assert summary["identity"]["ok"] is True
        assert summary["gates"]["pass"] is True
        assert summary["completed"] == summary["offered"]["requests"] - summary["shed"]
        for key in ("p50", "p95", "p99"):
            assert key in summary["latency_ms"]
        json.dumps(summary)  # the artifact must serialize

    def test_write_fraction_requires_reserve(self, dataset):
        service = ResolverService(
            dataset.store,
            dataset.rule,
            ServiceConfig(n_shards=1, workers="inline", adaptive=ADAPTIVE),
        )
        profile = LoadProfile(qps=10, duration_s=0.5, write_fraction=0.5)

        async def go():
            async with service:
                return await run_loadtest(service, profile, None)

        with pytest.raises(ConfigurationError, match="reserve"):
            asyncio.run(go())
