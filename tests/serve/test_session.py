"""ResolverSession: LRU serving, warm starts, and store extension."""

import numpy as np
import pytest

from repro import AdaptiveConfig, AdaptiveLSH, RunObserver, StreamingTopK
from repro.datasets import generate_querylog, generate_spotsigs
from repro.errors import ConfigurationError
from repro.serve import IndexSnapshot, ResolverSession


def _clusters(result):
    return [c.rids.tolist() for c in result.clusters]


@pytest.fixture(scope="module")
def dataset():
    return generate_querylog(n_records=400, seed=6)


CONFIG = AdaptiveConfig(seed=6, cost_model="analytic")


class TestColdSession:
    def test_matches_direct_run(self, dataset):
        with AdaptiveLSH(dataset.store, dataset.rule, config=CONFIG) as m:
            direct = m.run(4)
        with ResolverSession(dataset.store, dataset.rule, config=CONFIG) as s:
            served = s.top_k(4)
            assert _clusters(served) == _clusters(direct)
            assert not s.warm_started

    def test_lru_hit(self, dataset):
        with ResolverSession(dataset.store, dataset.rule, config=CONFIG) as s:
            first = s.top_k(3)
            assert first.info["serving"]["cache_hit"] is False
            again = s.top_k(3)
            assert again is first
            assert again.info["serving"]["cache_hit"] is True
            stats = s.serving_stats()
            assert stats["queries"] == 2
            assert stats["cache_hits"] == 1
            assert stats["cached_results"] == 1

    def test_lru_eviction(self, dataset):
        with ResolverSession(
            dataset.store, dataset.rule, config=CONFIG, cache_size=2
        ) as s:
            s.top_k(2)
            s.top_k(3)
            s.top_k(4)  # evicts k=2
            assert s.serving_stats()["cached_results"] == 2
            s.top_k(3)  # still cached
            assert s.serving_stats()["cache_hits"] == 1

    def test_batch_order_preserved(self, dataset):
        with ResolverSession(dataset.store, dataset.rule, config=CONFIG) as s:
            results = s.batch_top_k([2, 5, 3])
            assert [len(r.clusters) for r in results] == [2, 5, 3]

    def test_serving_stats_stamped_on_result(self, dataset):
        with ResolverSession(dataset.store, dataset.rule, config=CONFIG) as s:
            result = s.top_k(3)
            assert result.serving_stats is not None
            assert result.serving_stats["warm_start"] is False

    def test_requires_rule_or_method(self, dataset):
        with pytest.raises(ConfigurationError, match="rule"):
            ResolverSession(dataset.store)

    def test_rejects_method_and_config(self, dataset):
        with AdaptiveLSH(dataset.store, dataset.rule, config=CONFIG) as m:
            with pytest.raises(ConfigurationError, match="not both"):
                ResolverSession(dataset.store, method=m, config=CONFIG)

    def test_rejects_foreign_method(self, dataset):
        other = generate_querylog(n_records=300, seed=61)
        with AdaptiveLSH(other.store, other.rule, config=CONFIG) as m:
            with pytest.raises(ConfigurationError, match="same store"):
                ResolverSession(dataset.store, method=m)

    def test_rejects_bad_cache_size(self, dataset):
        with pytest.raises(ConfigurationError, match="cache_size"):
            ResolverSession(
                dataset.store, dataset.rule, config=CONFIG, cache_size=0
            )


class TestWarmSession:
    def test_from_snapshot_matches_cold(self, dataset, tmp_path):
        with AdaptiveLSH(dataset.store, dataset.rule, config=CONFIG) as m:
            cold = m.run(4)
            path = tmp_path / "index.npz"
            IndexSnapshot.capture(m).save(path)
        with ResolverSession.from_snapshot(
            path, dataset.store, observer=RunObserver()
        ) as s:
            assert s.warm_started
            warm = s.top_k(4)
            assert _clusters(warm) == _clusters(cold)
            assert warm.serving_stats["warm_start"] is True
            # The restored method never enters prepare(): its first run
            # report has no adaLSH.prepare span and carries the serving
            # counters.
            report = s.last_report
            span_names = [span["name"] for span in report.spans]
            assert "adaLSH.prepare" not in span_names
            assert report.serving["warm_start"] is True

    def test_session_snapshot_round_trip(self, dataset, tmp_path):
        with ResolverSession(dataset.store, dataset.rule, config=CONFIG) as s:
            first = s.top_k(3)
            path = tmp_path / "session.npz"
            s.snapshot(path)
        with ResolverSession.from_snapshot(path, dataset.store) as warm:
            assert _clusters(warm.top_k(3)) == _clusters(first)


class TestExtendStore:
    @staticmethod
    def _split(n_head):
        full = generate_spotsigs(n_records=400, seed=21)
        head = full.store.take(np.arange(n_head))
        tail = full.store.take(np.arange(n_head, len(full.store)))
        return full, head, tail

    def test_insert_then_query_matches_scratch_stream(self):
        full, head, tail = self._split(350)
        config = AdaptiveConfig(seed=21, cost_model="analytic")
        with ResolverSession(head, full.rule, config=config) as s:
            s.top_k(3)
            s.extend_store(tail)
            assert s.store_version == 1
            assert len(s.store) == 400
            served = s.top_k(3)
        scratch = StreamingTopK(
            head.concat(tail), full.rule, config=config
        )
        scratch.insert_many(scratch.store.rids)
        expected = scratch.top_k(3)
        assert _clusters(served) == _clusters(expected)

    def test_extend_invalidates_cache(self):
        full, head, tail = self._split(350)
        config = AdaptiveConfig(seed=21, cost_model="analytic")
        with ResolverSession(head, full.rule, config=config) as s:
            before = s.top_k(3)
            s.extend_store(tail)
            after = s.top_k(3)
            assert after is not before
            assert s.serving_stats()["cache_hits"] == 0

    def test_empty_extension_is_noop(self, dataset):
        with ResolverSession(dataset.store, dataset.rule, config=CONFIG) as s:
            s.extend_store(dataset.store.take(np.arange(0)))
            assert s.store_version == 0

    def test_insert_records_accepts_columns(self):
        full, head, tail = self._split(380)
        config = AdaptiveConfig(seed=21, cost_model="analytic")
        columns = {
            spec.name: tail.shingle_sets(spec.name) for spec in tail.schema
        }
        with ResolverSession(head, full.rule, config=config) as s:
            s.insert_records(columns)
            assert len(s.store) == 400
