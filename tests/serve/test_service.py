"""ResolverService: lifecycle, batching, shedding, rollover, sharding.

The suite drives the asyncio service with ``asyncio.run`` (no plugin
dependency) and uses inline shard workers except where the process
path is the point — inline workers exercise the identical shard-server
and merge code without per-test process start-up.
"""

import asyncio

import numpy as np
import pytest

from repro import AdaptiveConfig
from repro.datasets import generate_querylog
from repro.errors import ConfigurationError, ResolvableExceededError
from repro.records import RecordStore, Schema
from repro.serve import (
    ResolverService,
    ResolverSession,
    ServiceConfig,
    ShardOracle,
    shard_spans,
)
from repro.serve.loadgen import http_request, store_columns_payload
from repro.serve.sharding import clamped_top_k

ADAPTIVE = AdaptiveConfig(cost_model="analytic")


@pytest.fixture(scope="module")
def dataset():
    return generate_querylog(n_records=160, seed=6)


def _config(**overrides):
    base = dict(n_shards=2, workers="inline", seed=6, adaptive=ADAPTIVE)
    base.update(overrides)
    return ServiceConfig(**base)


def _serve(dataset, config, body):
    """Run ``body(service)`` inside a started service."""

    async def go():
        async with ResolverService(dataset.store, dataset.rule, config) as svc:
            return await body(svc)

    return asyncio.run(go())


class TestServiceConfig:
    def test_rejects_calibrated_cost_model(self):
        with pytest.raises(ConfigurationError, match="analytic"):
            ServiceConfig(adaptive=AdaptiveConfig(cost_model="calibrate"))

    def test_rejects_unknown_worker_mode(self):
        with pytest.raises(ConfigurationError, match="workers"):
            ServiceConfig(workers="threads")

    def test_validates_bounds(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(n_shards=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_inflight=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(batch_window_ms=-1)

    def test_shard_seed_is_pure(self):
        cfg = _config(seed=7)
        assert cfg.shard_seed(0, 0) == 7
        assert cfg.shard_seed(1, 1) == _config(seed=7).shard_seed(1, 1)
        # Distinct (generation, shard) pairs get distinct seeds.
        seeds = {cfg.shard_seed(g, i) for g in range(3) for i in range(4)}
        assert len(seeds) == 12

    def test_shard_adaptive_overrides_seed_and_jobs(self):
        cfg = _config(seed=3, worker_n_jobs=1)
        shard = cfg.shard_adaptive(2, 1)
        assert shard.seed == cfg.shard_seed(2, 1)
        assert shard.n_jobs == 1
        assert shard.cost_model == "analytic"


class TestClamping:
    def test_clamped_top_k_retries_at_resolvable(self, dataset):
        small = dataset.store.take(np.arange(12))
        with ResolverSession(small, dataset.rule, config=ADAPTIVE) as session:
            result, effective = clamped_top_k(session, 50)
            assert result is not None
            assert effective == len(result.clusters)
            assert effective < 50

    def test_resolvable_exceeded_carries_counts(self, dataset):
        small = dataset.store.take(np.arange(12))
        with ResolverSession(small, dataset.rule, config=ADAPTIVE) as session:
            with pytest.raises(ResolvableExceededError) as exc_info:
                session.top_k(50)
        exc = exc_info.value
        assert exc.k == 50
        assert 1 <= exc.resolvable < 50
        assert isinstance(exc, ConfigurationError)  # backward compatible


class TestLifecycle:
    def test_start_serve_shutdown(self, dataset):
        async def body(svc):
            assert svc.port is not None and svc.port > 0
            status, health = await http_request(
                "127.0.0.1", svc.port, "GET", "/healthz"
            )
            assert status == 200
            assert health["status"] == "ok"
            assert health["n_shards"] == 2
            assert health["n_records"] == len(dataset.store)
            status, stats = await http_request(
                "127.0.0.1", svc.port, "GET", "/stats"
            )
            assert status == 200
            assert stats["generation"] == 0
            return svc

        svc = _serve(dataset, _config(), body)
        # After stop: no server, handles drained.
        assert svc._server is None
        assert svc._current[1] == []

    def test_unknown_endpoint_and_bad_payload(self, dataset):
        async def body(svc):
            status, _ = await http_request(
                "127.0.0.1", svc.port, "POST", "/nope", {}
            )
            assert status == 404
            status, out = await http_request(
                "127.0.0.1", svc.port, "POST", "/top_k", {"k": 0}
            )
            assert status == 400
            assert "k" in out["error"]
            status, _ = await http_request(
                "127.0.0.1", svc.port, "GET", "/top_k"
            )
            assert status == 405

        _serve(dataset, _config(), body)

    def test_run_report_has_serving_section(self, dataset):
        async def body(svc):
            status, _ = await http_request(
                "127.0.0.1", svc.port, "POST", "/top_k", {"k": 3}
            )
            assert status == 200
            report = svc.run_report()
            assert report.serving["queries"] == 1
            assert report.serving["n_shards"] == 2
            assert report.serving["latency_ms"]["count"] == 1

        _serve(dataset, _config(), body)


class TestQueries:
    def test_top_k_matches_oracle(self, dataset):
        async def body(svc):
            for k in (2, 4, 7):
                status, served = await http_request(
                    "127.0.0.1", svc.port, "POST", "/top_k", {"k": k}
                )
                assert status == 200
                with svc.build_oracle() as oracle:
                    assert served["clusters"] == oracle.top_k(k)["clusters"]

        _serve(dataset, _config(), body)

    def test_process_workers_match_inline(self, dataset):
        async def serve_one(cfg):
            async with ResolverService(dataset.store, dataset.rule, cfg) as svc:
                status, served = await http_request(
                    "127.0.0.1", svc.port, "POST", "/top_k", {"k": 5}
                )
                assert status == 200
                return served["clusters"]

        inline = asyncio.run(serve_one(_config(workers="inline")))
        process = asyncio.run(serve_one(_config(workers="process")))
        assert inline == process

    def test_batch_top_k_order_and_equivalence(self, dataset):
        async def body(svc):
            status, batch = await http_request(
                "127.0.0.1", svc.port, "POST", "/batch_top_k", {"ks": [5, 2, 5]}
            )
            assert status == 200
            results = batch["results"]
            assert len(results) == 3
            assert results[0]["clusters"] == results[2]["clusters"]
            single = await svc.top_k(2)
            assert results[1]["clusters"] == single["clusters"]

        _serve(dataset, _config(), body)

    def test_same_k_queries_coalesce(self, dataset):
        async def body(svc):
            responses = await asyncio.gather(
                *(
                    http_request("127.0.0.1", svc.port, "POST", "/top_k", {"k": 4})
                    for _ in range(8)
                )
            )
            clusters = {str(payload["clusters"]) for _, payload in responses}
            assert len(clusters) == 1  # every waiter saw the same answer
            assert all(status == 200 for status, _ in responses)
            assert any(payload["coalesced"] for _, payload in responses)
            stats = svc.stats()
            assert stats["coalesced"] >= 1
            assert stats["batches"] + stats["coalesced"] == stats["queries"]

        _serve(dataset, _config(batch_window_ms=60.0), body)

    def test_burst_is_shed_with_retry_after(self, dataset):
        async def body(svc):
            # Distinct k values defeat coalescing, so each request needs
            # its own admission slot; max_inflight=1 sheds the surplus.
            responses = await asyncio.gather(
                *(
                    http_request(
                        "127.0.0.1", svc.port, "POST", "/top_k", {"k": 2 + i}
                    )
                    for i in range(6)
                )
            )
            statuses = sorted(status for status, _ in responses)
            assert 200 in statuses
            assert 429 in statuses
            shed = [payload for status, payload in responses if status == 429]
            assert all(p["retry_after_s"] > 0 for p in shed)
            assert svc.stats()["shed"] == len(shed)

        _serve(
            dataset,
            _config(max_inflight=1, batch_window_ms=120.0),
            body,
        )


class TestRollover:
    def test_rollover_during_concurrent_queries(self, dataset):
        extra = generate_querylog(n_records=200, seed=6).store
        chunks = [
            extra.take(np.arange(lo + 160, lo + 170)) for lo in range(0, 40, 10)
        ]

        async def body(svc):
            async def insert(chunk):
                payload = store_columns_payload(chunk, 0, len(chunk))
                return await http_request(
                    "127.0.0.1",
                    svc.port,
                    "POST",
                    "/insert_records",
                    {"columns": payload},
                )

            async def query():
                return await http_request(
                    "127.0.0.1", svc.port, "POST", "/top_k", {"k": 3}
                )

            mixed = await asyncio.gather(
                *[insert(c) for c in chunks], *[query() for _ in range(6)]
            )
            assert all(status == 200 for status, _ in mixed)
            # Drain the pending buffer, then wait out the background task.
            await http_request("127.0.0.1", svc.port, "POST", "/rollover", {})
            while svc._rollover_task is not None and not svc._rollover_task.done():
                await asyncio.sleep(0.01)
            assert svc.generation >= 1
            assert len(svc.current_store()) == 160 + 40
            # The new generation still answers bit-identically to its
            # own oracle replica.
            status, served = await http_request(
                "127.0.0.1", svc.port, "POST", "/top_k", {"k": 4}
            )
            assert status == 200
            assert served["generation"] == svc.generation
            with svc.build_oracle() as oracle:
                assert served["clusters"] == oracle.top_k(4)["clusters"]

        _serve(dataset, _config(rollover_records=20), body)

    def test_reads_keep_old_generation_until_swap(self, dataset):
        async def body(svc):
            before = await svc.top_k(3)
            # A buffered write below the threshold changes nothing.
            status, out = await http_request(
                "127.0.0.1",
                svc.port,
                "POST",
                "/insert_records",
                {"columns": store_columns_payload(dataset.store, 0, 5)},
            )
            assert status == 200
            assert out["rollover_scheduled"] is False
            after = await svc.top_k(3)
            assert after["generation"] == before["generation"] == 0
            assert after["clusters"] == before["clusters"]
            assert svc.stats()["pending_writes"] == 5

        _serve(dataset, _config(rollover_records=1000), body)


def _planted_store(sizes_and_noise, dim=16, seed=0):
    """Contiguous planted clusters: ``[(sizes, n_noise), ...]`` blocks."""
    rng = np.random.default_rng(seed)
    rows = []
    for sizes, n_noise in sizes_and_noise:
        for base_scale, size in enumerate(sizes):
            base = rng.normal(size=dim) * (2.0 + base_scale)
            for _ in range(size):
                rows.append(base + rng.normal(scale=0.005, size=dim))
        for _ in range(n_noise):
            rows.append(rng.normal(size=dim) * 8.0)
    return RecordStore(Schema.single_vector(), {"vec": np.asarray(rows)})


class TestCrossShardMerge:
    def test_two_shard_merge_equals_single_shard(self):
        """With every entity contained in one shard, the 2-shard merge
        must reproduce the single-shard session's top-k exactly."""
        from repro.distance import CosineDistance, ThresholdRule

        # Block 1 -> records 0..49 (entities of 12 and 5), block 2 ->
        # records 50..99 (entities of 9 and 7); shard_spans(100, 2)
        # splits exactly at 50, so no entity straddles the boundary.
        store = _planted_store([((12, 5), 33), ((9, 7), 34)])
        assert shard_spans(100, 2) == [(0, 50), (50, 100)]
        rule = ThresholdRule(CosineDistance("vec"), 0.15)
        cfg = ServiceConfig(
            n_shards=2, workers="inline", seed=0, adaptive=ADAPTIVE
        )
        with ShardOracle(store, rule, cfg, generation=0) as oracle:
            merged = oracle.top_k(4)["clusters"]
        single = ServiceConfig(
            n_shards=1, workers="inline", seed=0, adaptive=ADAPTIVE
        )
        with ShardOracle(store, rule, single, generation=0) as oracle:
            direct = oracle.top_k(4)["clusters"]
        assert [len(c) for c in merged] == [12, 9, 7, 5]
        assert merged == direct

    def test_single_shard_oracle_matches_plain_session(self):
        from repro.distance import CosineDistance, ThresholdRule

        store = _planted_store([((10, 6), 24)])
        rule = ThresholdRule(CosineDistance("vec"), 0.15)
        cfg = ServiceConfig(
            n_shards=1, workers="inline", seed=0, adaptive=ADAPTIVE
        )
        with ShardOracle(store, rule, cfg, generation=0) as oracle:
            merged = oracle.top_k(2)["clusters"]
        session_cfg = cfg.shard_adaptive(0, 0)
        with ResolverSession(store, rule, config=session_cfg) as session:
            direct = session.top_k(2)
        # The wire format canonicalizes member order within a cluster.
        assert merged == [
            sorted(int(r) for r in c.rids) for c in direct.clusters
        ]


class TestOutOfCore:
    """PR-8: disk-backed stores flow through the service without the
    column bytes ever crossing a pickle boundary, and rollovers append
    to the backing layout in O(pending) instead of rewriting the base."""

    def _layout_store(self, dataset, tmp_path):
        from repro.storage import StoreLayout

        return StoreLayout.write(dataset.store, tmp_path / "base.store").open()

    def test_mmap_store_serves_identically(self, dataset, tmp_path):
        opened = self._layout_store(dataset, tmp_path)

        async def run(store, expect_backed):
            async with ResolverService(store, dataset.rule, _config()) as svc:
                assert svc.stats()["store_backed"] is expect_backed
                return await svc.top_k(4)

        mapped = asyncio.run(run(opened, True))
        direct = asyncio.run(run(dataset.store, False))
        assert mapped["clusters"] == direct["clusters"]

    def test_process_workers_ship_zero_store_bytes(self, dataset, tmp_path):
        opened = self._layout_store(dataset, tmp_path)

        async def body(svc):
            out = await svc.top_k(3)
            assert out["clusters"]
            assert svc.stats()["store_pickle_bytes"] == 0

        _serve(
            type("D", (), {"store": opened, "rule": dataset.rule})(),
            _config(workers="process"),
            body,
        )

    def test_spool_dir_backs_in_memory_store(self, dataset, tmp_path):
        async def body(svc):
            stats = svc.stats()
            assert stats["store_backed"] is True
            backing = svc.current_store().backing
            assert backing is not None
            assert backing.path.startswith(str(tmp_path))
            out = await svc.top_k(3)
            return out["clusters"]

        spooled = _serve(dataset, _config(spool_dir=str(tmp_path)), body)
        plain = _serve(dataset, _config(), lambda svc: svc.top_k(3))
        assert spooled == plain["clusters"]

    def test_rollover_appends_to_backing_layout(self, dataset, tmp_path):
        """A rollover on a layout-backed store must extend the layout in
        place (version bump, same path) instead of rebuilding it."""
        from repro.storage import StoreLayout

        opened = self._layout_store(dataset, tmp_path)
        extra = generate_querylog(n_records=200, seed=6).store

        async def body(svc):
            base_backing = svc.current_store().backing
            payload = store_columns_payload(extra, 160, 185)
            status, out = await http_request(
                "127.0.0.1",
                svc.port,
                "POST",
                "/insert_records",
                {"columns": payload},
            )
            assert status == 200 and out["rollover_scheduled"] is True
            while svc._rollover_task is not None and not svc._rollover_task.done():
                await asyncio.sleep(0.01)
            assert svc.generation == 1
            store = svc.current_store()
            assert len(store) == 185
            backing = store.backing
            assert backing is not None
            assert backing.path == base_backing.path
            assert backing.store_version == base_backing.store_version + 1
            assert StoreLayout(backing.path).n == 185
            status, served = await http_request(
                "127.0.0.1", svc.port, "POST", "/top_k", {"k": 4}
            )
            assert status == 200
            with svc.build_oracle() as oracle:
                assert served["clusters"] == oracle.top_k(4)["clusters"]

        _serve(
            type("D", (), {"store": opened, "rule": dataset.rule})(),
            _config(rollover_records=20),
            body,
        )


class TestShardedIndex:
    def _fixture(self):
        from repro.distance import CosineDistance, ThresholdRule

        store = _planted_store(
            [((12, 5), 23), ((9, 7), 24), ((10, 6), 24), ((8, 4), 28)]
        )
        assert shard_spans(len(store), 4) == [
            (0, 40),
            (40, 80),
            (80, 120),
            (120, 160),
        ]
        return store, ThresholdRule(CosineDistance("vec"), 0.15)

    def test_four_shard_equals_single_shard(self):
        from repro.serve import ShardedIndex

        store, rule = self._fixture()
        with ShardedIndex(store, rule, n_shards=4) as sharded:
            merged = sharded.top_k(6)
        with ShardedIndex(store, rule, n_shards=1) as single:
            direct = single.top_k(6)
        assert [len(c) for c in merged["clusters"]] == [12, 10, 9, 8, 7, 6]
        assert merged["clusters"] == direct["clusters"]
        assert merged["n_shards"] == 4 and merged["k"] == 6

    def test_mmap_store_equals_in_memory(self, tmp_path):
        from repro.serve import ShardedIndex
        from repro.storage import StoreLayout

        store, rule = self._fixture()
        opened = StoreLayout.write(store, tmp_path / "s.store").open()
        with ShardedIndex(store, rule, n_shards=4) as mem:
            want = mem.top_k(5)["clusters"]
        with ShardedIndex(opened, rule, n_shards=4) as mm:
            got = mm.top_k(5)["clusters"]
        assert got == want

    def test_shard_stats_report_spans(self):
        from repro.serve import ShardedIndex

        store, rule = self._fixture()
        with ShardedIndex(store, rule, n_shards=4) as sharded:
            stats = sharded.shard_stats()
        assert [s["span"] for s in stats] == [
            [0, 40],
            [40, 80],
            [80, 120],
            [120, 160],
        ]
        assert sharded.n_shards == 4
