"""Tests for rule/dataset serialization."""

import numpy as np
import pytest

from repro import (
    AdaptiveConfig,
    AndRule,
    CosineDistance,
    EuclideanDistance,
    JaccardDistance,
    OrRule,
    ThresholdRule,
    WeightedAverageRule,
    load_dataset,
    rule_from_spec,
    rule_to_spec,
    save_dataset,
)
from repro.errors import ConfigurationError


RULES = {
    "threshold_cosine": ThresholdRule(CosineDistance("vec"), 0.1),
    "threshold_jaccard": ThresholdRule(JaccardDistance("s"), 0.6),
    "threshold_jaccard_bbit": ThresholdRule(
        JaccardDistance("s", minhash_bits=4), 0.6
    ),
    "threshold_euclidean": ThresholdRule(
        EuclideanDistance("vec", scale=3.0, bucket_width=0.2), 0.5
    ),
    "weighted": WeightedAverageRule(
        [JaccardDistance("a"), JaccardDistance("b")], [0.3, 0.7], 0.4
    ),
    "and": AndRule(
        [
            ThresholdRule(JaccardDistance("a"), 0.5),
            ThresholdRule(JaccardDistance("b"), 0.7),
        ]
    ),
    "or": OrRule(
        [
            ThresholdRule(CosineDistance("vec"), 0.2),
            ThresholdRule(JaccardDistance("s"), 0.5),
        ]
    ),
}


@pytest.mark.parametrize("name", sorted(RULES))
def test_rule_roundtrip(name):
    rule = RULES[name]
    spec = rule_to_spec(rule)
    rebuilt = rule_from_spec(spec)
    assert rule_to_spec(rebuilt) == spec


def test_rule_spec_is_json_serializable():
    import json

    for rule in RULES.values():
        json.dumps(rule_to_spec(rule))


def test_unknown_rule_kind_rejected():
    with pytest.raises(ConfigurationError):
        rule_from_spec({"kind": "mystery"})


def test_unknown_distance_kind_rejected():
    with pytest.raises(ConfigurationError):
        rule_from_spec(
            {"kind": "threshold", "distance": {"kind": "hamming"}, "threshold": 0.5}
        )


class TestDatasetRoundtrip:
    def test_spotsigs_roundtrip(self, tiny_spotsigs, tmp_path):
        path = tmp_path / "spotsigs.npz"
        save_dataset(tiny_spotsigs, path)
        loaded = load_dataset(path)
        assert loaded.name == tiny_spotsigs.name
        assert np.array_equal(loaded.labels, tiny_spotsigs.labels)
        original = tiny_spotsigs.store.shingle_sets("signatures")
        restored = loaded.store.shingle_sets("signatures")
        for a, b in zip(original, restored):
            assert np.array_equal(a, b)
        assert rule_to_spec(loaded.rule) == rule_to_spec(tiny_spotsigs.rule)

    def test_images_roundtrip(self, tiny_images, tmp_path):
        path = tmp_path / "images.npz"
        save_dataset(tiny_images, path)
        loaded = load_dataset(path)
        assert np.allclose(
            loaded.store.vectors("histogram"),
            tiny_images.store.vectors("histogram"),
        )

    def test_cora_roundtrip_keeps_json_info(self, tiny_cora, tmp_path):
        path = tmp_path / "cora.npz"
        save_dataset(tiny_cora, path)
        loaded = load_dataset(path)
        # The raw-string previews are JSON-serializable and survive.
        assert loaded.info["raw"][0] == tiny_cora.info["raw"][0]
        assert len(loaded) == len(tiny_cora)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_dataset_roundtrip_is_exact(self, seed, tmp_path):
        """Property: save -> load reproduces every column bit-for-bit,
        dtypes included, on random mixed-schema datasets (empty shingle
        sets and near-2^62 ids exercised deliberately)."""
        from repro import Dataset
        from repro.records import FieldKind, FieldSpec, RecordStore, Schema

        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 40))
        schema = Schema(
            (
                FieldSpec("vec", FieldKind.VECTOR),
                FieldSpec("s", FieldKind.SHINGLES),
            )
        )
        sets = [
            rng.integers(0, 2**62, size=int(rng.integers(0, 12)))
            for _ in range(n)
        ]
        store = RecordStore(
            schema, {"vec": rng.normal(size=(n, 5)), "s": sets}
        )
        dataset = Dataset(
            name=f"rand{seed}",
            store=store,
            labels=rng.integers(-1, 6, size=n),
            rule=RULES["or"],
            info={"seed": seed},
        )
        path = tmp_path / "rand.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert len(loaded) == n
        assert loaded.labels.dtype == dataset.labels.dtype
        assert np.array_equal(loaded.labels, dataset.labels)
        vec = loaded.store.vectors("vec")
        assert vec.dtype == np.float64
        assert np.array_equal(vec, store.vectors("vec"))
        for a, b in zip(
            store.shingle_sets("s"), loaded.store.shingle_sets("s")
        ):
            assert b.dtype == np.int64
            assert np.array_equal(a, b)
        assert rule_to_spec(loaded.rule) == rule_to_spec(dataset.rule)

    def test_empty_dataset_roundtrip(self, tmp_path):
        """A zero-record dataset must come back with zero records, not a
        phantom empty set (np.split on empty bounds yields one chunk)."""
        from repro import Dataset
        from repro.records import RecordStore, Schema

        store = RecordStore(Schema.single_shingles("s"), {"s": []})
        dataset = Dataset(
            name="empty",
            store=store,
            labels=np.zeros(0, dtype=np.int64),
            rule=RULES["threshold_jaccard"],
            info={},
        )
        path = tmp_path / "empty.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        assert len(loaded) == 0
        assert loaded.store.shingle_sets("s") == []
        assert loaded.labels.size == 0

    def test_filtering_after_reload(self, tiny_spotsigs, tmp_path):
        from repro import AdaptiveLSH

        path = tmp_path / "ds.npz"
        save_dataset(tiny_spotsigs, path)
        loaded = load_dataset(path)
        before = AdaptiveLSH(tiny_spotsigs.store, tiny_spotsigs.rule, config=AdaptiveConfig(seed=4, cost_model="analytic")).run(3)
        after = AdaptiveLSH(loaded.store, loaded.rule, config=AdaptiveConfig(seed=4, cost_model="analytic")).run(3)
        assert [c.size for c in before.clusters] == [
            c.size for c in after.clusters
        ]
