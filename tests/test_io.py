"""Tests for rule/dataset serialization."""

import numpy as np
import pytest

from repro import (
    AndRule,
    CosineDistance,
    EuclideanDistance,
    JaccardDistance,
    OrRule,
    ThresholdRule,
    WeightedAverageRule,
    load_dataset,
    rule_from_spec,
    rule_to_spec,
    save_dataset,
)
from repro.errors import ConfigurationError


RULES = {
    "threshold_cosine": ThresholdRule(CosineDistance("vec"), 0.1),
    "threshold_jaccard": ThresholdRule(JaccardDistance("s"), 0.6),
    "threshold_jaccard_bbit": ThresholdRule(
        JaccardDistance("s", minhash_bits=4), 0.6
    ),
    "threshold_euclidean": ThresholdRule(
        EuclideanDistance("vec", scale=3.0, bucket_width=0.2), 0.5
    ),
    "weighted": WeightedAverageRule(
        [JaccardDistance("a"), JaccardDistance("b")], [0.3, 0.7], 0.4
    ),
    "and": AndRule(
        [
            ThresholdRule(JaccardDistance("a"), 0.5),
            ThresholdRule(JaccardDistance("b"), 0.7),
        ]
    ),
    "or": OrRule(
        [
            ThresholdRule(CosineDistance("vec"), 0.2),
            ThresholdRule(JaccardDistance("s"), 0.5),
        ]
    ),
}


@pytest.mark.parametrize("name", sorted(RULES))
def test_rule_roundtrip(name):
    rule = RULES[name]
    spec = rule_to_spec(rule)
    rebuilt = rule_from_spec(spec)
    assert rule_to_spec(rebuilt) == spec


def test_rule_spec_is_json_serializable():
    import json

    for rule in RULES.values():
        json.dumps(rule_to_spec(rule))


def test_unknown_rule_kind_rejected():
    with pytest.raises(ConfigurationError):
        rule_from_spec({"kind": "mystery"})


def test_unknown_distance_kind_rejected():
    with pytest.raises(ConfigurationError):
        rule_from_spec(
            {"kind": "threshold", "distance": {"kind": "hamming"}, "threshold": 0.5}
        )


class TestDatasetRoundtrip:
    def test_spotsigs_roundtrip(self, tiny_spotsigs, tmp_path):
        path = tmp_path / "spotsigs.npz"
        save_dataset(tiny_spotsigs, path)
        loaded = load_dataset(path)
        assert loaded.name == tiny_spotsigs.name
        assert np.array_equal(loaded.labels, tiny_spotsigs.labels)
        original = tiny_spotsigs.store.shingle_sets("signatures")
        restored = loaded.store.shingle_sets("signatures")
        for a, b in zip(original, restored):
            assert np.array_equal(a, b)
        assert rule_to_spec(loaded.rule) == rule_to_spec(tiny_spotsigs.rule)

    def test_images_roundtrip(self, tiny_images, tmp_path):
        path = tmp_path / "images.npz"
        save_dataset(tiny_images, path)
        loaded = load_dataset(path)
        assert np.allclose(
            loaded.store.vectors("histogram"),
            tiny_images.store.vectors("histogram"),
        )

    def test_cora_roundtrip_keeps_json_info(self, tiny_cora, tmp_path):
        path = tmp_path / "cora.npz"
        save_dataset(tiny_cora, path)
        loaded = load_dataset(path)
        # The raw-string previews are JSON-serializable and survive.
        assert loaded.info["raw"][0] == tiny_cora.info["raw"][0]
        assert len(loaded) == len(tiny_cora)

    def test_filtering_after_reload(self, tiny_spotsigs, tmp_path):
        from repro import AdaptiveLSH

        path = tmp_path / "ds.npz"
        save_dataset(tiny_spotsigs, path)
        loaded = load_dataset(path)
        before = AdaptiveLSH(
            tiny_spotsigs.store, tiny_spotsigs.rule, seed=4, cost_model="analytic"
        ).run(3)
        after = AdaptiveLSH(
            loaded.store, loaded.rule, seed=4, cost_model="analytic"
        ).run(3)
        assert [c.size for c in before.clusters] == [
            c.size for c in after.clusters
        ]
