"""The exception hierarchy is catchable at the base."""

import pytest

from repro.errors import (
    CalibrationError,
    ConfigurationError,
    DatasetError,
    DesignError,
    ReproError,
    SchemaError,
)
from repro.core.config import AdaptiveConfig


@pytest.mark.parametrize(
    "exc",
    [SchemaError, DesignError, ConfigurationError, CalibrationError, DatasetError],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_public_api_raises_catchable_errors(tiny_spotsigs):
    from repro import AdaptiveLSH

    with pytest.raises(ReproError):
        AdaptiveLSH(tiny_spotsigs.store, tiny_spotsigs.rule, config=AdaptiveConfig(selection="nope"))
