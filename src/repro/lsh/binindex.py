"""Persistent per-(level, table) bin index: CSR collision groups from
u64-fingerprint grouping, plus delta candidate generation for streams.

:meth:`~repro.lsh.scheme.HashingScheme.iter_table_collisions` re-sorts
every record's packed key bytes for every table at every level on every
``run``/``refine`` — an O(tables · m · key_bytes) memcmp argsort that
dominates once the hash values themselves are incremental (Property 4).
This module makes the bucket *structure* incremental too:

* **Fingerprint grouping** — each (record, table) key row is mixed to
  one ``uint64`` fingerprint (splitmix64 over the key's big-endian
  words).  Grouping then argsorts 8-byte integers instead of
  memcmp-sorting 20-100-byte keys, and only rows inside multi-member
  fingerprint runs are touched byte-wise again.  A byte-exact tie-break
  pass inside fingerprint-equal runs plus a final representative
  reorder keep the emitted collision groups bit-identical — content
  *and* yield order — to the legacy void-argsort path (the yield order
  matters: it is the union order seen by the parent-pointer forest).
* **CSR output** — groups come back as ``(members, starts)`` arrays,
  not a Python list of per-bucket arrays, so the consumer unions whole
  edge arrays per table instead of looping bucket by bucket.
* **Fingerprint persistence** — each :class:`LevelBins` caches the
  ``(n_records, n_tables)`` fingerprint matrix under a byte budget with
  the same pass-through degradation as
  :class:`~repro.lsh.keycache.LevelKeyCache`: over budget means
  "compute, don't store", never "fail".
* **Delta candidate generation** — :class:`H1DeltaIndex` keeps the
  first level's per-table ``(fingerprint, rid)`` arrays sorted across
  insert batches.  A new batch merge-inserts its keys and emits
  candidate pairs from touched buckets only, so a streaming refine
  after ``insert_records`` re-groups the arriving records instead of
  the whole store.

Byte comparisons ride on one invariant: key bytes interpreted as
big-endian ``uint64`` words (zero-padded at the tail) compare, word
tuple against word tuple, exactly like ``memcmp`` on the raw bytes —
so ``np.lexsort`` over the word columns reproduces the legacy
byte-lexicographic order.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterator
from typing import TYPE_CHECKING, Any

import numpy as np

from ..errors import ConfigurationError
from ..kernels.reference import _splitmix64
from ..obs.clock import monotonic
from ..types import AnyArray, BoolArray, IntArray

if TYPE_CHECKING:
    from ..obs.observer import RunObserver
    from ..structures.union_find import UnionFind
    from .keycache import LevelEntry
    from .scheme import HashingScheme

#: Environment variable consulted when ``AdaptiveConfig.bin_index`` is
#: ``None``; the CLI's ``--no-bin-index`` flag sets it so the knob
#: reaches every component without threading a parameter through each
#: call site (same pattern as ``REPRO_PAIR_MEMO``).
BIN_INDEX_ENV = "REPRO_BIN_INDEX"

#: Default cap on total index bytes (fingerprint matrices plus delta
#: arrays) per method instance; structures that would exceed it degrade
#: to pass-through like the key cache.
DEFAULT_MAX_BYTES = 128 << 20

#: One CSR table: ``members`` concatenates the row positions of every
#: collision group; ``starts[i]:starts[i+1]`` spans group ``i``.
CsrGroups = tuple[IntArray, IntArray]

#: Lazily fetched packed key rows plus their per-table byte layout.
RowsFn = Callable[[], tuple[AnyArray, list[tuple[int, int]]]]


def resolve_bin_index(flag: bool | None = None) -> bool:
    """Resolve the ``bin_index`` knob to a concrete on/off decision.

    ``None`` falls back to the ``REPRO_BIN_INDEX`` environment variable
    and to *enabled* when that is unset.
    """
    if flag is not None:
        return bool(flag)
    raw = os.environ.get(BIN_INDEX_ENV, "").strip().lower()
    if not raw:
        return True
    if raw in ("1", "true", "yes", "on"):
        return True
    if raw in ("0", "false", "no", "off"):
        return False
    raise ConfigurationError(
        f"{BIN_INDEX_ENV} must be a boolean flag (0/1), got {raw!r}"
    )


# ----------------------------------------------------------------------
# Key words and fingerprints
def pack_key_words(rows: AnyArray) -> AnyArray:
    """Big-endian ``uint64`` words of packed key rows (``(m, nbytes)``
    uint8), zero-padded so tuple order equals ``memcmp`` order."""
    rows = np.ascontiguousarray(rows, dtype=np.uint8)
    m, nbytes = rows.shape
    nwords = (nbytes + 7) // 8
    if nbytes == nwords * 8:
        return rows.view(">u8").astype(np.uint64)
    padded = np.zeros((m, nwords * 8), dtype=np.uint8)
    padded[:, :nbytes] = rows
    return padded.view(">u8").astype(np.uint64)


def strided_key_words(rows: AnyArray, offset: int, nbytes: int) -> AnyArray:
    """Big-endian ``uint64`` words of ``rows[:, offset:offset+nbytes]``.

    Accumulates the slice column by column, so a table's span of a
    cached key-row matrix feeds the fingerprint mix without the
    per-table contiguous copy the legacy grouping path makes.
    """
    words = np.zeros((rows.shape[0], (nbytes + 7) // 8), dtype=np.uint64)
    for b in range(nbytes):
        shift = np.uint64(8 * (7 - (b & 7)))
        words[:, b >> 3] |= rows[:, offset + b].astype(np.uint64) << shift
    return words


def fingerprint_words(words: AnyArray) -> AnyArray:
    """One splitmix64-mixed ``uint64`` fingerprint per word row.

    Equal key rows always fingerprint equally; unequal rows collide
    with probability ~2^-64 per pair, and the grouping tie-break makes
    even those collisions harmless.
    """
    fp = _splitmix64(words[:, 0])
    for j in range(1, words.shape[1]):
        fp = _splitmix64(fp ^ words[:, j])
    return np.asarray(fp, dtype=np.uint64)


def _table_fingerprints(
    rows: AnyArray, layout: list[tuple[int, int]]
) -> AnyArray:
    """Per-table fingerprints of packed key rows: ``(m, n_tables)``."""
    out = np.empty((rows.shape[0], len(layout)), dtype=np.uint64)
    for t, (offset, nbytes) in enumerate(layout):
        out[:, t] = fingerprint_words(strided_key_words(rows, offset, nbytes))
    return out


# ----------------------------------------------------------------------
# CSR grouping
def _empty_csr() -> CsrGroups:
    return np.empty(0, dtype=np.int64), np.zeros(1, dtype=np.int64)


def group_table(
    fps: AnyArray, words_of: Callable[[IntArray], AnyArray]
) -> CsrGroups:
    """CSR collision groups of one table from per-row fingerprints.

    ``words_of(positions)`` must return the big-endian key words of the
    given row positions; it is called once, with only the rows that sit
    inside multi-member fingerprint runs (the collision candidates).

    The output is bit-identical — group content *and* emission order —
    to the legacy void-argsort grouping: groups are >= 2 rows sharing
    the exact key bytes, emitted in byte-lexicographic key order, with
    members in ascending row position.
    """
    m = int(fps.size)
    if m < 2:
        return _empty_csr()
    order = np.argsort(fps, kind="stable").astype(np.int64, copy=False)
    sfp = fps[order]
    run_change = np.empty(m, dtype=bool)
    run_change[0] = True
    run_change[1:] = sfp[1:] != sfp[:-1]
    run_starts = np.nonzero(run_change)[0]
    run_lens = np.append(run_starts[1:], m) - run_starts
    multi = run_lens >= 2
    if not bool(multi.any()):
        return _empty_csr()
    mstarts = run_starts[multi].astype(np.int64, copy=False)
    mlens = run_lens[multi].astype(np.int64, copy=False)
    bounds = np.zeros(mlens.size + 1, dtype=np.int64)
    np.cumsum(mlens, out=bounds[1:])
    total = int(bounds[-1])
    sel = (
        np.arange(total, dtype=np.int64)
        - np.repeat(bounds[:-1], mlens)
        + np.repeat(mstarts, mlens)
    )
    cand = order[sel]
    words = words_of(cand)
    run_id = np.repeat(np.arange(mlens.size, dtype=np.int64), mlens)
    change = np.empty(total, dtype=bool)
    change[0] = True
    change[1:] = (run_id[1:] != run_id[:-1]) | (
        (words[1:] != words[:-1]).any(axis=1)
    )
    is_run_head = np.zeros(total, dtype=bool)
    is_run_head[bounds[:-1]] = True
    extra = change & ~is_run_head
    if bool(extra.any()):
        # True 64-bit fingerprint collisions: a run holds more than one
        # distinct key.  Stable-sort each affected run by its key words
        # so equal keys become contiguous while rows within a key keep
        # their ascending positions.
        for r in np.unique(run_id[extra]).tolist():
            s, e = int(bounds[r]), int(bounds[r + 1])
            sub = np.lexsort(words[s:e].T[::-1])
            cand[s:e] = cand[s:e][sub]
            words[s:e] = words[s:e][sub]
        change[1:] = (run_id[1:] != run_id[:-1]) | (
            (words[1:] != words[:-1]).any(axis=1)
        )
    g_starts = np.nonzero(change)[0].astype(np.int64, copy=False)
    g_ends = np.append(g_starts[1:], total)
    keep = (g_ends - g_starts) >= 2
    if not bool(keep.any()):
        return _empty_csr()
    g_starts = g_starts[keep]
    g_ends = g_ends[keep]
    if g_starts.size > 1:
        # The legacy path emits buckets in byte-lexicographic key
        # order; fingerprint runs are ordered by fingerprint instead,
        # so reorder the kept groups by their (distinct) representative
        # key words.
        rep_order = np.lexsort(words[g_starts].T[::-1])
        g_starts = g_starts[rep_order]
        g_ends = g_ends[rep_order]
    lens = g_ends - g_starts
    starts = np.zeros(lens.size + 1, dtype=np.int64)
    np.cumsum(lens, out=starts[1:])
    pos = (
        np.arange(int(starts[-1]), dtype=np.int64)
        - np.repeat(starts[:-1], lens)
        + np.repeat(g_starts, lens)
    )
    return cand[pos], starts


def csr_to_groups(members: IntArray, starts: IntArray) -> list[IntArray]:
    """Explode CSR groups to the legacy list-of-arrays shape (tests)."""
    return [
        members[int(starts[i]) : int(starts[i + 1])]
        for i in range(starts.size - 1)
    ]


# ----------------------------------------------------------------------
class LevelBins:
    """One sequence level's persistent fingerprint matrix plus the CSR
    grouping entry point used by
    :class:`~repro.core.transitive.TransitiveHashingFunction`."""

    def __init__(self, owner: SchemeBinIndex, level: int) -> None:
        self._owner = owner
        self.level = level
        #: Per-table ``(offset, nbytes)`` spans; fixed by the level's
        #: scheme, captured on first use.
        self.layout: list[tuple[int, int]] | None = None
        self._fps: AnyArray | None = None
        self._have: BoolArray = np.zeros(0, dtype=bool)

    def _rows_fn(
        self,
        scheme: HashingScheme,
        rids: IntArray,
        key_cache: LevelEntry | None,
    ) -> RowsFn:
        """Memoized fetch of the packed key rows for ``rids`` — shared
        by the fingerprint fill and the byte tie-break so the key cache
        is consulted once per application."""
        box: list[tuple[AnyArray, list[tuple[int, int]]] | None] = [None]

        def fetch() -> tuple[AnyArray, list[tuple[int, int]]]:
            if box[0] is None:
                if key_cache is not None:
                    box[0] = key_cache.rows(scheme, rids)
                else:
                    box[0] = scheme.table_key_rows(rids)
            return box[0]

        return fetch

    def fingerprints(
        self,
        scheme: HashingScheme,
        rids: IntArray,
        key_cache: LevelEntry | None,
    ) -> tuple[AnyArray, RowsFn]:
        """Per-table fingerprints for ``rids`` (``(len(rids), n_tables)``
        uint64) plus the shared lazy row fetch.

        Cached fingerprints are served without touching key rows at
        all; missing ones are computed through the strided no-copy path
        and stored when the byte budget allows.
        """
        owner = self._owner
        rows_fn = self._rows_fn(scheme, rids, key_cache)
        if self.layout is None:
            rows, layout = rows_fn()
            self.layout = layout
            total = owner.n_records * (len(layout) * 8 + 1)
            if owner.reserve(total):
                self._fps = np.zeros(
                    (owner.n_records, len(layout)), dtype=np.uint64
                )
                self._have = np.zeros(owner.n_records, dtype=bool)
            else:
                owner.degraded += 1
            fps = _table_fingerprints(rows, layout)
            if self._fps is not None:
                self._fps[rids] = fps
                self._have[rids] = True
            owner.record_fp(0, int(rids.size))
            return fps, rows_fn
        if self._fps is None:
            # Over the byte budget: stay a pass-through.
            rows, _ = rows_fn()
            owner.record_fp(0, int(rids.size))
            return _table_fingerprints(rows, self.layout), rows_fn
        known = self._have[rids]
        if not bool(known.all()):
            rows, _ = rows_fn()
            missing = rids[~known]
            self._fps[missing] = _table_fingerprints(
                rows[~known], self.layout
            )
            self._have[missing] = True
        owner.record_fp(int(known.sum()), int(rids.size - known.sum()))
        return self._fps[rids], rows_fn

    def iter_table_groups(
        self,
        scheme: HashingScheme,
        rids: IntArray,
        key_cache: LevelEntry | None = None,
    ) -> Iterator[CsrGroups]:
        """Yield each table's CSR collision groups for ``rids``.

        Group content and yield order are bit-identical to
        :meth:`~repro.lsh.scheme.HashingScheme.iter_table_collisions`
        over the same rows; only the representation (CSR instead of a
        list of arrays) and the work profile differ.
        """
        rids = np.asarray(rids, dtype=np.int64)
        owner = self._owner
        obs = owner.observer
        timed = obs is not None and obs.enabled
        fps, rows_fn = self.fingerprints(scheme, rids, key_cache)
        assert self.layout is not None
        started = 0.0
        for t, (offset, nbytes) in enumerate(self.layout):
            if timed:
                started = monotonic()
            packed = [0]

            def words_of(
                positions: IntArray,
                _offset: int = offset,
                _nbytes: int = nbytes,
                _packed: list[int] = packed,
            ) -> AnyArray:
                rows, _ = rows_fn()
                _packed[0] += int(positions.size) * _nbytes
                return pack_key_words(
                    rows[positions, _offset : _offset + _nbytes]
                )

            members, starts = group_table(fps[:, t], words_of)
            if key_cache is not None:
                # The legacy path copies every row of this table's span
                # through np.ascontiguousarray; the fingerprint path
                # only packed the collision candidates.
                saved = int(rids.size) * nbytes - packed[0]
                if saved > 0:
                    key_cache.record_saved(saved)
            owner.record_group(int(rids.size), int(starts.size - 1))
            if timed:
                assert obs is not None
                obs.histogram("binindex.table_group_seconds").observe(
                    monotonic() - started
                )
            yield members, starts


# ----------------------------------------------------------------------
class SchemeBinIndex:
    """All levels' :class:`LevelBins` plus the shared byte budget,
    counters, and the streaming :class:`H1DeltaIndex` factory.

    One instance lives per :class:`~repro.core.adaptive.AdaptiveLSH`
    (mirroring :class:`~repro.lsh.keycache.LevelKeyCache`), wired onto
    each :class:`~repro.core.transitive.TransitiveHashingFunction`
    during ``_install_prepared_state``.
    """

    def __init__(
        self, n_records: int, max_bytes: int = DEFAULT_MAX_BYTES
    ) -> None:
        self.n_records = int(n_records)
        self.max_bytes = int(max_bytes)
        self._reserved = 0
        self._levels: dict[int, LevelBins] = {}
        #: Optional :class:`~repro.obs.observer.RunObserver`; when set
        #: and enabled, grouping work feeds ``binindex.*`` counters.
        self.observer: RunObserver | None = None
        self.fp_hits = 0
        self.fp_misses = 0
        self.tables_grouped = 0
        self.rows_grouped = 0
        self.collision_groups = 0
        self.delta_batches = 0
        self.delta_rows = 0
        self.delta_pairs = 0
        self.delta_buckets = 0
        #: Structures that fell back to pass-through (or dict tables)
        #: because the byte budget was exhausted.
        self.degraded = 0

    def level(self, level: int) -> LevelBins:
        """The (lazily created) bin index of one sequence level."""
        if level not in self._levels:
            self._levels[level] = LevelBins(self, level)
        return self._levels[level]

    def reserve(self, nbytes: int) -> bool:
        """Try to claim ``nbytes`` of the byte budget."""
        if self._reserved + nbytes > self.max_bytes:
            return False
        self._reserved += nbytes
        return True

    @property
    def indexed_bytes(self) -> int:
        return self._reserved

    def h1_delta(
        self,
        scheme: HashingScheme,
        key_cache: LevelEntry | None,
        state: dict[str, Any] | None = None,
    ) -> H1DeltaIndex | None:
        """A first-level delta index, optionally warm-started from a
        prior index's :meth:`H1DeltaIndex.export_state`.

        Returns ``None`` when a carried state cannot be adopted (table
        layout changed, or its arrays exceed the byte budget) — the
        caller then rebuilds from scratch, which is always correct.
        """
        delta = H1DeltaIndex(self, scheme, self.level(1), key_cache)
        if state is not None and not delta.adopt_state(state):
            return None
        return delta

    def record_fp(self, hits: int, misses: int) -> None:
        self.fp_hits += hits
        self.fp_misses += misses
        obs = self.observer
        if obs is not None and obs.enabled:
            if hits:
                obs.counter("binindex.fp_hits").inc(hits)
            if misses:
                obs.counter("binindex.fp_misses").inc(misses)

    def record_group(self, rows: int, groups: int) -> None:
        self.tables_grouped += 1
        self.rows_grouped += rows
        self.collision_groups += groups
        obs = self.observer
        if obs is not None and obs.enabled:
            obs.counter("binindex.tables_grouped").inc()
            obs.counter("binindex.rows_grouped").inc(rows)
            obs.counter("binindex.collision_groups").inc(groups)

    def record_delta(self, rows: int, pairs: int, buckets: int) -> None:
        self.delta_batches += 1
        self.delta_rows += rows
        self.delta_pairs += pairs
        self.delta_buckets += buckets
        obs = self.observer
        if obs is not None and obs.enabled:
            obs.counter("binindex.delta_rows").inc(rows)
            if pairs:
                obs.counter("binindex.delta_pairs").inc(pairs)
            if buckets:
                obs.counter("binindex.delta_buckets").inc(buckets)

    def stats(self) -> dict[str, Any]:
        """Index summary for run reports (``info["bin_index"]``)."""
        return {
            "levels": len(self._levels),
            "bytes": int(self._reserved),
            "fp_hits": int(self.fp_hits),
            "fp_misses": int(self.fp_misses),
            "tables_grouped": int(self.tables_grouped),
            "rows_grouped": int(self.rows_grouped),
            "collision_groups": int(self.collision_groups),
            "degraded": int(self.degraded),
            "delta": {
                "batches": int(self.delta_batches),
                "rows": int(self.delta_rows),
                "pairs": int(self.delta_pairs),
                "buckets": int(self.delta_buckets),
            },
        }


# ----------------------------------------------------------------------
class H1DeltaIndex:
    """Persistent sorted ``(fingerprint, rid)`` arrays for the first
    level's tables, with delta candidate-pair emission per insert batch.

    The dict-table streaming front-end it replaces maintains one
    invariant: records sharing a table's exact bucket key are connected
    in the union-find.  The delta index maintains the same invariant —
    batch-internal groups are byte-verified through
    :func:`group_table`, and matches against existing buckets are
    byte-verified against the bucket head (with a rare full-run scan
    when 64-bit fingerprints collide) — so the resulting partition, and
    therefore every downstream coarse cluster and refine, is identical.
    """

    def __init__(
        self,
        owner: SchemeBinIndex,
        scheme: HashingScheme,
        bins: LevelBins,
        key_cache: LevelEntry | None,
    ) -> None:
        self._owner = owner
        self._scheme = scheme
        self._bins = bins
        self._key_cache = key_cache
        self._fps: list[AnyArray] = []
        self._rids: list[IntArray] = []

    @property
    def indexed_records(self) -> int:
        return int(self._fps[0].size) if self._fps else 0

    def _rows_for(
        self, rids: IntArray
    ) -> tuple[AnyArray, list[tuple[int, int]]]:
        if self._key_cache is not None:
            return self._key_cache.rows(self._scheme, rids)
        return self._scheme.table_key_rows(rids)

    def export_state(self) -> dict[str, Any]:
        """Carryable view of the sorted per-table arrays.

        Fingerprints are a pure function of each record's key bytes, so
        the state stays valid across the snapshot re-seat of a store
        extension (old records keep their signatures bit-identically).
        """
        return {
            "table_count": self._scheme.table_count,
            "fps": [fp.copy() for fp in self._fps],
            "rids": [rid.copy() for rid in self._rids],
        }

    def adopt_state(self, state: dict[str, Any]) -> bool:
        """Adopt a prior index's arrays; ``False`` leaves this index
        empty (layout mismatch or byte budget exhausted)."""
        if int(state["table_count"]) != self._scheme.table_count:
            return False
        fps = [np.asarray(fp, dtype=np.uint64) for fp in state["fps"]]
        rids = [np.asarray(rid, dtype=np.int64) for rid in state["rids"]]
        if len(fps) != self._scheme.table_count or len(fps) != len(rids):
            return False
        nbytes = sum(fp.size for fp in fps) * 16
        if not self._owner.reserve(nbytes):
            self._owner.degraded += 1
            return False
        self._fps = fps
        self._rids = rids
        return True

    def insert(self, rids: IntArray, uf: UnionFind) -> bool:
        """Merge-insert a batch and union its delta candidate pairs.

        Returns ``False`` — with no state mutated — when the byte
        budget cannot cover the batch; the caller falls back to plain
        dict tables (see ``StreamingTopK._fallback_to_tables``).
        """
        rids = np.asarray(rids, dtype=np.int64)
        if rids.size == 0:
            return True
        fps, rows_fn = self._bins.fingerprints(
            self._scheme, rids, self._key_cache
        )
        layout = self._bins.layout
        assert layout is not None
        if not self._fps:
            self._fps = [
                np.empty(0, dtype=np.uint64) for _ in range(len(layout))
            ]
            self._rids = [
                np.empty(0, dtype=np.int64) for _ in range(len(layout))
            ]
        if not self._owner.reserve(int(rids.size) * len(layout) * 16):
            self._owner.degraded += 1
            return False
        pairs = 0
        buckets = 0
        for t, (offset, nbytes) in enumerate(layout):
            ex_fp, ex_rid = self._fps[t], self._rids[t]
            fp = fps[:, t]
            order = np.argsort(fp, kind="stable").astype(np.int64, copy=False)
            sfp = fp[order]
            srid = rids[order]

            def words_of(
                positions: IntArray,
                _offset: int = offset,
                _nbytes: int = nbytes,
            ) -> AnyArray:
                rows, _ = rows_fn()
                return pack_key_words(
                    rows[positions, _offset : _offset + _nbytes]
                )

            # Batch-internal candidate pairs (byte-verified groups).
            members, starts = group_table(fp, words_of)
            if starts.size > 1:
                lens = np.diff(starts)
                anchors = np.repeat(members[starts[:-1]], lens - 1)
                head_mask = np.zeros(members.size, dtype=bool)
                head_mask[starts[:-1]] = True
                others = members[~head_mask]
                uf.union_edges(rids[anchors], rids[others])
                pairs += int(others.size)
                buckets += int(starts.size - 1)
            # Delta pairs against existing buckets: every new row whose
            # fingerprint hits an existing run is byte-verified against
            # the run head; mismatches scan the run (real fingerprint
            # collisions only).
            if ex_fp.size:
                pos_l = np.searchsorted(ex_fp, sfp, side="left")
                pos_r = np.searchsorted(ex_fp, sfp, side="right")
                midx = np.nonzero(pos_r > pos_l)[0]
                if midx.size:
                    heads = ex_rid[pos_l[midx]]
                    head_rows, _ = self._rows_for(heads)
                    head_words = pack_key_words(
                        head_rows[:, offset : offset + nbytes]
                    )
                    new_words = words_of(order[midx])
                    ok = (new_words == head_words).all(axis=1)
                    uf.union_edges(srid[midx[ok]], heads[ok])
                    pairs += int(ok.sum())
                    buckets += int(midx.size)
                    for j in np.nonzero(~ok)[0].tolist():
                        i = int(midx[j])
                        s, e = int(pos_l[i]), int(pos_r[i])
                        if e - s <= 1:
                            continue
                        run_rids = ex_rid[s:e]
                        run_rows, _ = self._rows_for(run_rids)
                        run_words = pack_key_words(
                            run_rows[:, offset : offset + nbytes]
                        )
                        hit = np.nonzero(
                            (run_words == new_words[j]).all(axis=1)
                        )[0]
                        if hit.size:
                            uf.union(int(srid[i]), int(run_rids[hit[0]]))
                            pairs += 1
                ins = np.searchsorted(ex_fp, sfp, side="right")
                self._fps[t] = np.insert(ex_fp, ins, sfp)
                self._rids[t] = np.insert(ex_rid, ins, srid)
            else:
                self._fps[t] = sfp.copy()
                self._rids[t] = srid.copy()
        self._owner.record_delta(
            int(rids.size) * len(layout), pairs, buckets
        )
        return True
