"""Weighted-average mixture family (paper Definition 7, Theorems 3-4).

For a weighted-average rule ``sum_i alpha_i d_i <= d_thr`` the paper
selects each hash function by (a) drawing field ``i`` with probability
``alpha_i`` and (b) drawing a function from field ``i``'s family.  By
Theorem 3 the resulting family collides with probability exactly
``1 - d_bar(r1, r2)`` — the same linear curve as the constituent
families, but over the *combined* distance — so a weighted-average rule
plugs into scheme design as if it were a single field.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

import numpy as np

from ..errors import ConfigurationError, SnapshotError
from ..records import RecordStore
from ..rngutil import SeedLike, make_rng, rng_from_state, rng_state
from ..types import AnyArray, ArrayLike, FloatArray, IntArray
from .families import HashFamily


class WeightedMixtureFamily(HashFamily):
    """Mixture of per-field families with probabilities ``weights``.

    Hash column ``j`` is permanently assigned to one underlying family
    (drawn once from the weight distribution), so signatures stay
    columnar and incremental like any other family.
    """

    dtype = np.dtype(np.uint32)

    def __init__(
        self,
        store: RecordStore,
        families: Iterable[HashFamily],
        weights: ArrayLike,
        seed: SeedLike = None,
    ) -> None:
        self.families = list(families)
        if not self.families:
            raise ConfigurationError("mixture needs at least one family")
        fields = ",".join(f.field for f in self.families)
        super().__init__(store, fields)
        self.weights: FloatArray = np.asarray(weights, dtype=np.float64)
        if self.weights.size != len(self.families):
            raise ConfigurationError("one weight per family required")
        self._rng = make_rng(seed)
        # assignment[j] = which family provides global hash column j;
        # child_col[j] = that family's own column index.
        self._assignment: IntArray = np.zeros(0, dtype=np.int64)
        self._child_col: IntArray = np.zeros(0, dtype=np.int64)
        self._per_family_count: IntArray = np.zeros(
            len(self.families), dtype=np.int64
        )

    def _ensure_assignment(self, count: int) -> None:
        have = self._assignment.size
        if count <= have:
            return
        extra = count - have
        draws = self._rng.choice(len(self.families), size=extra, p=self.weights)
        cols = np.empty(extra, dtype=np.int64)
        for idx in range(len(self.families)):
            mask = draws == idx
            n_new = int(mask.sum())
            cols[mask] = self._per_family_count[idx] + np.arange(n_new)
            self._per_family_count[idx] += n_new
        self._assignment = np.concatenate([self._assignment, draws])
        self._child_col = np.concatenate([self._child_col, cols])

    def compute(self, rids: IntArray, start: int, stop: int) -> AnyArray:
        self._ensure_assignment(stop)
        rids = np.asarray(rids, dtype=np.int64)
        out = np.empty((rids.size, stop - start), dtype=np.uint32)
        span = np.arange(start, stop)
        for idx, family in enumerate(self.families):
            positions = span[self._assignment[start:stop] == idx]
            if positions.size == 0:
                continue
            child_cols = self._child_col[positions]
            # Child columns of one family arrive in increasing order, so
            # a single contiguous compute covers them; slice afterwards.
            lo, hi = int(child_cols.min()), int(child_cols.max()) + 1
            values = family.compute(rids, lo, hi)
            picked = values[:, child_cols - lo].astype(np.uint32)
            out[:, positions - start] = picked
        return out

    def export_state(self) -> dict[str, Any]:
        return {
            "kind": "mixture",
            "field": self.field,
            "rng": rng_state(self._rng),
            "assignment": self._assignment.copy(),
            "child_col": self._child_col.copy(),
            "per_family_count": self._per_family_count.copy(),
            "children": [child.export_state() for child in self.families],
        }

    def import_state(self, state: dict[str, Any]) -> None:
        if state.get("kind") != "mixture" or state.get("field") != self.field:
            raise SnapshotError(
                f"snapshot state {state.get('kind')!r}[{state.get('field')!r}] "
                f"does not match family mixture[{self.field!r}]"
            )
        children = state["children"]
        if len(children) != len(self.families):
            raise SnapshotError(
                f"snapshot mixture has {len(children)} constituent families "
                f"but this mixture has {len(self.families)}"
            )
        for child, child_state in zip(self.families, children):
            child.import_state(child_state)
        self._assignment = np.asarray(state["assignment"], dtype=np.int64)
        self._child_col = np.asarray(state["child_col"], dtype=np.int64)
        self._per_family_count = np.asarray(
            state["per_family_count"], dtype=np.int64
        )
        self._rng = rng_from_state(state["rng"])
