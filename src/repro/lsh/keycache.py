"""Per-level cache of packed table keys, keyed by ``(level, record_id)``.

Applying sequence function ``H_i`` to a record turns its pool columns
into per-table bucket keys — slicing, concatenating across pools, and
packing bytes.  Hash *values* are already incremental (Property 4, the
:class:`~repro.lsh.families.SignaturePool`), but the key packing was
recomputed on every application.  This cache stores each record's
packed key row per level, so re-applying ``H_i`` to records already
hashed at that level (incremental re-runs, :meth:`refine`, repeated
``run`` calls over the same pools) reuses the bytes instead of
recomputing them.

Correctness rests on two facts: pool columns are deterministic per
column index (columnar-determinism contract), and the byte-level
grouping in :meth:`~repro.lsh.scheme.HashingScheme.iter_table_collisions`
compares exactly these packed bytes — so cached and freshly computed
rows are indistinguishable, bit for bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ..types import AnyArray, BoolArray, IntArray

if TYPE_CHECKING:
    from ..obs.observer import RunObserver
    from .scheme import HashingScheme

#: Default cap on total cached key bytes across all levels; levels that
#: would exceed it degrade to pass-through (compute, don't store).
DEFAULT_MAX_BYTES = 128 << 20


class LevelEntry:
    """Cached packed key rows of one sequence level.

    The row layout (per-table byte spans) is fixed by the level's
    scheme, so it is captured on first use and shared by all rows.
    """

    def __init__(self, cache: LevelKeyCache) -> None:
        self._cache = cache
        self.layout: list[tuple[int, int]] | None = None
        self._data: AnyArray | None = None
        self._filled: BoolArray = np.zeros(cache.n_records, dtype=bool)

    def rows(
        self, scheme: HashingScheme, rids: IntArray
    ) -> tuple[AnyArray, list[tuple[int, int]]]:
        """Packed key rows for ``rids`` (shape ``(len(rids), row_bytes)``,
        uint8) plus the per-table ``(offset, nbytes)`` layout.

        Missing rows are computed through ``scheme.table_key_rows`` and
        stored; known rows are served from the cache.
        """
        cache = self._cache
        if self.layout is None:
            rows, layout = scheme.table_key_rows(rids)
            self.layout = layout
            total = cache.n_records * int(rows.shape[1])
            if cache.reserve(total):
                self._data = np.zeros(
                    (cache.n_records, rows.shape[1]), dtype=np.uint8
                )
                self._data[rids] = rows
                self._filled[rids] = True
            cache.record(0, int(rids.size))
            return rows, layout
        if self._data is None:
            # Over the byte budget: stay a pass-through.
            rows, _ = scheme.table_key_rows(rids)
            cache.record(0, int(rids.size))
            return rows, self.layout
        known = self._filled[rids]
        missing = rids[~known]
        if missing.size:
            fresh, _ = scheme.table_key_rows(missing)
            self._data[missing] = fresh
            self._filled[missing] = True
        cache.record(int(known.sum()), int(missing.size))
        return self._data[rids], self.layout

    def record_saved(self, nbytes: int) -> None:
        """Forward copy-avoidance accounting to the shared cache."""
        self._cache.record_saved(nbytes)


class LevelKeyCache:
    """All levels' :class:`LevelEntry` objects plus shared accounting."""

    def __init__(
        self, n_records: int, max_bytes: int = DEFAULT_MAX_BYTES
    ) -> None:
        self.n_records = int(n_records)
        self.max_bytes = int(max_bytes)
        self._reserved = 0
        self._levels: dict[int, LevelEntry] = {}
        #: Records served from / added to the cache (work counters).
        self.hits = 0
        self.misses = 0
        #: Key bytes consumers read in place (fingerprint path) that
        #: the legacy grouping path would have copied per table.
        self.bytes_saved = 0
        #: Optional :class:`~repro.obs.observer.RunObserver`; when set
        #: and enabled, lookups feed ``sigcache.*`` counters.
        self.observer: RunObserver | None = None

    def entry(self, level: int) -> LevelEntry:
        """The (lazily created) cache entry for one sequence level."""
        if level not in self._levels:
            self._levels[level] = LevelEntry(self)
        return self._levels[level]

    def reserve(self, nbytes: int) -> bool:
        """Try to claim ``nbytes`` of the byte budget."""
        if self._reserved + nbytes > self.max_bytes:
            return False
        self._reserved += nbytes
        return True

    @property
    def cached_bytes(self) -> int:
        return self._reserved

    def record(self, hits: int, misses: int) -> None:
        self.hits += hits
        self.misses += misses
        obs = self.observer
        if obs is not None and obs.enabled:
            if hits:
                obs.counter("sigcache.hits").inc(hits)
            if misses:
                obs.counter("sigcache.misses").inc(misses)

    def record_saved(self, nbytes: int) -> None:
        """Count cached key bytes served without the per-table
        contiguous copy (:mod:`repro.lsh.binindex` fingerprint path)."""
        self.bytes_saved += int(nbytes)
        obs = self.observer
        if obs is not None and obs.enabled and nbytes:
            obs.counter("sigcache.bytes_saved").inc(int(nbytes))

    def stats(self) -> dict[str, Any]:
        """Cache summary for run reports."""
        return {
            "levels": len(self._levels),
            "bytes": int(self._reserved),
            "hits": int(self.hits),
            "misses": int(self.misses),
            "bytes_saved": int(self.bytes_saved),
        }
