"""P-stable (Gaussian projection) LSH family for Euclidean distance.

Hash function ``j`` is ``h_j(v) = floor((a_j . v + b_j) / r)`` with
``a_j ~ N(0, I)`` and ``b_j ~ U(0, r)`` (Datar et al.); ``r`` is the
absolute bucket width.  Bucket indices are folded into uint32 for
signature storage (a 2^-32 false-collision rate, same convention as
minhash).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import ConfigurationError, SnapshotError
from ..records import RecordStore
from ..rngutil import SeedLike, make_rng, rng_from_state, rng_state, spawn
from ..types import AnyArray, ArrayLike, FloatArray, IntArray
from .families import HashFamily


class PStableFamily(HashFamily):
    """Quantized Gaussian projections over one dense vector field."""

    dtype = np.dtype(np.uint32)

    def __init__(
        self,
        store: RecordStore,
        field: str,
        bucket_width: float,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(store, field)
        if bucket_width <= 0.0:
            raise ConfigurationError(
                f"bucket_width must be positive, got {bucket_width}"
            )
        self.bucket_width = float(bucket_width)
        # Separate streams for directions and offsets keep column j's
        # parameters independent of how requests were chunked.
        self._dir_rng, self._off_rng = spawn(make_rng(seed), 2)
        dim = store.vectors(field).shape[1]
        self._directions: FloatArray = np.zeros((dim, 0), dtype=np.float64)
        self._offsets: FloatArray = np.zeros(0, dtype=np.float64)

    @property
    def dim(self) -> int:
        return int(self._directions.shape[0])

    def _ensure_params(self, count: int) -> None:
        have = self._directions.shape[1]
        if count <= have:
            return
        extra = count - have
        # (extra, dim) then transpose: prefix-stable draws regardless of
        # how requests are chunked (same convention as hyperplanes).
        directions = self._dir_rng.standard_normal((extra, self.dim)).T
        offsets = self._off_rng.uniform(0.0, self.bucket_width, size=extra)
        self._directions = np.hstack([self._directions, directions])
        self._offsets = np.concatenate([self._offsets, offsets])

    def compute(self, rids: IntArray, start: int, stop: int) -> AnyArray:
        self._ensure_params(stop)
        vectors = self.store.vectors(self.field)[np.asarray(rids, dtype=np.int64)]
        projections = vectors @ self._directions[:, start:stop]
        buckets = np.floor(
            (projections + self._offsets[start:stop]) / self.bucket_width
        ).astype(np.int64)
        return (buckets & 0xFFFFFFFF).astype(np.uint32)

    def parallel_payload(self, count: int) -> dict[str, Any] | None:
        self._ensure_params(count)
        return {
            "kind": "pstable",
            "field": self.field,
            "options": {"bucket_width": self.bucket_width},
            "params": {
                "directions": np.ascontiguousarray(
                    self._directions[:, :count]
                ),
                "offsets": self._offsets[:count].copy(),
            },
        }

    def adopt_params(self, params: dict[str, Any]) -> None:
        directions = params["directions"]
        if directions.shape[1] > self._directions.shape[1]:
            self._directions = directions
            self._offsets = params["offsets"]

    def export_state(self) -> dict[str, Any]:
        return {
            "kind": "pstable",
            "field": self.field,
            "bucket_width": self.bucket_width,
            "dir_rng": rng_state(self._dir_rng),
            "off_rng": rng_state(self._off_rng),
            "directions": self._directions.copy(),
            "offsets": self._offsets.copy(),
        }

    def import_state(self, state: dict[str, Any]) -> None:
        if state.get("kind") != "pstable" or state.get("field") != self.field:
            raise SnapshotError(
                f"snapshot state {state.get('kind')!r}[{state.get('field')!r}] "
                f"does not match family pstable[{self.field!r}]"
            )
        width = float(state.get("bucket_width", 0.0))
        if not np.isclose(width, self.bucket_width):
            raise SnapshotError(
                f"snapshot bucket_width {width} does not match family "
                f"bucket_width {self.bucket_width}"
            )
        directions = np.asarray(state["directions"], dtype=np.float64)
        if directions.shape[0] != self.dim:
            raise SnapshotError(
                f"snapshot directions have dim {directions.shape[0]} but the "
                f"store field {self.field!r} has dim {self.dim}"
            )
        self._directions = directions
        self._offsets = np.asarray(state["offsets"], dtype=np.float64)
        self._dir_rng = rng_from_state(state["dir_rng"])
        self._off_rng = rng_from_state(state["off_rng"])

    def collision_prob(self, x: ArrayLike) -> FloatArray:
        from ..distance.euclidean import pstable_collision_prob

        # ``x`` arrives in the caller's normalized units; families are
        # always created through EuclideanDistance.make_family, which
        # passes an absolute bucket width matched to the normalization.
        return pstable_collision_prob(np.asarray(x, dtype=np.float64))
