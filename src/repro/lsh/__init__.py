"""Locality-sensitive hashing substrate (paper §3, §5, Appendices A-C)."""

from .binindex import H1DeltaIndex, LevelBins, SchemeBinIndex, resolve_bin_index
from .design import GroupDesign, SchemeDesign, design_scheme, design_sequence
from .families import HashFamily, SignaturePool
from .hyperplanes import RandomHyperplaneFamily
from .minhash import MinHashFamily
from .mixture import WeightedMixtureFamily
from .probability import (
    and_or_collision_prob,
    collision_prob_curve,
    integrate_curve,
)
from .scheme import HashingScheme, PoolUse, TableGroup

__all__ = [
    "HashFamily",
    "SignaturePool",
    "RandomHyperplaneFamily",
    "MinHashFamily",
    "WeightedMixtureFamily",
    "and_or_collision_prob",
    "collision_prob_curve",
    "integrate_curve",
    "HashingScheme",
    "TableGroup",
    "PoolUse",
    "design_scheme",
    "design_sequence",
    "SchemeDesign",
    "GroupDesign",
    "SchemeBinIndex",
    "LevelBins",
    "H1DeltaIndex",
    "resolve_bin_index",
]
