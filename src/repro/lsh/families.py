"""Hash-family protocol and the incremental signature pool.

Property 4 of the clustering-function sequence (incremental
computation) is implemented here: each record's hash values are cached
in a :class:`SignaturePool`, so a later function in the sequence — one
that needs more hash values for the same family — only pays for the
*new* columns.  The pool also keeps the work counters that the cost
model and the experiment harness read.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any

import numpy as np

from ..errors import SnapshotError
from ..obs.clock import monotonic
from ..records import RecordStore
from ..types import AnyArray, ArrayLike, FloatArray, IntArray

if TYPE_CHECKING:
    from ..obs.observer import RunObserver
    from ..parallel.pool import ExecutionPool


class HashFamily(abc.ABC):
    """A locality-sensitive family producing integer hash values.

    Implementations must be *columnar*: hash function ``j`` is the
    ``j``-th column of the family's (conceptually infinite) function
    pool, so signatures extend deterministically as more columns are
    requested.
    """

    #: NumPy dtype of produced hash values.
    dtype: np.dtype[Any]

    def __init__(self, store: RecordStore, field: str) -> None:
        self.store = store
        self.field = field

    @abc.abstractmethod
    def compute(self, rids: IntArray, start: int, stop: int) -> AnyArray:
        """Hash values of functions ``[start, stop)`` for ``rids``.

        Returns an array of shape ``(len(rids), stop - start)``.
        """

    def collision_prob(self, x: ArrayLike) -> FloatArray:
        """``p(x)`` for this family; both paper families are ``1 - x``."""
        arr = np.asarray(x, dtype=np.float64)
        return np.clip(1.0 - arr, 0.0, 1.0)

    def parallel_payload(self, count: int) -> dict[str, Any] | None:
        """Picklable description of this family's first ``count`` hash
        functions, for dispatching ``compute`` to worker processes.

        Parameters are drawn *here in the parent* (never in workers) so
        the R1 randomness funnel and columnar determinism are
        unaffected by chunking.  The default ``None`` marks a family as
        serial-only — its signature batches are computed in-process.
        """
        return None

    def adopt_params(self, params: dict[str, Any]) -> None:
        """Adopt parent-drawn parameters inside a worker process.

        Only families that return a :meth:`parallel_payload` need to
        implement this; ``params`` is that payload's ``"params"`` dict.
        """
        raise NotImplementedError(
            f"{type(self).__name__} is serial-only (no parallel payload)"
        )

    def export_state(self) -> dict[str, Any]:
        """Serializable family state: drawn parameters plus RNG lineage.

        The state must contain everything needed so that, on a family
        rebuilt over the *same store/field*, :meth:`import_state`
        reproduces both the already-drawn hash columns and every future
        draw (the RNG stream position).  Store-derived data (e.g.
        scrambled shingle sets) is *not* part of the state — it is
        rebuilt deterministically from the store.
        """
        raise SnapshotError(
            f"{type(self).__name__} does not support index snapshots"
        )

    def import_state(self, state: dict[str, Any]) -> None:
        """Adopt :meth:`export_state` output on a freshly built family."""
        raise SnapshotError(
            f"{type(self).__name__} does not support index snapshots"
        )

    @property
    def label(self) -> str:
        """Short family identifier used in metric names and reports."""
        return f"{type(self).__name__}[{self.field}]"


class SignaturePool:
    """Per-record cache of hash values for one :class:`HashFamily`.

    The pool owns a ``(n, capacity)`` value matrix plus a per-record
    fill count.  ``signatures(rids, count)`` extends only the missing
    columns of only the requested records — this is exactly the
    incremental-computation property the adaptive algorithm exploits.
    """

    def __init__(self, family: HashFamily, name: str = "pool") -> None:
        self.family = family
        self.name = name
        n = len(family.store)
        self._filled: IntArray = np.zeros(n, dtype=np.int64)
        self._data: AnyArray = np.zeros((n, 0), dtype=family.dtype)
        #: Total hash values ever computed (work counter).
        self.hashes_computed = 0
        #: Wall-time spent in :meth:`HashFamily.compute` (only measured
        #: while an enabled observer is attached; see :attr:`observer`).
        self.hash_seconds = 0.0
        #: Optional :class:`~repro.obs.observer.RunObserver`; when set
        #: and enabled, :meth:`ensure` times hash computation and feeds
        #: per-pool counters/histograms into its metrics registry.
        self.observer: RunObserver | None = None
        #: Optional :class:`~repro.parallel.pool.ExecutionPool`; when
        #: set, :meth:`ensure` offers each per-level batch to it and
        #: falls back to in-process compute when the pool declines
        #: (serial pool, batch below threshold, serial-only family).
        self.executor: ExecutionPool | None = None

    def __len__(self) -> int:
        return int(self._filled.shape[0])

    @property
    def capacity(self) -> int:
        return int(self._data.shape[1])

    def filled(self, rid: int) -> int:
        """How many hash values are cached for ``rid``."""
        return int(self._filled[rid])

    def _grow(self, needed: int) -> None:
        if needed <= self.capacity:
            return
        new_cap = max(needed, max(8, self.capacity * 2))
        grown = np.zeros((len(self), new_cap), dtype=self._data.dtype)
        if self.capacity:
            grown[:, : self.capacity] = self._data
        self._data = grown

    def ensure(self, rids: ArrayLike, count: int) -> None:
        """Make sure every record in ``rids`` has ``count`` hash values."""
        rids = np.asarray(rids, dtype=np.int64)
        self._grow(count)
        pending = rids[self._filled[rids] < count]
        if pending.size == 0:
            return
        obs = self.observer
        timed = obs is not None and obs.enabled
        before = 0
        started = 0.0
        if timed:
            before = self.hashes_computed
            started = monotonic()
        # Records arrive at a handful of distinct fill levels (one per
        # earlier budget), so batching by level keeps compute() calls few.
        levels = np.unique(self._filled[pending])
        for level in levels:
            batch = pending[self._filled[pending] == level]
            values = None
            if self.executor is not None:
                values = self.executor.compute_signatures(
                    self.family, batch, int(level), count
                )
            if values is None:
                values = self.family.compute(batch, int(level), count)
            self._data[batch, int(level):count] = values
            self._filled[batch] = count
            self.hashes_computed += int(batch.size) * (count - int(level))
        if timed:
            assert obs is not None
            elapsed = monotonic() - started
            self.hash_seconds += elapsed
            obs.counter(f"hash.computed.{self.name}").inc(
                self.hashes_computed - before
            )
            obs.histogram(f"hash.seconds.{self.name}").observe(elapsed)

    def stats(self) -> dict[str, Any]:
        """Per-pool work summary for run reports."""
        return {
            "name": self.name,
            "family": self.family.label,
            "hashes_computed": int(self.hashes_computed),
            "seconds": float(self.hash_seconds),
        }

    # ------------------------------------------------------------------
    # snapshot support
    # ------------------------------------------------------------------
    def export_columns(self) -> tuple[AnyArray, IntArray]:
        """Copies of the cached value matrix and the per-record fill
        counts, for index snapshots (dtype-exact)."""
        return self._data.copy(), self._filled.copy()

    def import_columns(self, data: AnyArray, filled: ArrayLike) -> None:
        """Adopt snapshot columns on a freshly built (empty) pool.

        ``data``/``filled`` may cover only a *prefix* of this pool's
        records — the snapshot-then-extend-store case — in which case
        the remaining rows start empty.  ``hashes_computed`` stays at
        its current value: restored values were paid for by the run
        that captured them, not by this one.
        """
        data = np.asarray(data)
        filled = np.asarray(filled, dtype=np.int64)
        n = len(self)
        rows = int(data.shape[0])
        if rows != filled.size or rows > n:
            raise SnapshotError(
                f"pool {self.name!r}: snapshot covers {rows} records "
                f"(fill counts: {filled.size}) but the store has {n}"
            )
        if data.dtype != self.family.dtype:
            raise SnapshotError(
                f"pool {self.name!r}: snapshot dtype {data.dtype} does not "
                f"match family dtype {self.family.dtype}"
            )
        capacity = int(data.shape[1])
        if filled.size and (filled.min() < 0 or filled.max() > capacity):
            raise SnapshotError(
                f"pool {self.name!r}: fill counts outside [0, {capacity}]"
            )
        self._data = np.zeros((n, capacity), dtype=self.family.dtype)
        self._data[:rows] = data
        self._filled = np.zeros(n, dtype=np.int64)
        self._filled[:rows] = filled

    def signatures(self, rids: ArrayLike, count: int) -> AnyArray:
        """The first ``count`` hash values of each record in ``rids``."""
        rids = np.asarray(rids, dtype=np.int64)
        self.ensure(rids, count)
        return self._data[rids, :count]
