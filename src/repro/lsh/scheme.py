"""(w, z)-schemes and their multi-field generalizations as concrete
hash-table layouts (paper §3, Appendix A/B.2/C).

A :class:`HashingScheme` is a list of :class:`TableGroup`:

* a plain (w, z)-scheme is one group: ``z`` tables, each keyed by ``w``
  hash values from one pool;
* an AND construction (Appendix C.1) is one group whose per-table key
  concatenates ``w_f`` values from each field's pool;
* an OR construction (Appendix C.2) is several groups, one per branch.

Table ``j`` of a group reads pool columns ``[j*w, (j+1)*w)``; because a
later function in the sequence uses larger ``w`` and ``z`` over the
*same pools*, all previously computed hash values are reused
(incremental computation, Property 4).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from ..errors import ConfigurationError
from ..obs.clock import monotonic
from ..types import AnyArray, ArrayLike, IntArray
from .families import SignaturePool

if TYPE_CHECKING:
    from ..obs.observer import RunObserver
    from .keycache import LevelEntry


@dataclass(frozen=True)
class PoolUse:
    """``w`` hash values per table drawn from ``pool``.

    ``offset`` shifts the column window: table ``j`` reads pool columns
    ``offset + [j*w, (j+1)*w)``.  Used by mixed schemes, whose
    remainder table must hash with functions *independent* of the main
    tables'.
    """

    pool: SignaturePool
    w: int
    offset: int = 0

    def __post_init__(self) -> None:
        if self.w < 1:
            raise ConfigurationError(f"w must be >= 1, got {self.w}")
        if self.offset < 0:
            raise ConfigurationError(f"offset must be >= 0, got {self.offset}")


@dataclass(frozen=True)
class TableGroup:
    """``z`` hash tables, each keyed by the concatenation of every
    pool's ``w`` values (AND across pools, OR across tables)."""

    z: int
    uses: tuple[PoolUse, ...]

    def __post_init__(self) -> None:
        if self.z < 1:
            raise ConfigurationError(f"z must be >= 1, got {self.z}")
        if not self.uses:
            raise ConfigurationError("table group needs at least one pool")

    @property
    def hashes_per_table(self) -> int:
        return sum(use.w for use in self.uses)

    @property
    def budget(self) -> int:
        """Total hash functions this group applies per record."""
        return self.z * self.hashes_per_table


class HashingScheme:
    """A concrete hashing layout: one or more OR'd table groups."""

    def __init__(self, groups: Iterable[TableGroup]) -> None:
        self.groups: tuple[TableGroup, ...] = tuple(groups)
        if not self.groups:
            raise ConfigurationError("scheme needs at least one table group")

    @property
    def budget(self) -> int:
        """Total hash functions applied per record by this scheme."""
        return sum(g.budget for g in self.groups)

    @property
    def table_count(self) -> int:
        return sum(g.z for g in self.groups)

    def layout_spec(self) -> list[dict[str, Any]]:
        """JSON-friendly structural description of this scheme.

        Used by index snapshots to verify that a scheme rebuilt on
        restore has exactly the captured table layout (pool names,
        per-table hash counts, offsets, table counts).
        """
        return [
            {
                "z": group.z,
                "uses": [
                    {"pool": use.pool.name, "w": use.w, "offset": use.offset}
                    for use in group.uses
                ],
            }
            for group in self.groups
        ]

    def iter_table_keys(self, rids: ArrayLike) -> Iterator[list[bytes]]:
        """Yield, for every table of every group, the per-record bucket
        keys (as ``bytes``) for the records in ``rids``.

        Signatures are fetched once per (group, pool) and sliced per
        table, so pool extension cost is paid exactly once.  The packed
        row representation (:meth:`table_key_rows`) is serialized with
        one ``tobytes`` call per table and byte-sliced per record —
        the per-row ``tobytes`` loop this replaces dominated streaming
        ingest for wide schemes.
        """
        rows, layout = self.table_key_rows(rids)
        for offset, nbytes in layout:
            buf = rows[:, offset : offset + nbytes].tobytes()
            yield [buf[i : i + nbytes] for i in range(0, len(buf), nbytes)]

    def iter_table_collisions(
        self,
        rids: ArrayLike,
        observer: RunObserver | None = None,
        key_cache: LevelEntry | None = None,
    ) -> Iterator[list[IntArray]]:
        """Yield, for every table, the bucket collision groups: arrays of
        *row positions* (indices into ``rids``) that share a bucket.

        Grouping is done with vectorized sorting rather than per-row
        dictionary inserts — the difference between O(m·z) Python-level
        work and z NumPy passes, which dominates deep-sequence
        functions and large LSH-X budgets.

        ``observer`` (an enabled
        :class:`~repro.obs.observer.RunObserver`) adds per-table
        grouping time and collision-group counts to the run metrics.

        ``key_cache`` (a :class:`~repro.lsh.keycache.LevelEntry`) serves
        each record's packed key row from cache when available.  Cached
        rows are the same raw bytes the uncached path groups on, so
        collision groups — content *and* yield order — are identical.
        """
        timed = observer is not None and observer.enabled
        started = 0.0
        blocks: Iterable[AnyArray]
        if key_cache is not None:
            rows, layout = key_cache.rows(
                self, np.asarray(rids, dtype=np.int64)
            )
            blocks = (
                np.ascontiguousarray(rows[:, off : off + nbytes])
                for off, nbytes in layout
            )
        else:
            blocks = self._iter_table_blocks(rids)
        for block in blocks:
            if timed:
                started = monotonic()
            void = block.view(
                np.dtype((np.void, block.dtype.itemsize * block.shape[1]))
            ).ravel()
            order = np.argsort(void, kind="stable")
            sorted_keys = void[order]
            change = np.empty(order.size, dtype=bool)
            change[0] = True
            change[1:] = sorted_keys[1:] != sorted_keys[:-1]
            starts = np.nonzero(change)[0]
            ends = np.r_[starts[1:], order.size]
            groups = [
                order[s:e] for s, e in zip(starts, ends) if e - s >= 2
            ]
            if timed:
                assert observer is not None
                observer.histogram("scheme.table_group_seconds").observe(
                    monotonic() - started
                )
                observer.counter("scheme.tables_processed").inc()
                observer.counter("scheme.collision_groups").inc(len(groups))
            yield groups

    def table_key_rows(
        self, rids: ArrayLike
    ) -> tuple[AnyArray, list[tuple[int, int]]]:
        """All tables' keys for ``rids`` packed into one uint8 matrix.

        Returns ``(rows, layout)``: ``rows[i]`` is record ``i``'s keys
        for every table concatenated as raw bytes, and ``layout`` holds
        each table's ``(offset, nbytes)`` span.  Byte-slicing a span
        recovers exactly the raw bytes of that table's typed key block,
        so grouping on the slices equals grouping on the blocks.
        """
        parts: list[AnyArray] = []
        layout: list[tuple[int, int]] = []
        offset = 0
        for block in self._iter_table_blocks(rids):
            # A C-contiguous uint8 view widens the last axis to
            # (m, w * itemsize) — the per-record raw bytes.
            part = block.view(np.uint8)
            layout.append((offset, int(part.shape[1])))
            offset += int(part.shape[1])
            parts.append(part)
        rows = parts[0] if len(parts) == 1 else np.hstack(parts)
        return np.ascontiguousarray(rows), layout

    def _iter_table_blocks(self, rids: ArrayLike) -> Iterator[AnyArray]:
        """Per-table contiguous key blocks of shape (m, hashes_per_table)."""
        rids = np.asarray(rids, dtype=np.int64)
        for group in self.groups:
            sigs = [
                np.ascontiguousarray(
                    use.pool.signatures(rids, use.offset + group.z * use.w)
                )
                for use in group.uses
            ]
            for j in range(group.z):
                parts = [
                    sig[:, use.offset + j * use.w : use.offset + (j + 1) * use.w]
                    for sig, use in zip(sigs, group.uses)
                ]
                block = parts[0] if len(parts) == 1 else np.hstack(parts)
                yield np.ascontiguousarray(block)
