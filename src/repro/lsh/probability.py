"""Collision-probability mathematics for AND-OR LSH constructions
(paper Appendix A, §5.1, Figures 5 and 7).

For a locality-sensitive family whose single-function collision
probability at normalized distance ``x`` is ``p(x)``, a (w, z)-scheme
(z tables, w concatenated hashes per table) collides with probability

    P(x) = 1 - (1 - p(x)^w)^z

and the multi-field AND construction of Appendix C.1 with per-field
hash counts ``w_1..w_m`` collides with probability

    P(x_1..x_m) = 1 - (1 - prod_i p_i(x_i)^{w_i})^z.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from typing import TypeAlias

import numpy as np

from ..errors import ConfigurationError
from ..types import ArrayLike, FloatArray

#: A single-function collision-probability curve ``p(x)`` evaluated on
#: a grid of normalized distances (e.g. ``HashFamily.collision_prob``).
PFunc: TypeAlias = Callable[[ArrayLike], FloatArray]

#: Grid resolution used for objective integrals (Equation 1 / 4 / 7).
DEFAULT_GRID = 513


def and_or_collision_prob(p_pow: ArrayLike, z: int) -> FloatArray:
    """``1 - (1 - q)^z`` where ``q = prod_i p_i(x_i)^{w_i}``.

    ``p_pow`` is the already-ANDed per-table collision probability
    (scalar or array); ``z`` the number of OR'd tables.
    """
    q = np.asarray(p_pow, dtype=np.float64)
    # log1p formulation keeps precision when q is close to 0 or 1.
    with np.errstate(divide="ignore"):
        log_miss = z * np.log1p(-np.clip(q, 0.0, 1.0))
    return np.asarray(-np.expm1(log_miss), dtype=np.float64)


def collision_prob_curve(pfunc: PFunc, w: int, z: int, x: ArrayLike) -> FloatArray:
    """``P(x)`` for a (w, z)-scheme over a single family with curve
    ``p = pfunc(x)`` (Figure 5)."""
    x = np.asarray(x, dtype=np.float64)
    return and_or_collision_prob(pfunc(x) ** w, z)


def integrate_curve(values: ArrayLike, grid: ArrayLike) -> float:
    """Trapezoidal integral of sampled curve values over ``grid``."""
    return float(np.trapezoid(values, grid))


def scheme_objective(
    pfunc: PFunc, w: int, z: int, grid_points: int = DEFAULT_GRID
) -> float:
    """Equation (1): area under the (w, z)-scheme collision curve."""
    grid = np.linspace(0.0, 1.0, grid_points)
    return integrate_curve(collision_prob_curve(pfunc, w, z, grid), grid)


def scheme_feasible(
    pfunc: PFunc, w: int, z: int, d_thr: float, epsilon: float
) -> bool:
    """Equation (3): the scheme collides with probability at least
    ``1 - epsilon`` at the threshold distance.

    ``P(x)`` is non-increasing in ``x`` for non-increasing ``p``, so
    checking the boundary ``x = d_thr`` suffices.
    """
    return float(collision_prob_curve(pfunc, w, z, d_thr)) >= 1.0 - epsilon


def and_objective(
    pfuncs: Sequence[PFunc], ws: Sequence[int], z: int, grid_points: int = 129
) -> float:
    """Equation (4): volume under the AND-construction collision
    surface over the unit hypercube (product grid per field)."""
    if not pfuncs:
        raise ConfigurationError("AND construction needs at least one field")
    grid = np.linspace(0.0, 1.0, grid_points)
    # prod_i p_i(x_i)^{w_i} evaluated on the tensor-product grid via
    # iterative outer products, then the z-fold OR.
    q: FloatArray | None = None
    for pfunc, w in zip(pfuncs, ws):
        part = pfunc(grid) ** w
        q = part if q is None else np.multiply.outer(q, part)
    assert q is not None
    prob = and_or_collision_prob(q, z)
    # Iterated trapezoid over every axis.
    for _ in range(prob.ndim):
        prob = np.trapezoid(prob, grid, axis=-1)
    return float(prob)


def and_feasible(
    pfuncs: Sequence[PFunc],
    ws: Sequence[int],
    z: int,
    d_thrs: Sequence[float],
    epsilon: float,
) -> bool:
    """Equation (6): constraint at the all-thresholds corner.

    The AND-construction probability is coordinate-wise non-increasing,
    so the corner ``(d_thr_1, ..., d_thr_m)`` is the binding point.
    """
    q = 1.0
    for pfunc, w, d in zip(pfuncs, ws, d_thrs):
        q *= float(pfunc(np.asarray(d))) ** w
    return float(and_or_collision_prob(q, z)) >= 1.0 - epsilon


def mixed_scheme_prob(
    pfunc: PFunc, w: int, z: int, w_rem: int, x: ArrayLike
) -> FloatArray:
    """§5.1 non-integer-budget extension: ``z`` tables of ``w`` hashes
    plus one remainder table of ``w_rem`` hashes —
    ``1 - (1 - p^w)^z * (1 - p^w_rem)``."""
    x = np.asarray(x, dtype=np.float64)
    p = pfunc(x)
    miss_main = (1.0 - np.clip(p**w, 0.0, 1.0)) ** z
    miss_rem = 1.0 - np.clip(p**w_rem, 0.0, 1.0)
    return np.asarray(1.0 - miss_main * miss_rem, dtype=np.float64)


def mixed_scheme_objective(
    pfunc: PFunc, w: int, z: int, w_rem: int, grid_points: int = DEFAULT_GRID
) -> float:
    """Equation (1) for the mixed scheme."""
    grid = np.linspace(0.0, 1.0, grid_points)
    return integrate_curve(mixed_scheme_prob(pfunc, w, z, w_rem, grid), grid)


def or_combine(branch_probs: Iterable[ArrayLike]) -> FloatArray:
    """Collision probability of OR'd table groups: ``1 - prod (1 - P_b)``."""
    miss: FloatArray | None = None
    for prob in branch_probs:
        part = 1.0 - np.asarray(prob, dtype=np.float64)
        miss = part if miss is None else miss * part
    if miss is None:
        raise ConfigurationError("or_combine needs at least one branch")
    return 1.0 - miss
