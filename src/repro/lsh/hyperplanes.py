"""Random-hyperplane family for cosine distance (paper Example 2,
Appendix A, Example 6).

Hash function ``j`` is a random hyperplane through the origin; the hash
value is which side of the plane the record's vector falls on.  For two
vectors at normalized angle ``x = theta/180`` the single-function
collision probability is exactly ``p(x) = 1 - x``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import SnapshotError
from ..records import RecordStore
from ..rngutil import SeedLike, make_rng, rng_from_state, rng_state
from ..types import AnyArray, FloatArray, IntArray
from .families import HashFamily


class RandomHyperplaneFamily(HashFamily):
    """Sign-of-projection hashes over one dense vector field."""

    dtype = np.dtype(np.uint8)

    def __init__(self, store: RecordStore, field: str, seed: SeedLike = None) -> None:
        super().__init__(store, field)
        self._rng = make_rng(seed)
        dim = store.vectors(field).shape[1]
        self._planes: FloatArray = np.zeros((dim, 0), dtype=np.float64)

    @property
    def dim(self) -> int:
        return int(self._planes.shape[0])

    def _ensure_planes(self, count: int) -> None:
        have = self._planes.shape[1]
        if count <= have:
            return
        # Drawn as (extra, dim) and transposed: NumPy fills row-major,
        # so hyperplane j is the same no matter how requests were
        # chunked — the columnar-determinism contract of HashFamily.
        extra = self._rng.standard_normal((count - have, self.dim)).T
        self._planes = np.hstack([self._planes, extra])

    def compute(self, rids: IntArray, start: int, stop: int) -> AnyArray:
        self._ensure_planes(stop)
        vectors = self.store.vectors(self.field)[np.asarray(rids, dtype=np.int64)]
        projections = vectors @ self._planes[:, start:stop]
        return (projections >= 0.0).astype(np.uint8)

    def parallel_payload(self, count: int) -> dict[str, Any] | None:
        self._ensure_planes(count)
        return {
            "kind": "hyperplane",
            "field": self.field,
            "options": {},
            "params": {"planes": np.ascontiguousarray(self._planes[:, :count])},
        }

    def adopt_params(self, params: dict[str, Any]) -> None:
        planes = params["planes"]
        if planes.shape[1] > self._planes.shape[1]:
            self._planes = planes

    def export_state(self) -> dict[str, Any]:
        return {
            "kind": "hyperplane",
            "field": self.field,
            "rng": rng_state(self._rng),
            "planes": self._planes.copy(),
        }

    def import_state(self, state: dict[str, Any]) -> None:
        if state.get("kind") != "hyperplane" or state.get("field") != self.field:
            raise SnapshotError(
                f"snapshot state {state.get('kind')!r}[{state.get('field')!r}] "
                f"does not match family hyperplane[{self.field!r}]"
            )
        planes = np.asarray(state["planes"], dtype=np.float64)
        if planes.shape[0] != self.dim:
            raise SnapshotError(
                f"snapshot hyperplanes have dim {planes.shape[0]} but the "
                f"store field {self.field!r} has dim {self.dim}"
            )
        self._planes = planes
        self._rng = rng_from_state(state["rng"])
