"""Scheme design: solving the paper's optimization programs.

§5.1 Program (1)-(3) picks, for a hash budget, the (w, z)-scheme that
minimizes the area under the collision curve subject to colliding with
probability at least ``1 - epsilon`` at the distance threshold.
Appendix C generalizes to AND rules (Program 4-6, one table group with
per-field hash counts), OR rules (Program 7-10, one table group per
branch), and weighted-average rules (mixture family, Definition 7).

This module turns a :class:`~repro.distance.rules.MatchRule` tree into

* one :class:`~repro.lsh.families.SignaturePool` per leaf-like rule
  component (shared by the whole function sequence, which is what makes
  computation incremental), and
* a :class:`SchemeDesign` per budget: concrete ``(w..., z)`` values per
  table group.

Search strategy.  For each candidate ``z`` (all distinct values of
``floor(budget / W)``) hashes are allocated greedily across the
components of a group: each step gives one more hash to the component
with the best objective-gain / feasibility-cost ratio, while the
corner-point constraint (Equation 3 / 6) still holds.  The true
objective (Equation 1 / 4) is then evaluated per candidate and the best
feasible design wins.  When *no* allocation is feasible — early, tiny
budgets on strict multi-field rules — the design falls back to the most
conservative scheme (minimum hashes per table, maximum tables), which
maximizes the collision probability at the threshold; the design is
flagged ``feasible=False``.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..distance.rules import (
    AndRule,
    MatchRule,
    OrRule,
    ThresholdRule,
    WeightedAverageRule,
)
from ..errors import ConfigurationError, DesignError, SnapshotError
from ..records import RecordStore
from ..rngutil import SeedLike, make_rng, spawn
from ..types import ArrayLike, FloatArray
from .families import SignaturePool
from .mixture import WeightedMixtureFamily
from .probability import (
    PFunc,
    and_objective,
    and_or_collision_prob,
    mixed_scheme_objective,
)
from .scheme import HashingScheme, PoolUse, TableGroup

#: Default constraint slack (paper Example 5 uses 0.001).
DEFAULT_EPSILON = 1e-3


# ----------------------------------------------------------------------
# design-tree construction
# ----------------------------------------------------------------------
@dataclass
class LeafComponent:
    """One leaf-like rule component: a pool plus its p(x) and threshold."""

    label: str
    pool: SignaturePool
    pfunc: PFunc
    d_thr: float


@dataclass
class DesignContext:
    """Branches of AND-grouped components (OR across branches), with
    their pools — built once per (store, rule) and reused by every
    function in the sequence."""

    store: RecordStore
    rule: MatchRule
    branches: list[list[LeafComponent]]


def _leaf_component(
    store: RecordStore, rule: MatchRule, seed: SeedLike, label: str
) -> LeafComponent:
    if isinstance(rule, ThresholdRule):
        family = rule.distance.make_family(store, seed)
        pool = SignaturePool(family, name=label)
        return LeafComponent(label, pool, rule.distance.collision_prob, rule.threshold)
    if isinstance(rule, WeightedAverageRule):
        rng = make_rng(seed)
        child_seeds = spawn(rng, len(rule.distances) + 1)
        families = [
            d.make_family(store, s)
            for d, s in zip(rule.distances, child_seeds[:-1])
        ]
        mixture = WeightedMixtureFamily(
            store, families, rule.weights, seed=child_seeds[-1]
        )
        pool = SignaturePool(mixture, name=label)

        def pfunc(x: ArrayLike) -> FloatArray:
            return np.clip(1.0 - np.asarray(x, dtype=np.float64), 0.0, 1.0)

        return LeafComponent(label, pool, pfunc, rule.threshold)
    raise ConfigurationError(
        f"unsupported nesting: expected a threshold or weighted-average "
        f"rule, got {type(rule).__name__}"
    )


def build_design_context(
    store: RecordStore, rule: MatchRule, seed: SeedLike = None
) -> DesignContext:
    """Build pools and the branch structure for ``rule`` over ``store``."""
    rule.validate(store)
    rng = make_rng(seed)

    def and_branch(node: MatchRule, prefix: str) -> list[LeafComponent]:
        if isinstance(node, AndRule):
            return [
                _leaf_component(store, child, s, f"{prefix}.and{i}")
                for i, (child, s) in enumerate(
                    zip(node.children, spawn(rng, len(node.children)))
                )
            ]
        return [_leaf_component(store, node, spawn(rng, 1)[0], prefix)]

    if isinstance(rule, OrRule):
        branches = [
            and_branch(child, f"or{i}") for i, child in enumerate(rule.children)
        ]
    else:
        branches = [and_branch(rule, "root")]
    return DesignContext(store, rule, branches)


# ----------------------------------------------------------------------
# per-group (AND construction) design
# ----------------------------------------------------------------------
@dataclass
class GroupDesign:
    """A designed AND table group: per-component hash counts and z.

    ``remainder_w`` > 0 adds one extra table of that many hashes over
    the first component's pool — the §5.1 mixed scheme for budgets that
    ``w`` does not divide.  The optimizer only keeps it when it lowers
    the objective.
    """

    components: list[LeafComponent]
    ws: tuple[int, ...]
    z: int
    feasible: bool
    objective: float
    remainder_w: int = 0

    @property
    def budget(self) -> int:
        return self.z * sum(self.ws) + self.remainder_w

    def to_table_groups(self) -> list[TableGroup]:
        groups = [
            TableGroup(
                self.z,
                tuple(
                    PoolUse(c.pool, w) for c, w in zip(self.components, self.ws)
                ),
            )
        ]
        if self.remainder_w:
            # The remainder table hashes with fresh functions: its pool
            # window starts right after the main tables' columns, so it
            # is independent of them — as the 1-(1-p^w)^z(1-p^w') math
            # assumes.
            groups.append(
                TableGroup(
                    1,
                    (
                        PoolUse(
                            self.components[0].pool,
                            self.remainder_w,
                            offset=self.z * self.ws[0],
                        ),
                    ),
                )
            )
        return groups

    def to_table_group(self) -> TableGroup:
        """Main table group (without the remainder table)."""
        return self.to_table_groups()[0]


def _corner_q(components: Sequence[LeafComponent], ws: Sequence[int]) -> float:
    """prod_c p_c(d_c)^{w_c} — the per-table collision probability at
    the all-thresholds corner."""
    q = 1.0
    for comp, w in zip(components, ws):
        q *= float(comp.pfunc(comp.d_thr)) ** w
    return q


def _group_objective(
    components: Sequence[LeafComponent], ws: Sequence[int], z: int
) -> float:
    # The tensor-product integration grid grows exponentially with the
    # number of components; coarsen it so design stays fast for wide
    # AND rules (the objective is only used to rank candidates).
    m = len(components)
    grid_points = 257 if m == 1 else (65 if m == 2 else 17)
    return and_objective([c.pfunc for c in components], ws, z, grid_points=grid_points)


def _candidate_zs(budget: int, min_z: int, min_total_w: int) -> list[int]:
    """Distinct useful z values: every value floor(budget / W) can take."""
    zs: set[int] = set()
    max_z = budget // min_total_w
    w_total = min_total_w
    while w_total <= budget:
        zs.add(budget // w_total)
        w_total += 1
        if w_total > 4096:  # beyond this W, z is already 0 or 1
            break
    zs |= set(range(1, int(math.isqrt(budget)) + 2))
    return sorted(z for z in zs if min_z <= z <= max_z)


def _greedy_allocation(
    components: Sequence[LeafComponent],
    z: int,
    total_w: int,
    min_ws: Sequence[int],
    epsilon: float,
) -> tuple[tuple[int, ...], bool]:
    """Allocate up to ``total_w`` hashes per table across components,
    greedily, keeping the corner constraint satisfied.

    Returns ``(ws, feasible)``; ``ws`` is the minimum allocation if even
    that is infeasible.
    """
    ws = list(min_ws)
    target = 1.0 - epsilon
    if and_or_collision_prob(_corner_q(components, ws), z) < target:
        return tuple(ws), False
    log_p = [math.log(max(float(c.pfunc(c.d_thr)), 1e-300)) for c in components]
    while sum(ws) < total_w:
        best_idx, best_ratio = -1, -math.inf
        for idx in range(len(components)):
            ws[idx] += 1
            ok = (
                and_or_collision_prob(_corner_q(components, ws), z) >= target
            )
            ws[idx] -= 1
            if not ok:
                continue
            # Objective gain per feasibility budget spent: adding a hash
            # to component idx shrinks that axis' volume by roughly
            # (w+1)/(w+2) and costs |log p_idx(d_idx)| of corner slack.
            gain = math.log((ws[idx] + 2) / (ws[idx] + 1))
            cost = max(-log_p[idx], 1e-12)
            ratio = gain / cost
            if ratio > best_ratio:
                best_ratio, best_idx = ratio, idx
        if best_idx < 0:
            break
        ws[best_idx] += 1
    return tuple(ws), True


def design_group(
    components: Sequence[LeafComponent],
    budget: int,
    epsilon: float = DEFAULT_EPSILON,
    min_ws: Sequence[int] | None = None,
    min_z: int = 1,
) -> GroupDesign:
    """Solve Program (1)-(3) / (4)-(6) for one AND table group."""
    m = len(components)
    if min_ws is None:
        min_ws = (1,) * m
    min_total = sum(min_ws)
    if budget < min_total * min_z:
        raise DesignError(
            f"budget {budget} cannot fit {m} components with min hashes "
            f"{min_ws} and min z {min_z}"
        )
    best: GroupDesign | None = None
    for z in _candidate_zs(budget, min_z, min_total):
        total_w = budget // z
        ws, feasible = _greedy_allocation(components, z, total_w, min_ws, epsilon)
        if not feasible:
            continue
        objective = _group_objective(components, ws, z)
        if best is None or objective < best.objective:
            best = GroupDesign(list(components), ws, z, True, objective)
        # §5.1 mixed scheme: spend the leftover budget on one extra
        # table of w' fresh hashes (single-component groups only).  The
        # extra OR term usually *raises* the objective when w' is
        # small, so it only survives when genuinely beneficial.
        leftover = budget - z * sum(ws)
        if len(components) == 1 and leftover >= 1:
            mixed_objective = mixed_scheme_objective(
                components[0].pfunc, ws[0], z, leftover, grid_points=257
            )
            if mixed_objective < best.objective:
                best = GroupDesign(
                    list(components), ws, z, True, mixed_objective,
                    remainder_w=leftover,
                )
    if best is not None:
        return best
    # Fallback: most conservative scheme — minimum hashes per table,
    # as many tables as the budget allows (maximizes corner probability).
    z = max(min_z, budget // min_total)
    ws = tuple(min_ws)
    return GroupDesign(
        list(components), ws, z, False, _group_objective(components, ws, z)
    )


# ----------------------------------------------------------------------
# whole-scheme (OR across branches) design
# ----------------------------------------------------------------------
@dataclass
class SchemeDesign:
    """A designed hashing function: one GroupDesign per OR branch."""

    groups: list[GroupDesign]
    budget: int

    @property
    def feasible(self) -> bool:
        return all(g.feasible for g in self.groups)

    @property
    def objective(self) -> float:
        return sum(g.objective for g in self.groups)

    @property
    def spent_budget(self) -> int:
        return sum(g.budget for g in self.groups)

    def to_scheme(self) -> HashingScheme:
        groups: list[TableGroup] = []
        for g in self.groups:
            groups.extend(g.to_table_groups())
        return HashingScheme(groups)

    def describe(self) -> str:
        parts: list[str] = []
        for g in self.groups:
            ws = "+".join(str(w) for w in g.ws)
            rem = f", w'={g.remainder_w}" if g.remainder_w else ""
            parts.append(
                f"(w={ws}, z={g.z}{rem}{'' if g.feasible else ', fallback'})"
            )
        return " OR ".join(parts)


def scheme_design_to_spec(design: SchemeDesign) -> dict[str, Any]:
    """JSON-friendly description of a :class:`SchemeDesign`.

    The spec carries only the *solved* optimization outputs (per-group
    ``(w..., z)`` values, feasibility, objective) — pools are not
    serialized here; :func:`scheme_design_from_spec` re-binds the spec
    to a freshly built :class:`DesignContext` with the same branch
    structure.
    """
    return {
        "budget": design.budget,
        "groups": [
            {
                "ws": list(g.ws),
                "z": g.z,
                "feasible": g.feasible,
                "objective": g.objective,
                "remainder_w": g.remainder_w,
            }
            for g in design.groups
        ],
    }


def scheme_design_from_spec(
    spec: dict[str, Any], ctx: DesignContext
) -> SchemeDesign:
    """Rebuild a :class:`SchemeDesign` from :func:`scheme_design_to_spec`
    output, binding each group to ``ctx``'s branches in order."""
    groups_spec = spec["groups"]
    if len(groups_spec) != len(ctx.branches):
        raise SnapshotError(
            f"design spec has {len(groups_spec)} groups but the rule has "
            f"{len(ctx.branches)} branches"
        )
    groups: list[GroupDesign] = []
    for comps, gs in zip(ctx.branches, groups_spec):
        ws = tuple(int(w) for w in gs["ws"])
        if len(ws) != len(comps):
            raise SnapshotError(
                f"design spec group has {len(ws)} hash counts but the "
                f"branch has {len(comps)} components"
            )
        groups.append(
            GroupDesign(
                list(comps),
                ws,
                int(gs["z"]),
                bool(gs["feasible"]),
                float(gs["objective"]),
                remainder_w=int(gs.get("remainder_w", 0)),
            )
        )
    return SchemeDesign(groups, int(spec["budget"]))


def _budget_splits(
    budget: int, n_branches: int, min_budgets: Sequence[int]
) -> Iterator[tuple[int, ...]]:
    """Candidate per-branch budget splits (coarse grid for 2 branches,
    equal split otherwise)."""
    if n_branches == 1:
        yield (budget,)
        return
    if n_branches == 2:
        for tenths in range(1, 10):
            b0 = max(min_budgets[0], budget * tenths // 10)
            b1 = budget - b0
            if b1 >= min_budgets[1]:
                yield (b0, b1)
        return
    base = budget // n_branches
    split = [max(base, mb) for mb in min_budgets]
    if sum(split) <= budget:
        yield tuple(split)


def design_scheme(
    ctx: DesignContext,
    budget: int,
    epsilon: float = DEFAULT_EPSILON,
    prev: SchemeDesign | None = None,
) -> SchemeDesign:
    """Design one transitive-hashing function for a total hash budget.

    ``prev`` (the previous function's design) imposes the §4.1
    monotonicity constraints ``w_i <= w_{i+1}`` and ``z_i <= z_{i+1}``
    per component, which is what lets signatures be reused.
    """
    branches = ctx.branches
    if prev is not None and len(prev.groups) != len(branches):
        raise DesignError("previous design has a different branch structure")
    min_ws_per_branch: list[tuple[int, ...]] = []
    min_z_per_branch: list[int] = []
    min_budget_per_branch: list[int] = []
    for i, comps in enumerate(branches):
        if prev is None:
            min_ws_per_branch.append((1,) * len(comps))
            min_z_per_branch.append(1)
            min_budget_per_branch.append(len(comps))
        else:
            g = prev.groups[i]
            min_ws_per_branch.append(g.ws)
            min_z_per_branch.append(g.z)
            min_budget_per_branch.append(g.budget)
    best: SchemeDesign | None = None
    for split in _budget_splits(budget, len(branches), min_budget_per_branch):
        groups = [
            design_group(
                comps,
                b,
                epsilon=epsilon,
                min_ws=min_ws_per_branch[i],
                min_z=min_z_per_branch[i],
            )
            for i, (comps, b) in enumerate(zip(branches, split))
        ]
        candidate = SchemeDesign(groups, budget)
        if best is None:
            best = candidate
            continue
        # Prefer fully feasible designs, then lower objective.
        key = (not candidate.feasible, candidate.objective)
        best_key = (not best.feasible, best.objective)
        if key < best_key:
            best = candidate
    if best is None:
        raise DesignError(
            f"budget {budget} is too small for rule with branches "
            f"{[len(b) for b in branches]}"
        )
    return best


def design_sequence(
    store: RecordStore,
    rule: MatchRule,
    budgets: Sequence[int | float],
    epsilon: float = DEFAULT_EPSILON,
    seed: SeedLike = None,
) -> tuple[DesignContext, list[SchemeDesign]]:
    """Design the whole function sequence H_1..H_L for given budgets.

    Budgets must be strictly increasing (Property 3).  Returns the
    shared design context (pools) and one :class:`SchemeDesign` per
    budget.
    """
    budgets = [int(b) for b in budgets]
    if not budgets:
        raise ConfigurationError("need at least one budget")
    if any(b2 <= b1 for b1, b2 in zip(budgets, budgets[1:])):
        raise ConfigurationError(f"budgets must strictly increase: {budgets}")
    ctx = build_design_context(store, rule, seed=seed)
    designs: list[SchemeDesign] = []
    prev: SchemeDesign | None = None
    for budget in budgets:
        prev = design_scheme(ctx, budget, epsilon=epsilon, prev=prev)
        designs.append(prev)
    return ctx, designs
