"""Minhash family for Jaccard distance (Broder et al., paper §8).

Hash function ``j`` ranks shingle ids by the multiply hash
``h_j(s) = (a_j * s) mod 2^64`` with an odd multiplier ``a_j`` — an
exact bijection (permutation) of the 64-bit id space — and keeps the
record's minimum.  Two sets then agree on one minhash with probability
(very close to) their Jaccard similarity, i.e. ``p(x) = 1 - x`` on the
normalized Jaccard distance.  Multiply hashing is not perfectly
min-wise independent, but it is the standard engineering choice: one
vector multiply per hash keeps the family an order of magnitude faster
than modular universal hashing, and the empirical collision curve
matches ``1 - x`` to within sampling noise (see
``tests/lsh/test_minhash.py``).

Stored signature values are the high 32 bits of the winning hash —
equality of full hashes is equality of ids (bijection), and the
32-bit truncation adds only a ``2^-32`` false-collision rate.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import ConfigurationError, SnapshotError
from ..records import RecordStore
from ..rngutil import SeedLike, make_rng, rng_from_state, rng_state
from ..types import AnyArray, ArrayLike, FloatArray, IntArray
from .families import HashFamily

#: Pseudo-element hashed for empty sets, so two empty sets (Jaccard
#: distance 0 by convention) always collide.
EMPTY_SENTINEL = np.uint64((1 << 63) - 59)


def _splitmix64(x: AnyArray) -> AnyArray:
    """The splitmix64 finalizer: a fixed bijective scrambler of uint64."""
    with np.errstate(over="ignore"):
        z = x + np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))

#: Hash columns are materialized in chunks to bound temporary memory.
_CHUNK = 128
#: Records are processed in batches so the (batch, set, chunk) work
#: array stays within a few tens of megabytes.
_BATCH = 256


class MinHashFamily(HashFamily):
    """Minwise hashing over one shingle-set field.

    ``bits`` enables *b-bit minhashing* (Li & König, the paper's [22]):
    only the lowest ``bits`` bits of each minhash are stored, shrinking
    signatures at the price of random collisions — the collision
    probability becomes ``(1 - x) + x * 2^-bits`` and the scheme
    designer accounts for it automatically through
    :meth:`collision_prob`.
    """

    dtype = np.dtype(np.uint32)

    def __init__(
        self,
        store: RecordStore,
        field: str,
        seed: SeedLike = None,
        bits: int | None = None,
    ) -> None:
        super().__init__(store, field)
        if bits is not None and not 1 <= int(bits) <= 32:
            raise ConfigurationError(f"bits must be in [1, 32], got {bits}")
        self.bits = int(bits) if bits is not None else None
        self._rng = make_rng(seed)
        self._a: AnyArray = np.zeros(0, dtype=np.uint64)
        # Ids are scrambled once through splitmix64: raw shingle ids are
        # often small arithmetic progressions, on which a bare multiply
        # hash is measurably non-minwise (the min favours lattice
        # structure).  After mixing, ids look uniform in uint64 space
        # and the multiply ranking is unbiased in practice.
        self._sets: list[AnyArray] = [
            _splitmix64(np.asarray(s, dtype=np.uint64))
            if s.size
            else _splitmix64(np.array([EMPTY_SENTINEL], dtype=np.uint64))
            for s in store.shingle_sets(field)
        ]

    def _ensure_params(self, count: int) -> None:
        have = self._a.size
        if count <= have:
            return
        extra = count - have
        # Odd multipliers are bijections of the uint64 ring.
        a = self._rng.integers(0, 1 << 63, size=extra, dtype=np.uint64) * 2 + 1
        self._a = np.concatenate([self._a, a])

    def _padded(self, rids: IntArray) -> AnyArray:
        """Sets of ``rids`` as one (m, L) array, each row padded with its
        own first element — padding with a member leaves mins unchanged."""
        sets = [self._sets[int(r)] for r in rids]
        width = max(s.size for s in sets)
        padded = np.empty((len(sets), width), dtype=np.uint64)
        for row, ids in enumerate(sets):
            padded[row, : ids.size] = ids
            padded[row, ids.size :] = ids[0]
        return padded

    def compute(self, rids: IntArray, start: int, stop: int) -> AnyArray:
        self._ensure_params(stop)
        rids = np.asarray(rids, dtype=np.int64)
        out = np.empty((rids.size, stop - start), dtype=np.uint32)
        # Process records in set-size order so each batch's padded width
        # tracks its largest member instead of the global maximum.
        order = np.argsort([self._sets[int(r)].size for r in rids], kind="stable")
        for b_lo in range(0, rids.size, _BATCH):
            batch = order[b_lo : b_lo + _BATCH]
            padded = self._padded(rids[batch])
            for lo in range(start, stop, _CHUNK):
                hi = min(lo + _CHUNK, stop)
                with np.errstate(over="ignore"):
                    hashed = padded[:, :, None] * self._a[None, None, lo:hi]
                mins = hashed.min(axis=1)
                values = (mins >> np.uint64(32)).astype(np.uint32)
                if self.bits is not None:
                    values &= np.uint32((1 << self.bits) - 1)
                out[batch, lo - start : hi - start] = values
        return out

    def parallel_payload(self, count: int) -> dict[str, Any] | None:
        self._ensure_params(count)
        return {
            "kind": "minhash",
            "field": self.field,
            "options": {"bits": self.bits},
            "params": {"a": self._a[:count].copy()},
        }

    def adopt_params(self, params: dict[str, Any]) -> None:
        a = params["a"]
        if a.size > self._a.size:
            self._a = a

    def export_state(self) -> dict[str, Any]:
        return {
            "kind": "minhash",
            "field": self.field,
            "bits": self.bits,
            "rng": rng_state(self._rng),
            "a": self._a.copy(),
        }

    def import_state(self, state: dict[str, Any]) -> None:
        if state.get("kind") != "minhash" or state.get("field") != self.field:
            raise SnapshotError(
                f"snapshot state {state.get('kind')!r}[{state.get('field')!r}] "
                f"does not match family minhash[{self.field!r}]"
            )
        if state.get("bits") != self.bits:
            raise SnapshotError(
                f"snapshot b-bit width {state.get('bits')!r} does not match "
                f"family bits {self.bits!r}"
            )
        self._a = np.asarray(state["a"], dtype=np.uint64)
        self._rng = rng_from_state(state["rng"])

    @property
    def label(self) -> str:
        if self.bits is None:
            return f"minhash[{self.field}]"
        return f"minhash{self.bits}bit[{self.field}]"

    def collision_prob(self, x: ArrayLike) -> FloatArray:
        arr = np.asarray(x, dtype=np.float64)
        base = np.clip(1.0 - arr, 0.0, 1.0)
        if self.bits is None:
            return base
        # b-bit minhash: a true minhash collision, or a random low-bit
        # collision of two different minima.
        return base + (1.0 - base) * 2.0**-self.bits
