"""Minhash family for Jaccard distance (Broder et al., paper §8).

Hash function ``j`` ranks shingle ids by the multiply hash
``h_j(s) = (a_j * s) mod 2^64`` with an odd multiplier ``a_j`` — an
exact bijection (permutation) of the 64-bit id space — and keeps the
record's minimum.  Two sets then agree on one minhash with probability
(very close to) their Jaccard similarity, i.e. ``p(x) = 1 - x`` on the
normalized Jaccard distance.  Multiply hashing is not perfectly
min-wise independent, but it is the standard engineering choice: one
vector multiply per hash keeps the family an order of magnitude faster
than modular universal hashing, and the empirical collision curve
matches ``1 - x`` to within sampling noise (see
``tests/lsh/test_minhash.py``).

Stored signature values are the high 32 bits of the winning hash —
equality of full hashes is equality of ids (bijection), and the
32-bit truncation adds only a ``2^-32`` false-collision rate.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import ConfigurationError, SnapshotError
from ..kernels import get_kernels, resolve_kernels
from ..kernels.reference import EMPTY_SENTINEL, _splitmix64
from ..records import RecordStore
from ..rngutil import SeedLike, make_rng, rng_from_state, rng_state
from ..types import AnyArray, ArrayLike, FloatArray, IntArray
from .families import HashFamily

__all__ = ["EMPTY_SENTINEL", "MinHashFamily", "_splitmix64"]


class MinHashFamily(HashFamily):
    """Minwise hashing over one shingle-set field.

    ``bits`` enables *b-bit minhashing* (Li & König, the paper's [22]):
    only the lowest ``bits`` bits of each minhash are stored, shrinking
    signatures at the price of random collisions — the collision
    probability becomes ``(1 - x) + x * 2^-bits`` and the scheme
    designer accounts for it automatically through
    :meth:`collision_prob`.

    ``kernels`` pins the signature kernel backend (resolved through the
    explicit → :func:`repro.kernels.use_kernels` → ``REPRO_KERNELS``
    funnel at construction, so an ambient selection taken when the
    family is built stays in force for its whole life).  Backends are
    bit-identical, so this is purely a performance knob.
    """

    dtype = np.dtype(np.uint32)

    def __init__(
        self,
        store: RecordStore,
        field: str,
        seed: SeedLike = None,
        bits: int | None = None,
        kernels: str | None = None,
    ) -> None:
        super().__init__(store, field)
        if bits is not None and not 1 <= int(bits) <= 32:
            raise ConfigurationError(f"bits must be in [1, 32], got {bits}")
        self.bits = int(bits) if bits is not None else None
        self.kernels = resolve_kernels(kernels)
        self._rng = make_rng(seed)
        self._a: AnyArray = np.zeros(0, dtype=np.uint64)
        self._backend = get_kernels(self.kernels)
        # The packed representation (splitmix64-scrambled ids plus
        # whatever layout the backend evaluates on) is built once per
        # store × field and cached on the store.
        self._packed = self._backend.pack_sets(store, field)

    def _ensure_params(self, count: int) -> None:
        have = self._a.size
        if count <= have:
            return
        extra = count - have
        # Odd multipliers are bijections of the uint64 ring.
        a = self._rng.integers(0, 1 << 63, size=extra, dtype=np.uint64) * 2 + 1
        self._a = np.concatenate([self._a, a])

    def compute(self, rids: IntArray, start: int, stop: int) -> AnyArray:
        self._ensure_params(stop)
        return self._backend.minhash_block(
            self._packed, rids, self._a, start, stop, self.bits
        )

    def parallel_payload(self, count: int) -> dict[str, Any] | None:
        self._ensure_params(count)
        return {
            "kind": "minhash",
            "field": self.field,
            "options": {"bits": self.bits, "kernels": self.kernels},
            "params": {"a": self._a[:count].copy()},
        }

    def adopt_params(self, params: dict[str, Any]) -> None:
        a = params["a"]
        if a.size > self._a.size:
            self._a = a

    def export_state(self) -> dict[str, Any]:
        return {
            "kind": "minhash",
            "field": self.field,
            "bits": self.bits,
            "rng": rng_state(self._rng),
            "a": self._a.copy(),
        }

    def import_state(self, state: dict[str, Any]) -> None:
        if state.get("kind") != "minhash" or state.get("field") != self.field:
            raise SnapshotError(
                f"snapshot state {state.get('kind')!r}[{state.get('field')!r}] "
                f"does not match family minhash[{self.field!r}]"
            )
        if state.get("bits") != self.bits:
            raise SnapshotError(
                f"snapshot b-bit width {state.get('bits')!r} does not match "
                f"family bits {self.bits!r}"
            )
        self._a = np.asarray(state["a"], dtype=np.uint64)
        self._rng = rng_from_state(state["rng"])

    @property
    def label(self) -> str:
        if self.bits is None:
            return f"minhash[{self.field}]"
        return f"minhash{self.bits}bit[{self.field}]"

    def collision_prob(self, x: ArrayLike) -> FloatArray:
        arr = np.asarray(x, dtype=np.float64)
        base = np.clip(1.0 - arr, 0.0, 1.0)
        if self.bits is None:
            return base
        # b-bit minhash: a true minhash collision, or a random low-bit
        # collision of two different minima.
        return base + (1.0 - base) * 2.0**-self.bits
