"""Online / streaming extension of Adaptive LSH (paper §9 future work)."""

from .streaming import StreamingTopK

__all__ = ["StreamingTopK"]
