"""Streaming adaptive LSH (paper §9: "we believe that adaLSH can offer
large performance gains in online settings, where ... input records
arrive dynamically").

:class:`StreamingTopK` keeps the *first* (cheapest) hashing function's
tables alive across insertions: each arriving record pays only the
``H_1`` budget (20 hashes by default) at ingest time, maintaining
coarse clusters incrementally.  A ``top_k(k)`` query hands the current
coarse clusters to the adaptive refinement loop
(:meth:`~repro.core.adaptive.AdaptiveLSH.refine`), which — thanks to
the shared signature pools — only computes the *additional* hash
functions needed by records in still-ambiguous, large clusters.
Repeated queries therefore get cheaper as the pools warm up, and —
because the wrapped method's
:class:`~repro.core.pairmemo.PairVerdictMemo` lives across refines —
pairs verified by one query are never re-evaluated by the next.

Two interchangeable ``H_1`` table backends maintain the coarse
partition (records sharing a bucket key are connected):

* the **delta index** (:class:`~repro.lsh.binindex.H1DeltaIndex`, used
  when the method's bin index is on) keeps per-table sorted
  ``(fingerprint, rid)`` arrays and emits candidate pairs from touched
  buckets only.  Its state is exportable: a successor stream over an
  extended store adopts it (:class:`StreamCarry`) and ingests just the
  new records instead of re-grouping everything;
* plain per-table ``dict[bytes, int]`` maps (bin index off, or byte
  budget exhausted) — the original backend, kept as the fallback.

Both maintain the identical partition, so coarse clusters and every
downstream refine are bit-identical across backends.

Storage note: records live in a regular :class:`RecordStore` created up
front; "arrival" is the ``insert`` call.  This decouples stream order
from storage layout without changing any algorithmic property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.adaptive import AdaptiveLSH
from ..core.config import AdaptiveConfig
from ..core.result import FilterResult
from ..core.transitive import TransitiveHashingFunction
from ..distance.rules import MatchRule
from ..errors import ConfigurationError
from ..lsh.binindex import H1DeltaIndex
from ..obs.observer import RunObserver
from ..records import RecordStore
from ..structures.union_find import UnionFind
from ..types import ArrayLike, BoolArray, IntArray


@dataclass
class StreamCarry:
    """Warm streaming state exported by :meth:`StreamingTopK.carry_state`
    and adopted by a successor stream over an *extended* store.

    Valid because every piece is append-stable: the union-find arrays
    and inserted mask cover a prefix of the extended store's ids, and
    the delta-index fingerprints are pure functions of key bytes that a
    prefix-preserving store extension leaves bit-identical.
    """

    n_records: int
    parent: IntArray
    size: IntArray
    inserted: BoolArray
    h1_state: dict[str, Any]


class StreamingTopK:
    """Incremental top-k filtering over a stream of records.

    Construct either with ``(store, rule, config=...)`` — a fresh
    adaptive method is built — or with ``method=`` to wrap an existing
    (possibly snapshot-restored) :class:`AdaptiveLSH` instance, which
    is how :class:`~repro.serve.ResolverSession` reuses warm pools
    after a store extension.  ``carry=`` additionally adopts a
    predecessor stream's :class:`StreamCarry`; check :attr:`carried`
    to learn whether only the new records still need inserting.
    """

    _h1: TransitiveHashingFunction

    def __init__(
        self,
        store: RecordStore,
        rule: MatchRule | None = None,
        config: AdaptiveConfig | None = None,
        observer: RunObserver | None = None,
        method: AdaptiveLSH | None = None,
        carry: StreamCarry | None = None,
    ) -> None:
        if method is not None:
            if config is not None:
                raise ConfigurationError(
                    "pass either method= or config= to StreamingTopK, not both"
                )
            if method.store is not store:
                raise ConfigurationError(
                    "method= must wrap the same store passed to StreamingTopK"
                )
            self._adaptive = method
        else:
            if rule is None:
                raise ConfigurationError(
                    "StreamingTopK needs a rule (or a prepared method=)"
                )
            self._adaptive = AdaptiveLSH(
                store, rule, config=config, observer=observer
            )
        self.store = store
        self._uf = UnionFind(len(store))
        self._inserted = np.zeros(len(store), dtype=bool)
        self._tables: list[dict[bytes, int]] | None = None
        self._delta: H1DeltaIndex | None = None
        self._ready = False
        #: True when a ``carry=`` state was adopted — the caller only
        #: needs to insert records beyond ``carry.n_records``.
        self.carried = False
        if carry is not None:
            if carry.n_records > len(store):
                raise ConfigurationError(
                    "carry state covers more records than the store holds"
                )
            self._adopt_carry(carry)

    @property
    def n_seen(self) -> int:
        return int(self._inserted.sum())

    @property
    def method(self) -> AdaptiveLSH:
        """The underlying adaptive method (shared pools and designs)."""
        return self._adaptive

    @property
    def delta_index(self) -> H1DeltaIndex | None:
        """The active ``H_1`` delta index, or ``None`` on the dict
        backend (bin index off, or degraded past its byte budget)."""
        return self._delta

    def _ensure_ready(self) -> None:
        if self._ready:
            return
        self._adaptive.prepare()
        self._h1 = self._adaptive._functions[0]
        owner = self._adaptive.bin_index
        if owner is not None:
            self._delta = owner.h1_delta(
                self._h1.scheme, self._h1.key_cache
            )
        if self._delta is None:
            self._tables = [
                dict() for _ in range(self._h1.scheme.table_count)
            ]
        self._ready = True

    def _adopt_carry(self, carry: StreamCarry) -> None:
        """Adopt a predecessor's partition and delta-index state.

        Falls back to a cold start (``carried`` stays False) when the
        method has no bin index or the carried arrays do not fit the
        byte budget — the caller then re-inserts everything, which is
        the pre-carry behaviour and always correct.
        """
        self._adaptive.prepare()
        self._h1 = self._adaptive._functions[0]
        owner = self._adaptive.bin_index
        delta = (
            owner.h1_delta(
                self._h1.scheme, self._h1.key_cache, state=carry.h1_state
            )
            if owner is not None
            else None
        )
        if delta is None:
            self._tables = [
                dict() for _ in range(self._h1.scheme.table_count)
            ]
            self._ready = True
            return
        self._delta = delta
        n_old = int(carry.n_records)
        self._uf.parent[:n_old] = carry.parent
        self._uf.size[:n_old] = carry.size
        self._inserted[:n_old] = carry.inserted
        self.carried = True
        self._ready = True

    def carry_state(self) -> StreamCarry | None:
        """Exportable warm state for a successor stream, or ``None``
        when the delta index is inactive (the successor then re-inserts
        everything)."""
        if not self._ready or self._delta is None:
            return None
        return StreamCarry(
            n_records=len(self.store),
            parent=self._uf.parent.copy(),
            size=self._uf.size.copy(),
            inserted=self._inserted.copy(),
            h1_state=self._delta.export_state(),
        )

    # ------------------------------------------------------------------
    def insert(self, rid: int) -> None:
        """Ingest one record: ``H_1`` hashes plus table maintenance."""
        self._ensure_ready()
        rid = int(rid)
        if self._inserted[rid]:
            raise ConfigurationError(f"record {rid} was already inserted")
        self._ingest(np.array([rid], dtype=np.int64))

    def insert_many(self, rids: ArrayLike) -> None:
        """Ingest a batch (hash computation is batched across records)."""
        self._ensure_ready()
        rids = np.asarray(rids, dtype=np.int64)
        fresh = rids[~self._inserted[rids]]
        if fresh.size != rids.size:
            raise ConfigurationError("batch contains already-inserted records")
        self._ingest(fresh)

    def _ingest(self, fresh: IntArray) -> None:
        if self._delta is not None:
            if self._delta.insert(fresh, self._uf):
                self._inserted[fresh] = True
                return
            self._fallback_to_tables()
        self._inserted[fresh] = True
        tables = self._tables
        assert tables is not None
        for table, keys in zip(
            tables, self._h1.scheme.iter_table_keys(fresh)
        ):
            for rid_raw, key in zip(fresh, keys):
                rid = int(rid_raw)
                prev = table.get(key)
                if prev is not None:
                    self._uf.union(rid, prev)
                table[key] = rid

    def _fallback_to_tables(self) -> None:
        """The delta index ran out of byte budget: rebuild plain dict
        tables from the records inserted so far.

        Partition-equivalent by the bucket invariant — every same-key
        group is already fully unioned, so any member may serve as the
        bucket representative for future arrivals.
        """
        self._delta = None
        tables: list[dict[bytes, int]] = [
            dict() for _ in range(self._h1.scheme.table_count)
        ]
        seen = np.nonzero(self._inserted)[0].astype(np.int64)
        if seen.size:
            for table, keys in zip(
                tables, self._h1.scheme.iter_table_keys(seen)
            ):
                for rid_raw, key in zip(seen.tolist(), keys):
                    table[key] = rid_raw
        self._tables = tables

    # ------------------------------------------------------------------
    def current_clusters(self) -> list[IntArray]:
        """Coarse (H_1-level) clusters of the records seen so far.

        A pure function of the partition: groups are listed by first
        occurrence (ascending smallest member), members ascending, then
        stably sorted by size descending — matching the original
        dict-accumulation loop bit for bit without per-record ``find``
        calls.
        """
        seen = np.nonzero(self._inserted)[0].astype(np.int64)
        if seen.size == 0:
            return []
        parent = self._uf.parent
        roots = parent[seen]
        while True:
            hop = parent[roots]
            if np.array_equal(hop, roots):
                break
            roots = hop
        uniq, inverse = np.unique(roots, return_inverse=True)
        first_pos = np.full(uniq.size, seen.size, dtype=np.int64)
        np.minimum.at(
            first_pos, inverse, np.arange(seen.size, dtype=np.int64)
        )
        emit_order = np.argsort(first_pos, kind="stable")
        member_order = np.argsort(inverse, kind="stable")
        members = seen[member_order]
        bounds = np.zeros(uniq.size + 1, dtype=np.int64)
        np.cumsum(np.bincount(inverse, minlength=uniq.size), out=bounds[1:])
        clusters = [
            members[int(bounds[g]) : int(bounds[g + 1])]
            for g in emit_order.tolist()
        ]
        clusters.sort(key=lambda c: int(c.size), reverse=True)
        return clusters

    def top_k(self, k: int) -> FilterResult:
        """Adaptive refinement of the current coarse clusters."""
        self._ensure_ready()
        if self.n_seen == 0:
            raise ConfigurationError("no records inserted yet")
        initial = [(c, 1) for c in self.current_clusters()]
        return self._adaptive.refine(initial, k)
