"""Streaming adaptive LSH (paper §9: "we believe that adaLSH can offer
large performance gains in online settings, where ... input records
arrive dynamically").

:class:`StreamingTopK` keeps the *first* (cheapest) hashing function's
tables alive across insertions: each arriving record pays only the
``H_1`` budget (20 hashes by default) at ingest time, maintaining
coarse clusters incrementally.  A ``top_k(k)`` query hands the current
coarse clusters to the adaptive refinement loop
(:meth:`~repro.core.adaptive.AdaptiveLSH.refine`), which — thanks to
the shared signature pools — only computes the *additional* hash
functions needed by records in still-ambiguous, large clusters.
Repeated queries therefore get cheaper as the pools warm up, and —
because the wrapped method's
:class:`~repro.core.pairmemo.PairVerdictMemo` lives across refines —
pairs verified by one query are never re-evaluated by the next.

Storage note: records live in a regular :class:`RecordStore` created up
front; "arrival" is the ``insert`` call.  This decouples stream order
from storage layout without changing any algorithmic property.
"""

from __future__ import annotations

import numpy as np

from ..core.adaptive import AdaptiveLSH
from ..core.config import AdaptiveConfig
from ..core.result import FilterResult
from ..core.transitive import TransitiveHashingFunction
from ..distance.rules import MatchRule
from ..errors import ConfigurationError
from ..obs.observer import RunObserver
from ..records import RecordStore
from ..structures.union_find import UnionFind
from ..types import ArrayLike, IntArray


class StreamingTopK:
    """Incremental top-k filtering over a stream of records.

    Construct either with ``(store, rule, config=...)`` — a fresh
    adaptive method is built — or with ``method=`` to wrap an existing
    (possibly snapshot-restored) :class:`AdaptiveLSH` instance, which
    is how :class:`~repro.serve.ResolverSession` reuses warm pools
    after a store extension.
    """

    _h1: TransitiveHashingFunction

    def __init__(
        self,
        store: RecordStore,
        rule: MatchRule | None = None,
        config: AdaptiveConfig | None = None,
        observer: RunObserver | None = None,
        method: AdaptiveLSH | None = None,
    ) -> None:
        if method is not None:
            if config is not None:
                raise ConfigurationError(
                    "pass either method= or config= to StreamingTopK, not both"
                )
            if method.store is not store:
                raise ConfigurationError(
                    "method= must wrap the same store passed to StreamingTopK"
                )
            self._adaptive = method
        else:
            if rule is None:
                raise ConfigurationError(
                    "StreamingTopK needs a rule (or a prepared method=)"
                )
            self._adaptive = AdaptiveLSH(
                store, rule, config=config, observer=observer
            )
        self.store = store
        self._uf = UnionFind(len(store))
        self._inserted = np.zeros(len(store), dtype=bool)
        self._tables: list[dict[bytes, int]] | None = None

    @property
    def n_seen(self) -> int:
        return int(self._inserted.sum())

    @property
    def method(self) -> AdaptiveLSH:
        """The underlying adaptive method (shared pools and designs)."""
        return self._adaptive

    def _ensure_ready(self) -> list[dict[bytes, int]]:
        if self._tables is None:
            self._adaptive.prepare()
            self._h1 = self._adaptive._functions[0]
            self._tables = [dict() for _ in range(self._h1.scheme.table_count)]
        return self._tables

    # ------------------------------------------------------------------
    def insert(self, rid: int) -> None:
        """Ingest one record: ``H_1`` hashes plus table maintenance."""
        tables = self._ensure_ready()
        rid = int(rid)
        if self._inserted[rid]:
            raise ConfigurationError(f"record {rid} was already inserted")
        self._inserted[rid] = True
        rids = np.array([rid], dtype=np.int64)
        for table, keys in zip(tables, self._h1.scheme.iter_table_keys(rids)):
            key = keys[0]
            prev = table.get(key)
            if prev is not None:
                self._uf.union(rid, prev)
            table[key] = rid

    def insert_many(self, rids: ArrayLike) -> None:
        """Ingest a batch (hash computation is batched across records)."""
        tables = self._ensure_ready()
        rids = np.asarray(rids, dtype=np.int64)
        fresh = rids[~self._inserted[rids]]
        if fresh.size != rids.size:
            raise ConfigurationError("batch contains already-inserted records")
        self._inserted[fresh] = True
        for table, keys in zip(tables, self._h1.scheme.iter_table_keys(fresh)):
            for rid_raw, key in zip(fresh, keys):
                rid = int(rid_raw)
                prev = table.get(key)
                if prev is not None:
                    self._uf.union(rid, prev)
                table[key] = rid

    # ------------------------------------------------------------------
    def current_clusters(self) -> list[IntArray]:
        """Coarse (H_1-level) clusters of the records seen so far."""
        seen = np.nonzero(self._inserted)[0]
        groups: dict[int, list[int]] = {}
        for rid in seen:
            groups.setdefault(self._uf.find(int(rid)), []).append(int(rid))
        clusters = [np.asarray(g, dtype=np.int64) for g in groups.values()]
        clusters.sort(key=lambda c: int(c.size), reverse=True)
        return clusters

    def top_k(self, k: int) -> FilterResult:
        """Adaptive refinement of the current coarse clusters."""
        self._ensure_ready()
        if self.n_seen == 0:
            raise ConfigurationError("no records inserted yet")
        initial = [(c, 1) for c in self.current_clusters()]
        return self._adaptive.refine(initial, k)
