"""Selectable kernel backends for the two hot operations.

See :mod:`repro.kernels.base` for the registry and the
explicit → :func:`use_kernels` context → ``REPRO_KERNELS`` environment
resolution funnel, :mod:`repro.kernels.reference` for the pure-NumPy
oracle, and :mod:`repro.kernels.packed` for the bit-packed backend.
"""

from .base import (
    KERNEL_NAMES,
    KERNELS_ENV,
    KernelBackend,
    get_kernels,
    resolve_kernels,
    use_kernels,
)

__all__ = [
    "KERNEL_NAMES",
    "KERNELS_ENV",
    "KernelBackend",
    "get_kernels",
    "resolve_kernels",
    "use_kernels",
]
