"""The ``packed`` backend: bit-packed evaluation of both hot kernels.

Packing (once per store × field, cached on the store):

* the field's shingle ids are scrambled through splitmix64 and
  compacted to dense int32 *codes* into a sorted ``vocab`` of distinct
  scrambled ids (splitmix64 is a bijection, so intersections over codes
  equal intersections over raw ids);
* a second CSR layout splices the scrambled ``EMPTY_SENTINEL`` code
  into empty rows — the minhash input convention;
* for small vocabularies every row additionally becomes a dense uint64
  bitset (``ceil(vocab / 64)`` words), enabling ``bitwise_and`` +
  popcount intersection counts; large vocabularies stay in sorted-code
  CSR form and intersect by vectorized merge.

Signature blocks then gather from cached per-chunk hash tables
(``(vocab * a) >> 32`` as uint32) and fold rows with in-place
``np.minimum`` — no per-row Python assembly and half the memory
traffic of the 64-bit oracle.  Right-shift is order-preserving, so
``min(table[row])`` equals the oracle's ``min(hashes) >> 32`` bit for
bit; every other operation here is an exact integer count feeding the
shared float epilogue, which is what makes the whole backend
bit-identical to ``numpy`` (enforced by ``tests/kernels/`` and
``benchmarks/bench_kernels.py``).
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING

import numpy as np

from ..types import AnyArray, FloatArray, IntArray
from .base import KernelBackend, _finish_distances
from .reference import (
    _BATCH,
    _CHUNK,
    EMPTY_SENTINEL,
    _csr_block_matrix,
    _csr_pairwise,
    _splitmix64,
)

if TYPE_CHECKING:
    from ..records import RecordStore

#: Vocabularies up to this size get dense bitset rows; above it the
#: per-row word count would dwarf typical set sizes and merge-based
#: intersection wins.
_BITSET_VOCAB_LIMIT = 4096
#: Vocabularies up to this size get cached per-chunk hash tables for
#: signatures (table bytes = vocab × chunk × 4, so 8 MiB at the
#: limit).  Above it, building a table costs about as much as hashing
#: the sets directly — vocab approaches total set volume, so the
#: multiply count is the same and the gathers are pure overhead — and
#: the broadcast multiply path is used instead (measured: parity with
#: the reference, while forced tables at vocab ≈ 93k were 0.5-1.3×).
_TABLE_VOCAB_LIMIT = 16384
#: Total bytes of cached hash tables per packed field; the cache is
#: cleared wholesale when an insert would exceed this, and a single
#: table bigger than the whole budget is returned uncached (the
#: signature loop fetches each table only once per call).
_TABLE_CACHE_BYTES = 64 << 20
#: Pair-list intersections run over chunks of this many pairs, bounding
#: the transient AND/popcount arrays.
_PAIR_CHUNK = 1 << 16
#: ``jaccard_pairwise`` / ``jaccard_block_matrix`` use bitset popcount
#: only up to this many result cells; beyond it the CSR sparse product
#: reads less memory per pair and wins (measured crossover; counts are
#: exact integers either way, so the choice never changes results).
_MATRIX_POPCOUNT_CELLS = 4096

#: ``np.bitwise_count`` landed in NumPy 2.0; older installs fall back
#: to an 8-bit lookup table over the bytes of each word.  Module-level
#: so tests can force the LUT path.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")
_POP_LUT = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)


def _popcount_rows(words: AnyArray) -> IntArray:
    """Per-row popcount sum of an ``(..., n_words)`` uint64 array."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)
    # Byte order is irrelevant: popcount sums over all bytes of the row.
    as_bytes = words.view(np.uint8)
    return _POP_LUT[as_bytes].sum(axis=-1, dtype=np.int64)


def _high32(hashed: AnyArray, axis: int) -> AnyArray:
    """``min`` of the high 32 bits of uint64 hashes along ``axis``.

    Equals ``(hashed.min(axis) >> 32).astype(uint32)`` — right-shift is
    monotone, so the minimum commutes with truncation — but on
    little-endian hosts the uint32 view reads half the bytes.
    """
    if sys.byteorder == "little":
        high = hashed.view(np.uint32)[..., 1::2]
        return np.ascontiguousarray(high.min(axis=axis))
    return (hashed.min(axis=axis) >> np.uint64(32)).astype(np.uint32)


class PackedField:
    """Packed representation of one shingle field (see module docs)."""

    __slots__ = (
        "store",
        "field",
        "n",
        "vocab",
        "sizes",
        "codes_mh",
        "offsets_mh",
        "sizes_mh",
        "bitset",
        "words",
        "_tables",
        "_table_bytes",
    )

    def __init__(self, store: RecordStore, field: str) -> None:
        self.store = store
        self.field = field
        column = store.shingle_sets(field)
        sizes = np.ascontiguousarray(column.sizes())
        self.n = int(sizes.size)
        self.sizes = sizes
        mixed = _splitmix64(column.flat.astype(np.uint64))
        sentinel = _splitmix64(np.array([EMPTY_SENTINEL], dtype=np.uint64))
        vocab, inv = np.unique(
            np.concatenate([mixed, sentinel]), return_inverse=True
        )
        self.vocab = vocab
        codes = inv[:-1].astype(np.int32)
        sentinel_code = np.int32(inv[-1])
        rebased = column.rebased_offsets()
        empty = sizes == 0
        if empty.any():
            # Minhash layout: splice the sentinel code into empty rows,
            # so two empty sets always share a minimum.
            self.codes_mh = np.insert(codes, rebased[:-1][empty], sentinel_code)
            self.sizes_mh = np.where(empty, 1, sizes)
            offsets = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(self.sizes_mh, out=offsets[1:])
            self.offsets_mh = offsets
        else:
            self.codes_mh = codes
            self.sizes_mh = sizes
            self.offsets_mh = rebased
        if vocab.size <= _BITSET_VOCAB_LIMIT:
            words = (int(vocab.size) + 63) // 64
            bitset = np.zeros((self.n, words), dtype=np.uint64)
            if codes.size:
                # True rows only — empty rows stay all-zero, so their
                # intersection counts are genuinely zero.
                rows = np.repeat(np.arange(self.n, dtype=np.int64), sizes)
                np.bitwise_or.at(
                    bitset,
                    (rows, codes >> 6),
                    np.uint64(1) << (codes & 63).astype(np.uint64),
                )
            self.bitset: AnyArray | None = bitset
            self.words = words
        else:
            self.bitset = None
            self.words = 0
        self._tables: dict[tuple[int, int, bytes], AnyArray] = {}
        self._table_bytes = 0

    def chunk_table(self, lo: int, hi: int, a: AnyArray) -> AnyArray:
        """Cached ``(vocab, hi - lo)`` uint32 table of high hash halves.

        Keyed on the multiplier bytes themselves (families differ by
        seed), so a stale entry can never be returned.  Tables are
        deterministic, which is why re-deriving them per worker process
        is correctness-free.
        """
        key = (lo, hi, a.tobytes())
        table = self._tables.get(key)
        if table is None:
            with np.errstate(over="ignore"):
                full = self.vocab[:, None] * a[None, :]
            table = (full >> np.uint64(32)).astype(np.uint32)
            if table.nbytes > _TABLE_CACHE_BYTES:
                # Too large to ever cache; hand it back transient.  The
                # signature loop is chunk-outer, so it still builds each
                # table only once per call.
                return table
            if self._table_bytes + table.nbytes > _TABLE_CACHE_BYTES:
                self._tables.clear()
                self._table_bytes = 0
            self._tables[key] = table
            self._table_bytes += table.nbytes
        return table


class PackedKernels(KernelBackend):
    """Vectorized integer-op backend over :class:`PackedField`."""

    name = "packed"

    def _pack(self, store: RecordStore, field: str) -> PackedField:
        return PackedField(store, field)

    # ------------------------------------------------------------------
    # minhash
    # ------------------------------------------------------------------
    def minhash_block(
        self,
        packed: PackedField,
        rids: IntArray,
        multipliers: AnyArray,
        start: int,
        stop: int,
        bits: int | None,
    ) -> AnyArray:
        rids = np.asarray(rids, dtype=np.int64)
        m = int(rids.size)
        out = np.empty((m, stop - start), dtype=np.uint32)
        if m == 0:
            return out
        sizes = packed.sizes_mh[rids]
        starts_all = packed.offsets_mh[rids]
        order = np.argsort(sizes, kind="stable")
        use_tables = packed.vocab.size <= _TABLE_VOCAB_LIMIT
        # Batch preparation is hoisted out of the hash-chunk loop so that
        # loop can run outermost: each per-chunk table is then fetched
        # exactly once per call, even when it is too big to stay cached.
        preps: list[tuple[IntArray, int, AnyArray, list[IntArray]]] = []
        for b_lo in range(0, m, _BATCH):
            batch = order[b_lo : b_lo + _BATCH]
            bsizes = sizes[batch]
            starts = starts_all[batch]
            # Same 95th-percentile width cap as the reference padding:
            # one huge set hashes row-by-row instead of re-padding the
            # whole batch (padding repeats a member, so mins are
            # unchanged either way).
            cut = max(1, -(-batch.size * 95 // 100))  # ceil(0.95 * m)
            width = int(bsizes[cut - 1])
            head = int(np.searchsorted(bsizes, width, side="right"))
            span = np.minimum(
                np.arange(width, dtype=np.int64), bsizes[:head, None] - 1
            )
            codes = packed.codes_mh[starts[:head, None] + span]  # (head, width)
            tail = [
                packed.codes_mh[int(starts[i]) : int(starts[i]) + int(bsizes[i])]
                for i in range(head, batch.size)
            ]
            if use_tables:
                # (width, head): contiguous per-multiplier rows for the
                # gather-and-fold loop below.
                body = np.ascontiguousarray(codes.T)
            else:
                body = packed.vocab[codes]  # (head, width) uint64 values
            preps.append((batch, head, body, tail))
        for lo in range(start, stop, _CHUNK):
            hi = min(lo + _CHUNK, stop)
            a = multipliers[lo:hi]
            table = packed.chunk_table(lo, hi, a) if use_tables else None
            for batch, head, body, tail in preps:
                vals = np.empty((batch.size, hi - lo), dtype=np.uint32)
                if table is not None:
                    mins = table[body[0]]  # fancy index: a fresh copy
                    for k in range(1, body.shape[0]):
                        np.minimum(mins, table[body[k]], out=mins)
                    vals[:head] = mins
                    for pos, tcodes in enumerate(tail):
                        vals[head + pos] = table[tcodes].min(axis=0)
                else:
                    with np.errstate(over="ignore"):
                        hashed = body[:, :, None] * a[None, None, :]
                        vals[:head] = _high32(hashed, axis=1)
                        for pos, tcodes in enumerate(tail):
                            row = packed.vocab[tcodes][:, None] * a[None, :]
                            vals[head + pos] = _high32(row, axis=0)
                if bits is not None:
                    vals &= np.uint32((1 << bits) - 1)
                out[batch, lo - start : hi - start] = vals
        return out

    # ------------------------------------------------------------------
    # intersection counts
    # ------------------------------------------------------------------
    def _pair_intersections(
        self, packed: PackedField, rids_a: IntArray, rids_b: IntArray
    ) -> FloatArray:
        """Exact ``|A ∩ B|`` per pair, as float64."""
        n_pairs = int(rids_a.size)
        inter = np.empty(n_pairs, dtype=np.float64)
        bitset = packed.bitset
        if bitset is not None:
            for lo in range(0, n_pairs, _PAIR_CHUNK):
                hi = min(lo + _PAIR_CHUNK, n_pairs)
                anded = bitset[rids_a[lo:hi]] & bitset[rids_b[lo:hi]]
                inter[lo:hi] = _popcount_rows(anded)
            return inter
        # Sorted-code CSR: group the pair list by its left record and
        # run one vectorized searchsorted merge per group — the flat
        # concatenation of each group's right rows comes from the
        # column's batched gather, so no per-row Python assembly.
        column = packed.store.shingle_sets(packed.field)
        sizes = packed.sizes
        order = np.argsort(rids_a, kind="stable")
        sorted_a = rids_a[order]
        uniq, group_starts = np.unique(sorted_a, return_index=True)
        bounds = np.concatenate([group_starts, [n_pairs]])
        for g in range(uniq.size):
            idx = order[bounds[g] : bounds[g + 1]]
            target = column[int(uniq[g])]
            group_b = rids_b[idx]
            lengths = sizes[group_b]
            if target.size == 0 or not int(lengths.sum()):
                inter[idx] = 0.0
                continue
            flat = column.take(group_b).flat
            inter[idx] = _merge_counts(target, flat, lengths)
        return inter

    def jaccard_block(
        self, packed: PackedField, rids_a: IntArray, rids_b: IntArray
    ) -> FloatArray:
        rids_a = np.asarray(rids_a, dtype=np.int64)
        rids_b = np.asarray(rids_b, dtype=np.int64)
        inter = self._pair_intersections(packed, rids_a, rids_b)
        sizes = packed.sizes
        union = sizes[rids_a] + sizes[rids_b] - inter
        return _finish_distances(inter, union)

    # ------------------------------------------------------------------
    # matrix / one-to-many shapes
    # ------------------------------------------------------------------
    def jaccard_pairwise(
        self, packed: PackedField, rids: IntArray, chunk: int = 256
    ) -> FloatArray:
        rids = np.asarray(rids, dtype=np.int64)
        m = int(rids.size)
        bitset = packed.bitset
        if bitset is not None and m * m <= _MATRIX_POPCOUNT_CELLS:
            rows = bitset[rids]
            inter = np.empty((m, m), dtype=np.float64)
            for i in range(m):
                inter[i] = _popcount_rows(rows[i] & rows)
            sizes = packed.sizes[rids].astype(np.float64)
            union = sizes[:, None] + sizes[None, :] - inter
            dist = _finish_distances(inter, union)
            np.fill_diagonal(dist, 0.0)
            return dist
        return _csr_pairwise(packed.store, packed.field, rids, chunk)

    def jaccard_one_to_many(
        self, packed: PackedField, rid: int, rids: IntArray
    ) -> FloatArray:
        rids = np.asarray(rids, dtype=np.int64)
        if rids.size == 0:
            return np.zeros(0, dtype=np.float64)
        sizes = packed.sizes
        bitset = packed.bitset
        if bitset is not None:
            inter = _popcount_rows(bitset[rids] & bitset[int(rid)]).astype(
                np.float64
            )
        else:
            column = packed.store.shingle_sets(packed.field)
            target = column[int(rid)]
            lengths = sizes[rids]
            if target.size and int(lengths.sum()):
                flat = column.take(rids).flat
                inter = _merge_counts(target, flat, lengths)
            else:
                inter = np.zeros(rids.size, dtype=np.float64)
        union = sizes[rids] + sizes[int(rid)] - inter
        return _finish_distances(inter, union)

    def jaccard_block_matrix(
        self, packed: PackedField, rids_a: IntArray, rids_b: IntArray
    ) -> FloatArray:
        rids_a = np.asarray(rids_a, dtype=np.int64)
        rids_b = np.asarray(rids_b, dtype=np.int64)
        bitset = packed.bitset
        cells = int(rids_a.size) * int(rids_b.size)
        if bitset is not None and cells <= _MATRIX_POPCOUNT_CELLS:
            rows_a = bitset[rids_a]
            rows_b = bitset[rids_b]
            inter = np.empty((rids_a.size, rids_b.size), dtype=np.float64)
            for i in range(int(rids_a.size)):
                inter[i] = _popcount_rows(rows_a[i] & rows_b)
            sizes = packed.sizes
            union = (
                sizes[rids_a][:, None] + sizes[rids_b][None, :] - inter
            )
            return _finish_distances(inter, union)
        return _csr_block_matrix(packed.store, packed.field, rids_a, rids_b)


def _merge_counts(
    target: IntArray, flat: IntArray, lengths: IntArray
) -> FloatArray:
    """Per-row counts of ``target`` hits in concatenated sorted rows.

    The same searchsorted merge as the reference one-to-many path: one
    binary-search pass over the concatenation, then a cumulative-sum
    split back into per-row totals.  Exact integers.
    """
    slots = np.searchsorted(target, flat)
    hits = target[np.minimum(slots, target.size - 1)] == flat
    csum = np.concatenate([[0], np.cumsum(hits)])
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    return (csum[offsets + lengths] - csum[offsets]).astype(np.float64)
