"""Kernel backend registry and the ``kernels`` resolution funnel.

The two hot operations of the whole system — per-record minhash
signature blocks and set-intersection verification — are isolated
behind :class:`KernelBackend` so they can be swapped without touching
any caller:

``numpy``
    The reference backend: the exact code the repo has always run
    (per-row padding, ``intersect1d`` / CSR products).  It is the
    bit-identity oracle every other backend is gated against.
``packed``
    Packs each shingle field once per store (dense uint64 bitset rows
    for small vocabularies, sorted-code CSR otherwise) and evaluates
    with vectorized integer ops: cached multiply-hash tables for
    signatures, ``bitwise_and`` + popcount for intersections.

Backends are *pure accelerators*: every operation must return results
bit-identical to the reference backend (enforced by
``tests/kernels/`` and ``benchmarks/bench_kernels.py``), so selection
is a performance knob exactly like ``n_jobs`` — it is resolved through
the same explicit → context → environment funnel and never recorded in
snapshots.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Any

import numpy as np

from ..errors import ConfigurationError
from ..types import AnyArray, FloatArray, IntArray

if TYPE_CHECKING:
    from ..records import RecordStore

#: Environment variable consulted when ``kernels`` is not given
#: explicitly; mirrors ``REPRO_N_JOBS`` so the knob reaches every
#: component without threading a parameter through each call.
KERNELS_ENV = "REPRO_KERNELS"

#: Registered backend names, in documentation order.
KERNEL_NAMES = ("numpy", "packed")

#: Ambient backend selection installed by :func:`use_kernels`; consulted
#: between an explicit argument and the environment variable.
_ACTIVE_KERNELS: ContextVar[str | None] = ContextVar(
    "repro_kernels", default=None
)


def resolve_kernels(kernels: str | None = None) -> str:
    """Resolve a ``kernels`` knob to a concrete backend name.

    ``None`` falls back to the ambient :func:`use_kernels` selection,
    then to the ``REPRO_KERNELS`` environment variable, and finally to
    ``"numpy"`` (the reference backend).  Unknown names are rejected.
    """
    if kernels is None:
        kernels = _ACTIVE_KERNELS.get()
    if kernels is None:
        raw = os.environ.get(KERNELS_ENV, "").strip()
        kernels = raw if raw else "numpy"
    kernels = str(kernels)
    if kernels not in KERNEL_NAMES:
        raise ConfigurationError(
            f"kernels must be one of {KERNEL_NAMES}, got {kernels!r}"
        )
    return kernels


@contextmanager
def use_kernels(kernels: str | None) -> Iterator[None]:
    """Install ``kernels`` as the ambient backend for the ``with`` body.

    Used by the non-generator entry points (``AdaptiveLSH`` internals,
    ``PairwiseComputation.apply``) so that distance objects constructed
    long before a config existed still evaluate on the configured
    backend.  ``None`` re-resolves the environment default, which keeps
    nesting semantics obvious: the innermost explicit selection wins.
    """
    token = _ACTIVE_KERNELS.set(resolve_kernels(kernels))
    try:
        yield
    finally:
        _ACTIVE_KERNELS.reset(token)


class KernelBackend(ABC):
    """One implementation of the two hot kernels (plus the derived
    intersection shapes the distance layer needs).

    ``pack_sets`` converts a store field into whatever representation
    the backend evaluates on; the result is cached on the store under
    ``(backend.name, field)`` so repeated families/distances over the
    same field pay the packing cost once.  Packed representations are
    derived data: worker processes rebuild (or inherit copy-on-write)
    the store and re-pack deterministically, so nothing backend-specific
    is ever pickled or snapshotted.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    def pack_sets(self, store: RecordStore, field: str) -> Any:
        """Packed representation of ``field``, cached on ``store``."""
        cache = store._packed_cache
        key = (self.name, field)
        packed = cache.get(key)
        if packed is None:
            packed = self._pack(store, field)
            cache[key] = packed
        return packed

    @abstractmethod
    def _pack(self, store: RecordStore, field: str) -> Any:
        """Build the packed representation (uncached)."""

    # ------------------------------------------------------------------
    # hot kernel 1: minhash signature blocks
    # ------------------------------------------------------------------
    @abstractmethod
    def minhash_block(
        self,
        packed: Any,
        rids: IntArray,
        multipliers: AnyArray,
        start: int,
        stop: int,
        bits: int | None,
    ) -> AnyArray:
        """Signature columns ``[start, stop)`` for ``rids``.

        Returns a ``(len(rids), stop - start)`` uint32 array holding,
        per record and multiplier, the high 32 bits of the minimum
        multiply-hash over the record's scrambled shingle ids (empty
        sets hash the scrambled ``EMPTY_SENTINEL``), masked to the low
        ``bits`` bits when b-bit minhashing is enabled.
        """

    # ------------------------------------------------------------------
    # hot kernel 2: pair-list Jaccard verification
    # ------------------------------------------------------------------
    @abstractmethod
    def jaccard_block(
        self, packed: Any, rids_a: IntArray, rids_b: IntArray
    ) -> FloatArray:
        """Jaccard distances for the pair list ``zip(rids_a, rids_b)``."""

    # ------------------------------------------------------------------
    # derived shapes used by ``JaccardDistance``
    # ------------------------------------------------------------------
    @abstractmethod
    def jaccard_pairwise(
        self, packed: Any, rids: IntArray, chunk: int = 256
    ) -> FloatArray:
        """Full ``(m, m)`` distance matrix with a zero diagonal.

        ``chunk`` bounds the row-block height of intermediate products;
        it affects peak memory only, never the float results.
        """

    @abstractmethod
    def jaccard_one_to_many(
        self, packed: Any, rid: int, rids: IntArray
    ) -> FloatArray:
        """Distances from ``rid`` to each record in ``rids``."""

    @abstractmethod
    def jaccard_block_matrix(
        self, packed: Any, rids_a: IntArray, rids_b: IntArray
    ) -> FloatArray:
        """Rectangular ``(len(rids_a), len(rids_b))`` distance matrix."""


def _finish_distances(inter: FloatArray, union: FloatArray) -> FloatArray:
    """Shared float epilogue: exact integer counts to float distances.

    Every backend produces *exact* integer intersection/union counts in
    float64, so routing them all through this one expression makes the
    float outputs bit-identical across backends (elementwise IEEE ops do
    not depend on array shape or chunking).  An empty union (two empty
    sets) is similarity 1 by convention, hence distance 0.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        sim = np.where(union > 0.0, inter / union, 1.0)
    return np.asarray(1.0 - sim, dtype=np.float64)


_BACKENDS: dict[str, KernelBackend] = {}


def get_kernels(kernels: str | None = None) -> KernelBackend:
    """The backend singleton for ``kernels`` (resolved through
    :func:`resolve_kernels`)."""
    name = resolve_kernels(kernels)
    backend = _BACKENDS.get(name)
    if backend is None:
        # Imported lazily to keep ``repro.kernels.base`` free of a
        # dependency cycle with the concrete backend modules.
        if name == "numpy":
            from .reference import ReferenceKernels

            backend = ReferenceKernels()
        else:
            from .packed import PackedKernels

            backend = PackedKernels()
        _BACKENDS[name] = backend
    return backend
