"""The pure-NumPy reference backend: the bit-identity oracle.

This module owns the *semantics* of both hot kernels — the scrambled
minhash input convention (splitmix64 over ids, ``EMPTY_SENTINEL`` for
empty sets) and the exact float epilogue of every Jaccard shape.  The
implementations are the ones the repo has always run (padded
multiply-hash batches, ``intersect1d`` pair loops, chunked CSR
products); the ``packed`` backend must reproduce their outputs bit for
bit and is tested against them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..types import AnyArray, FloatArray, IntArray
from .base import KernelBackend, _finish_distances

if TYPE_CHECKING:
    from ..records import RecordStore, ShingleColumn

#: Pseudo-element hashed for empty sets, so two empty sets (Jaccard
#: distance 0 by convention) always collide.
EMPTY_SENTINEL = np.uint64((1 << 63) - 59)

#: Hash columns are materialized in chunks to bound temporary memory.
_CHUNK = 128
#: Records are processed in batches so the (batch, set, chunk) work
#: array stays within a few tens of megabytes.
_BATCH = 256


def _splitmix64(x: AnyArray) -> AnyArray:
    """The splitmix64 finalizer: a fixed bijective scrambler of uint64."""
    with np.errstate(over="ignore"):
        z = x + np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


def jaccard_distance(a: AnyArray, b: AnyArray) -> float:
    """Jaccard distance of two sorted shingle-id arrays."""
    if a.size == 0 and b.size == 0:
        return 0.0
    inter = np.intersect1d(a, b, assume_unique=True).size
    union = a.size + b.size - inter
    return 1.0 - inter / union


class ReferencePacked:
    """Per-field state of the reference backend.

    ``sets_mixed`` is the minhash input: each row's ids scrambled once
    through splitmix64 (raw shingle ids are often small arithmetic
    progressions, on which a bare multiply hash is measurably
    non-minwise; after mixing, ids look uniform in uint64 space and the
    multiply ranking is unbiased in practice).  Empty rows scramble the
    ``EMPTY_SENTINEL`` pseudo-element instead.  It is built lazily so
    Jaccard-only callers never pay for it; the Jaccard shapes read the
    store's own (cached) column/CSR/sizes views.
    """

    __slots__ = ("store", "field", "_sets_mixed")

    def __init__(self, store: RecordStore, field: str) -> None:
        self.store = store
        self.field = field
        self._sets_mixed: list[AnyArray] | None = None

    @property
    def sets_mixed(self) -> list[AnyArray]:
        if self._sets_mixed is None:
            self._sets_mixed = [
                _splitmix64(np.asarray(s, dtype=np.uint64))
                if s.size
                else _splitmix64(np.array([EMPTY_SENTINEL], dtype=np.uint64))
                for s in self.store.shingle_sets(self.field)
            ]
        return self._sets_mixed

    @property
    def sets(self) -> ShingleColumn:
        return self.store.shingle_sets(self.field)

    @property
    def sizes(self) -> IntArray:
        return self.store.set_sizes(self.field)


def _padded_spans(
    rows: list[AnyArray],
) -> tuple[AnyArray, list[AnyArray]]:
    """Rows as one padded ``(head, width)`` array plus the oversized tail.

    Each head row is padded with its own first element — padding with a
    member leaves multiply-hash minima unchanged.  The width is capped
    at the batch's 95th-percentile row size so one huge set cannot
    quadratically re-pad everything else; rows wider than the cap are
    returned separately and hashed row-by-row.  ``rows`` arrive sorted
    ascending by size, so the tail is a suffix.
    """
    sizes = np.array([r.size for r in rows], dtype=np.int64)
    cut = max(1, -(-len(rows) * 95 // 100))  # ceil(0.95 * m)
    width = int(sizes[cut - 1])
    head_count = int(np.searchsorted(sizes, width, side="right"))
    padded = np.empty((head_count, width), dtype=np.uint64)
    for row, ids in enumerate(rows[:head_count]):
        padded[row, : ids.size] = ids
        padded[row, ids.size :] = ids[0]
    return padded, rows[head_count:]


class ReferenceKernels(KernelBackend):
    """Reference implementations — exact, simple, and the oracle."""

    name = "numpy"

    def _pack(self, store: RecordStore, field: str) -> ReferencePacked:
        return ReferencePacked(store, field)

    # ------------------------------------------------------------------
    # minhash
    # ------------------------------------------------------------------
    def minhash_block(
        self,
        packed: ReferencePacked,
        rids: IntArray,
        multipliers: AnyArray,
        start: int,
        stop: int,
        bits: int | None,
    ) -> AnyArray:
        sets = packed.sets_mixed
        rids = np.asarray(rids, dtype=np.int64)
        out = np.empty((rids.size, stop - start), dtype=np.uint32)
        # Process records in set-size order so each batch's padded width
        # tracks its largest member instead of the global maximum.
        order = np.argsort([sets[int(r)].size for r in rids], kind="stable")
        for b_lo in range(0, rids.size, _BATCH):
            batch = order[b_lo : b_lo + _BATCH]
            rows = [sets[int(r)] for r in rids[batch]]
            padded, tail = _padded_spans(rows)
            head_count = padded.shape[0]
            mins = np.empty((len(rows), _CHUNK), dtype=np.uint64)
            for lo in range(start, stop, _CHUNK):
                hi = min(lo + _CHUNK, stop)
                a = multipliers[lo:hi]
                with np.errstate(over="ignore"):
                    hashed = padded[:, :, None] * a[None, None, :]
                    mins[:head_count, : hi - lo] = hashed.min(axis=1)
                    for pos, ids in enumerate(tail):
                        mins[head_count + pos, : hi - lo] = (
                            ids[:, None] * a[None, :]
                        ).min(axis=0)
                values = (
                    mins[:, : hi - lo] >> np.uint64(32)
                ).astype(np.uint32)
                if bits is not None:
                    values &= np.uint32((1 << bits) - 1)
                out[batch, lo - start : hi - start] = values
        return out

    # ------------------------------------------------------------------
    # pair-list verification
    # ------------------------------------------------------------------
    def jaccard_block(
        self, packed: ReferencePacked, rids_a: IntArray, rids_b: IntArray
    ) -> FloatArray:
        sets = packed.sets
        out = np.empty(len(rids_a), dtype=np.float64)
        for i in range(len(rids_a)):
            out[i] = jaccard_distance(
                sets[int(rids_a[i])], sets[int(rids_b[i])]
            )
        return out

    # ------------------------------------------------------------------
    # matrix / one-to-many shapes
    # ------------------------------------------------------------------
    def jaccard_pairwise(
        self, packed: ReferencePacked, rids: IntArray, chunk: int = 256
    ) -> FloatArray:
        return _csr_pairwise(packed.store, packed.field, rids, chunk)

    def jaccard_one_to_many(
        self, packed: ReferencePacked, rid: int, rids: IntArray
    ) -> FloatArray:
        # Merge-based intersection counts instead of CSR row slicing:
        # slicing a scipy CSR materializes new matrices per call, which
        # dominates the rowwise pairwise strategy (one call per record).
        rids = np.asarray(rids, dtype=np.int64)
        sets = packed.sets
        target = sets[int(rid)]
        sizes = packed.sizes
        lengths = sizes[rids]
        if rids.size == 0:
            return np.zeros(0, dtype=np.float64)
        if target.size and int(lengths.sum()):
            flat = np.concatenate([sets[int(r)] for r in rids.tolist()])
            slots = np.searchsorted(target, flat)
            hits = target[np.minimum(slots, target.size - 1)] == flat
            csum = np.concatenate([[0], np.cumsum(hits)])
            offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
            inter = (csum[offsets + lengths] - csum[offsets]).astype(np.float64)
        else:
            inter = np.zeros(rids.size, dtype=np.float64)
        union = lengths + sizes[int(rid)] - inter
        return _finish_distances(inter, union)

    def jaccard_block_matrix(
        self, packed: ReferencePacked, rids_a: IntArray, rids_b: IntArray
    ) -> FloatArray:
        return _csr_block_matrix(packed.store, packed.field, rids_a, rids_b)


def _csr_pairwise(
    store: RecordStore, field: str, rids: IntArray, chunk: int
) -> FloatArray:
    """Row-chunked ``csr @ csr.T`` distance matrix (both backends).

    The full product densified all at once, so transients peaked at
    several times the m×m output; chunked rows bound every intermediate
    to O(chunk · m).  Intersection counts are exact integers, so the
    chunked floats equal the one-shot ones bit for bit — which is also
    why the ``packed`` backend can share this path above its popcount
    size cutoff without breaking bit-identity.
    """
    rids = np.asarray(rids, dtype=np.int64)
    m = int(rids.size)
    csr = store.shingle_csr(field)[rids]
    csr_t = csr.T
    sizes = np.asarray(csr.sum(axis=1), dtype=np.float64).ravel()
    dist = np.empty((m, m), dtype=np.float64)
    for lo in range(0, m, chunk):
        hi = min(lo + chunk, m)
        inter = np.asarray((csr[lo:hi] @ csr_t).todense(), dtype=np.float64)
        union = sizes[lo:hi, None] + sizes[None, :] - inter
        dist[lo:hi] = _finish_distances(inter, union)
    np.fill_diagonal(dist, 0.0)
    return dist


def _csr_block_matrix(
    store: RecordStore, field: str, rids_a: IntArray, rids_b: IntArray
) -> FloatArray:
    """Rectangular CSR-product distance matrix (both backends)."""
    rids_a = np.asarray(rids_a, dtype=np.int64)
    rids_b = np.asarray(rids_b, dtype=np.int64)
    csr = store.shingle_csr(field)
    inter = np.asarray(
        (csr[rids_a] @ csr[rids_b].T).todense(), dtype=np.float64
    )
    sizes = store.set_sizes(field)
    union = sizes[rids_a][:, None] + sizes[rids_b][None, :] - inter
    return _finish_distances(inter, union)
