"""LSH-X blocking baselines (paper §6.1.1 and Appendix E.1).

``LSH-X`` applies the same number ``X`` of hash functions on *every*
record (choosing the (w, z)-scheme with the paper's own optimization
program under budget ``X``), clusters records sharing buckets, and then
verifies candidate clusters with the pairwise function ``P``.  Per the
paper, the comparison against adaLSH uses three optimizations:

1. early termination — stop verifying once ``k`` verified clusters are
   larger than every cluster not yet verified;
2. transitive-closure skipping inside ``P`` (shared
   :class:`~repro.core.pairwise_fn.PairwiseComputation` implementation);
3. the same data structures as adaLSH (parent-pointer trees, bin index).

``LSH-X-nP`` (Appendix E.1) skips verification entirely and trusts the
bucket graph — fast but error-prone, which Figure 20 quantifies.
"""

from __future__ import annotations

import time

from ..core.pairwise_fn import PairwiseComputation
from ..core.result import SOURCE_PAIRWISE, Cluster, FilterResult, WorkCounters
from ..core.transitive import TransitiveHashingFunction
from ..distance.rules import MatchRule
from ..errors import ConfigurationError
from ..lsh.design import DEFAULT_EPSILON, build_design_context, design_scheme
from ..records import RecordStore
from ..rngutil import make_rng
from ..structures.bin_index import BinIndex


class LSHBlocking:
    """The LSH-X / LSH-X-nP baseline.

    Parameters
    ----------
    n_hashes:
        ``X`` — hash functions applied to every record.
    verify:
        ``True`` for LSH-X (pairwise verification with early
        termination), ``False`` for LSH-X-nP.
    """

    def __init__(
        self,
        store: RecordStore,
        rule: MatchRule,
        n_hashes: int,
        verify: bool = True,
        epsilon: float = DEFAULT_EPSILON,
        seed=None,
        pairwise_strategy: str = "auto",
    ):
        if n_hashes < 1:
            raise ConfigurationError(f"n_hashes must be >= 1, got {n_hashes}")
        self.store = store
        self.rule = rule
        self.n_hashes = int(n_hashes)
        self.verify = verify
        self.epsilon = epsilon
        self._rng = make_rng(seed)
        self._pairwise = PairwiseComputation(store, rule, strategy=pairwise_strategy)
        self._prepared = False

    @property
    def name(self) -> str:
        return f"LSH{self.n_hashes}{'' if self.verify else 'nP'}"

    def prepare(self) -> None:
        """Design the single (w, z)-scheme for budget ``X`` (idempotent)."""
        if self._prepared:
            return
        self._ctx = build_design_context(self.store, self.rule, seed=self._rng)
        self._design = design_scheme(self._ctx, self.n_hashes, epsilon=self.epsilon)
        self._function = TransitiveHashingFunction(1, self._design)
        self._pools = [
            comp.pool for branch in self._ctx.branches for comp in branch
        ]
        self._prepared = True

    # ------------------------------------------------------------------
    def run(self, k: int) -> FilterResult:
        """Filter the dataset and return the top-``k`` clusters."""
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        self.prepare()
        baseline_hashes = sum(p.hashes_computed for p in self._pools)
        counters = WorkCounters()
        started = time.perf_counter()
        # Stage 1: hash every record, cluster by shared buckets.
        candidates = [
            Cluster(part, 1)
            for part in self._function.apply(self.store.rids, counters)
        ]
        if self.verify:
            finals = self._verify(candidates, k, counters)
        else:
            finals = sorted(candidates, key=lambda c: c.size, reverse=True)[:k]
        wall = time.perf_counter() - started
        counters.merge_pool_counts(self._pools)
        counters.hashes_computed -= baseline_hashes
        return FilterResult.from_clusters(
            finals,
            counters,
            wall,
            info={
                "method": self.name,
                "n_hashes": self.n_hashes,
                "design": self._design.describe(),
                "verified": self.verify,
            },
        )

    def _verify(self, candidates, k, counters) -> list:
        """Stage 2: verify candidate clusters with ``P``, largest first,
        stopping early per optimization (1)."""
        bins = BinIndex()
        for cluster in candidates:
            bins.add(cluster, cluster.size)
        verified: list[Cluster] = []
        while bins:
            if len(verified) >= k:
                kth = sorted(
                    (c.size for c in verified), reverse=True
                )[k - 1]
                if kth >= bins.peek_largest_size():
                    break
            _size, cluster = bins.pop_largest()
            counters.rounds += 1
            for part in self._pairwise.apply(cluster.rids, counters):
                verified.append(Cluster(part, SOURCE_PAIRWISE))
        verified.sort(key=lambda c: c.size, reverse=True)
        return verified[:k]
