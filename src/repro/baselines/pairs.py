"""The Pairs baseline (paper §6.1.1): the pairwise computation function
``P`` applied to the whole dataset, with the transitive-closure
skipping optimization, followed by picking the ``k`` largest connected
components."""

from __future__ import annotations

import time

from ..core.pairwise_fn import PairwiseComputation
from ..core.result import SOURCE_PAIRWISE, Cluster, FilterResult, WorkCounters
from ..distance.rules import MatchRule
from ..errors import ConfigurationError
from ..records import RecordStore


class PairsBaseline:
    """Exact transitive closure over all record pairs."""

    name = "Pairs"

    def __init__(
        self,
        store: RecordStore,
        rule: MatchRule,
        pairwise_strategy: str = "auto",
        n_jobs: int | None = None,
    ):
        self.store = store
        self.rule = rule
        self._pairwise = PairwiseComputation(
            store, rule, strategy=pairwise_strategy, n_jobs=n_jobs
        )

    def close(self) -> None:
        """Shut down the worker pool (no-op when running serial)."""
        self._pairwise.close()

    def run(self, k: int) -> FilterResult:
        """Compute all components and return the ``k`` largest."""
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        counters = WorkCounters()
        started = time.perf_counter()
        parts = self._pairwise.apply(self.store.rids, counters)
        wall = time.perf_counter() - started
        clusters = [Cluster(part, SOURCE_PAIRWISE) for part in parts]
        clusters.sort(key=lambda c: c.size, reverse=True)
        info: dict[str, object] = {
            "method": self.name,
            "components": len(clusters),
        }
        if self._pairwise.pool is not None:
            info["parallel"] = self._pairwise.pool.stats()
        return FilterResult.from_clusters(
            clusters[:k],
            counters,
            wall,
            info=info,
        )
