"""Baseline filtering methods the paper compares against (§6.1.1):
LSH-X blocking (with and without pairwise verification) and Pairs."""

from .lsh_blocking import LSHBlocking
from .pairs import PairsBaseline

__all__ = ["LSHBlocking", "PairsBaseline"]
