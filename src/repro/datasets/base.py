"""Dataset container: records, ground-truth entity labels, the default
match rule, and the paper's dataset-extension sampler (§6.3: "we
uniformly at random select an entity a and uniformly at random pick a
record r_a referring to the selected entity a, for each record added").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..distance.rules import MatchRule
from ..errors import DatasetError
from ..records import RecordStore
from ..rngutil import SeedLike, make_rng


@dataclass
class Dataset:
    """A labelled dataset: store + ground truth + default rule."""

    name: str
    store: RecordStore
    #: Ground-truth entity id per record.
    labels: np.ndarray
    #: The match rule the paper uses for this dataset family.
    rule: MatchRule
    info: dict = field(default_factory=dict)

    def __post_init__(self):
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.labels.size != len(self.store):
            raise DatasetError(
                f"{self.labels.size} labels for {len(self.store)} records"
            )

    def __len__(self) -> int:
        return len(self.store)

    # ------------------------------------------------------------------
    def ground_truth_clusters(self) -> list[np.ndarray]:
        """C*: clusters of record ids, largest first (ties by label)."""
        order = np.argsort(self.labels, kind="stable")
        sorted_labels = self.labels[order]
        boundaries = np.nonzero(np.diff(sorted_labels))[0] + 1
        groups = np.split(order, boundaries)
        groups.sort(key=lambda g: (-g.size, int(self.labels[g[0]])))
        return [np.sort(g).astype(np.int64) for g in groups]

    def entity_sizes(self) -> np.ndarray:
        """Entity sizes, largest first."""
        _, counts = np.unique(self.labels, return_counts=True)
        return np.sort(counts)[::-1]

    def top_k_rids(self, k: int) -> np.ndarray:
        """O*: records of the ``k`` largest ground-truth entities."""
        clusters = self.ground_truth_clusters()[:k]
        if not clusters:
            return np.zeros(0, dtype=np.int64)
        return np.sort(np.concatenate(clusters))

    def top_k_fraction(self, k: int) -> float:
        """Fraction of the dataset covered by the top-k entities (the
        'Actual' dashed lines of Figure 12(a))."""
        return self.top_k_rids(k).size / len(self)


def extend_dataset(dataset: Dataset, factor: int, seed: SeedLike = None) -> Dataset:
    """The paper's 2x/4x/8x extension: add ``(factor-1) * n`` records,
    each a copy of a uniformly chosen record of a uniformly chosen
    entity."""
    if factor < 1:
        raise DatasetError(f"factor must be >= 1, got {factor}")
    if factor == 1:
        return dataset
    rng = make_rng(seed)
    n = len(dataset)
    extra = n * (factor - 1)
    entities = np.unique(dataset.labels)
    rids_of = {int(e): np.nonzero(dataset.labels == e)[0] for e in entities}
    chosen_entities = rng.choice(entities, size=extra, replace=True)
    chosen_rids = np.array(
        [int(rng.choice(rids_of[int(e)])) for e in chosen_entities],
        dtype=np.int64,
    )
    new_store = dataset.store.concat(dataset.store.take(chosen_rids))
    new_labels = np.concatenate([dataset.labels, chosen_entities])
    return Dataset(
        name=f"{dataset.name}{factor}x",
        store=new_store,
        labels=new_labels,
        rule=dataset.rule,
        info={**dataset.info, "extended_from": dataset.name, "factor": factor},
    )
