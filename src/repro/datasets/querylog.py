"""Query-log-like synthetic dataset (paper §1: "popular questions in
search engine query logs").

Each record is a search query — a *short* token set (2-8 tokens), an
order of magnitude smaller than SpotSigs' signature sets.  Rephrasings
of the same question (the paper's entities) share most tokens; popular
questions get Zipf-distributed repeat counts, and the long tail is
one-off queries.

Short sets are the stress case for minhash-based filtering: each hash
has few elements to choose from, and shared stopwords put the Jaccard
noise floor between *unrelated* queries far above SpotSigs' (a couple
of shared tokens out of ten vs. a few out of three hundred).  The
cheap, low-w hashing functions therefore cannot separate sparse
regions, and Adaptive LSH must climb several levels before the dataset
shatters — the worst case for the paper's "sparse areas are cheap"
insight, and a regime none of the paper's three datasets covers.
(Real query pipelines strip stopwords before shingling for exactly
this reason; raise ``stopword_p`` to make the problem harder.)
"""

from __future__ import annotations

import numpy as np

from ..distance import JaccardDistance, ThresholdRule
from ..records import RecordStore, Schema
from ..rngutil import make_rng
from .base import Dataset
from .zipfsizes import zipf_sizes

#: Two queries match when their token Jaccard similarity is >= 0.5.
DEFAULT_SIM = 0.5

QUERYLOG_SCHEMA = Schema.single_shingles("tokens")


def querylog_rule(similarity: float = DEFAULT_SIM) -> ThresholdRule:
    """Match rule: token-set Jaccard similarity >= ``similarity``."""
    return ThresholdRule(JaccardDistance("tokens"), 1.0 - similarity)


def generate_querylog(
    n_records: int = 5000,
    n_popular: "int | None" = None,
    top1_frac: float = 0.04,
    zipf_exponent: float = 1.2,
    question_tokens: tuple = (5, 10),
    rephrase_keep_p: float = 0.92,
    rephrase_extra: tuple = (0, 1),
    vocab_size: int = 20_000,
    stopword_count: int = 25,
    stopword_p: float = 0.15,
    seed=None,
) -> Dataset:
    """Generate a query-log-like dataset of ``n_records`` queries.

    A rephrasing keeps each content token with ``rephrase_keep_p`` and
    may add up to ``rephrase_extra[1]`` new tokens; common stopwords
    (ids ``0..stopword_count``) appear in many unrelated queries,
    creating the near-threshold noise floor.
    """
    rng = make_rng(seed)
    if n_popular is None:
        n_popular = max(10, n_records // 60)
    top1 = max(2, int(round(top1_frac * n_records)))
    sizes = zipf_sizes(n_popular, zipf_exponent, top1)
    sizes = sizes[sizes >= 2]
    n_background = max(0, n_records - int(sizes.sum()))
    sizes = np.concatenate([sizes, np.ones(n_background, dtype=np.int64)])

    stopwords = np.arange(stopword_count, dtype=np.int64)
    records, labels = [], []
    next_id = stopword_count
    for entity, size in enumerate(sizes):
        base_size = int(rng.integers(question_tokens[0], question_tokens[1] + 1))
        base = np.arange(next_id, next_id + base_size, dtype=np.int64)
        next_id += base_size
        for _ in range(int(size)):
            kept = base[rng.random(base.size) < rephrase_keep_p]
            if kept.size == 0:
                kept = base[:1]
            n_extra = int(rng.integers(rephrase_extra[0], rephrase_extra[1] + 1))
            extra = rng.integers(stopword_count, vocab_size, size=n_extra).astype(
                np.int64
            )
            shared = stopwords[rng.random(stopwords.size) < stopword_p]
            records.append(np.unique(np.concatenate([kept, extra, shared])))
            labels.append(entity)

    order = rng.permutation(len(labels))
    store = RecordStore(QUERYLOG_SCHEMA, {"tokens": [records[i] for i in order]})
    return Dataset(
        name="QueryLog",
        store=store,
        labels=np.asarray(labels, dtype=np.int64)[order],
        rule=querylog_rule(),
        info={
            "zipf_exponent": zipf_exponent,
            "n_popular": int((sizes >= 2).sum()),
            "top1_size": int(sizes.max()),
        },
    )
