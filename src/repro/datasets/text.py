"""Synthetic-text helpers: pseudo-word vocabularies, token corruption,
and stable token → shingle-id mapping.

The filtering algorithms only ever see integer shingle ids, but the
generators produce real token strings so the examples can print
human-readable records.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..rngutil import SeedLike, make_rng

_SYLLABLES = (
    "ba be bi bo bu da de di do du ka ke ki ko ku la le li lo lu "
    "ma me mi mo mu na ne ni no nu ra re ri ro ru sa se si so su "
    "ta te ti to tu va ve vi vo vu za ze zi zo zu"
).split()


def make_vocabulary(
    size: int,
    seed: SeedLike = None,
    min_syllables: int = 2,
    max_syllables: int = 4,
) -> list[str]:
    """``size`` distinct pseudo-words built from random syllables."""
    rng = make_rng(seed)
    words: set[str] = set()
    while len(words) < size:
        n = int(rng.integers(min_syllables, max_syllables + 1))
        word = "".join(rng.choice(_SYLLABLES) for _ in range(n))
        words.add(word)
    return sorted(words)


def token_ids(tokens) -> np.ndarray:
    """Stable shingle ids for tokens (CRC-32 of the UTF-8 text)."""
    return np.asarray(
        sorted({zlib.crc32(t.encode("utf-8")) for t in tokens}), dtype=np.int64
    )


def corrupt_tokens(tokens, rng, drop_p: float = 0.0, replace_p: float = 0.0, vocab=None):
    """A corrupted copy of a token list: each token is independently
    dropped with ``drop_p`` or replaced with a random vocabulary word
    with ``replace_p``."""
    rng = make_rng(rng)
    out = []
    for token in tokens:
        roll = rng.random()
        if roll < drop_p:
            continue
        if roll < drop_p + replace_p and vocab is not None:
            out.append(vocab[int(rng.integers(len(vocab)))])
        else:
            out.append(token)
    if not out:
        out = [tokens[int(rng.integers(len(tokens)))]]
    return out
