"""PopularImages-like synthetic dataset (paper §6.3, §7.4.2).

The paper reduces each image to an RGB histogram and matches two images
when the cosine (angle) distance of their histograms is below a small
angle threshold (2, 3, or 5 degrees).  Each of the three datasets has
10000 records; 500 "popular" original images receive Zipf-distributed
copy counts — exponent 1.05 makes the top-1 entity ~500 records,
1.1 ~1000, and 1.2 ~1700 — and the rest of the dataset is filled with
non-popular images.

The generator works directly in histogram space:

* a popular entity is a random Dirichlet histogram; each copy is an
  angle-controlled perturbation whose angle to the original is drawn
  from a half-normal distribution, so a strict 2-degree threshold
  misses part of each entity while 5 degrees captures nearly all of it
  (the Figure 17 accuracy trend);
* non-popular filler images come in small "look-alike families" spread
  just *outside* the threshold, reproducing the paper's observation
  that "for almost every image there are images that refer to a
  different entity but have a similar histogram".
"""

from __future__ import annotations

import numpy as np

from ..distance import CosineDistance, ThresholdRule
from ..distance.cosine import degrees_to_normalized
from ..errors import DatasetError
from ..records import RecordStore, Schema
from ..rngutil import make_rng
from .base import Dataset
from .zipfsizes import zipf_sizes

#: Paper top-1 sizes per Zipf exponent (§7.4.2).
TOP1_BY_EXPONENT = {1.05: 500, 1.1: 1000, 1.2: 1700}

IMAGES_SCHEMA = Schema.single_vector("histogram")


def images_rule(threshold_degrees: float = 3.0) -> ThresholdRule:
    """Match rule: histogram angle below ``threshold_degrees``."""
    return ThresholdRule(
        CosineDistance("histogram"), degrees_to_normalized(threshold_degrees)
    )


def _unit(v: np.ndarray) -> np.ndarray:
    return v / np.linalg.norm(v)


def _perturb_at_angle(rng, base_unit: np.ndarray, degrees: float) -> np.ndarray:
    """A histogram at (approximately) ``degrees`` from ``base_unit``.

    Rotates toward a random orthogonal direction, then clips negatives
    (histograms are non-negative), which can nudge the angle slightly.
    """
    direction = rng.standard_normal(base_unit.size)
    direction -= direction @ base_unit * base_unit
    norm = np.linalg.norm(direction)
    if norm == 0.0:  # pragma: no cover - probability zero
        return base_unit.copy()
    direction /= norm
    theta = np.deg2rad(degrees)
    rotated = np.cos(theta) * base_unit + np.sin(theta) * direction
    rotated = np.clip(rotated, 0.0, None)
    return _unit(rotated)


def generate_popular_images(
    n_records: int = 10_000,
    n_popular: int = 500,
    zipf_exponent: float = 1.05,
    top1_size: "int | None" = None,
    dim: int = 64,
    copy_angle_scale: float = 1.1,
    copy_angle_max: float = 6.0,
    family_size: int = 12,
    family_spread: tuple = (4.0, 14.0),
    seed=None,
) -> Dataset:
    """Generate a PopularImages-like dataset.

    ``copy_angle_scale`` is the half-normal scale (degrees) of
    copy-to-original angles; ``family_spread`` the angle range (degrees)
    of filler look-alike families relative to their anchors.
    """
    rng = make_rng(seed)
    if top1_size is None:
        top1_size = TOP1_BY_EXPONENT.get(
            round(zipf_exponent, 2), int(500 * zipf_exponent**14)
        )
    sizes = zipf_sizes(n_popular, zipf_exponent, top1_size)
    total_popular = int(sizes.sum())
    if total_popular > n_records:
        raise DatasetError(
            f"popular entities need {total_popular} records but "
            f"n_records={n_records}; lower top1_size or n_popular"
        )

    vectors = np.empty((n_records, dim), dtype=np.float64)
    labels = np.empty(n_records, dtype=np.int64)
    row = 0
    for entity, size in enumerate(sizes):
        base = _unit(rng.dirichlet(np.ones(dim)))
        vectors[row] = base
        labels[row] = entity
        row += 1
        for _ in range(int(size) - 1):
            degrees = min(abs(rng.normal(0.0, copy_angle_scale)), copy_angle_max)
            vectors[row] = _perturb_at_angle(rng, base, degrees)
            labels[row] = entity
            row += 1

    # Filler: look-alike families of singleton entities clustered just
    # outside the match threshold around shared anchors.
    next_entity = n_popular
    while row < n_records:
        anchor = _unit(rng.dirichlet(np.ones(dim)))
        for _ in range(min(family_size, n_records - row)):
            degrees = float(rng.uniform(*family_spread))
            vectors[row] = _perturb_at_angle(rng, anchor, degrees)
            labels[row] = next_entity
            next_entity += 1
            row += 1

    order = rng.permutation(n_records)
    store = RecordStore(IMAGES_SCHEMA, {"histogram": vectors[order]})
    return Dataset(
        name=f"PopularImages(s={zipf_exponent})",
        store=store,
        labels=labels[order],
        rule=images_rule(),
        info={
            "zipf_exponent": zipf_exponent,
            "top1_size": int(top1_size),
            "n_popular": int(n_popular),
            "dim": dim,
        },
    )
