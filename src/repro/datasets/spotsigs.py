"""SpotSigs-like synthetic dataset (paper §6.3).

The real SpotSigs gold set is ~2200 web articles, each reduced to a set
of *spot signatures*; articles sharing an origin story form one entity
and two records match when their sets' Jaccard similarity is at least
0.4 (0.3 and 0.5 are also evaluated).

The generator reproduces the structure: each story has a canonical
signature set; an article keeps each canonical signature independently
with probability ``keep_p`` and mixes in a few site-specific noise
signatures, giving intra-entity similarities centered around
``keep_p / (2 - keep_p)`` (~0.61 for the default 0.76) — comfortably
above the 0.4 threshold but with a tail that the 0.5 threshold cuts,
exactly the regime Figure 11 explores.  A shared "boilerplate" token
region keeps cross-entity similarity positive but far below threshold.
Sets are an order of magnitude larger than Cora's title shingles,
making hashing visibly more expensive (the paper's "higher dimensional
dataset" point in §7.2.1).
"""

from __future__ import annotations

import numpy as np

from ..distance import JaccardDistance, ThresholdRule
from ..records import RecordStore, Schema
from ..rngutil import make_rng
from .base import Dataset
from .zipfsizes import zipf_sizes_for_total

#: Paper default Jaccard similarity threshold.
DEFAULT_SIM = 0.4

SPOTSIGS_SCHEMA = Schema.single_shingles("signatures")


def spotsigs_rule(similarity: float = DEFAULT_SIM) -> ThresholdRule:
    """Match rule: Jaccard similarity of signature sets >= ``similarity``."""
    return ThresholdRule(JaccardDistance("signatures"), 1.0 - similarity)


def generate_spotsigs(
    n_records: int = 2200,
    n_popular: "int | None" = None,
    top1_frac: float = 0.05,
    zipf_exponent: float = 1.25,
    keep_p: float = 0.76,
    base_set_size: tuple = (90, 180),
    noise_tokens: tuple = (4, 14),
    boilerplate_size: int = 60,
    boilerplate_p: float = 0.08,
    vocab_size: int = 60_000,
    seed=None,
) -> Dataset:
    """Generate a SpotSigs-like dataset of ``n_records`` articles.

    The top-1 story gets ``top1_frac`` of all records (the paper's
    favorable regime: "the top-1 entity represents 5% of all records
    and the top-k entities represent less than 10%", §7.1); popular
    stories follow a Zipf decay below it, and the rest of the dataset
    is background articles with a story of their own (singleton
    entities).
    """
    rng = make_rng(seed)
    from .zipfsizes import zipf_sizes

    top1 = max(2, int(round(top1_frac * n_records)))
    if n_popular is None:
        n_popular = max(5, n_records // 40)
    sizes = zipf_sizes(n_popular, zipf_exponent, top1)
    # Drop popular entities that decayed to singletons; background
    # articles play that role.
    sizes = sizes[sizes >= 2]
    n_background = n_records - int(sizes.sum())
    if n_background < 0:
        sizes = zipf_sizes_for_total(len(sizes), zipf_exponent, n_records)
        n_background = 0
    sizes = np.concatenate([sizes, np.ones(n_background, dtype=np.int64)])

    # The first `boilerplate_size` ids are boilerplate shared across
    # stories (navigation text, bylines, ...).
    boilerplate = np.arange(boilerplate_size, dtype=np.int64)
    next_id = boilerplate_size

    records, labels = [], []
    for entity, size in enumerate(sizes):
        base_size = int(rng.integers(base_set_size[0], base_set_size[1] + 1))
        base = np.arange(next_id, next_id + base_size, dtype=np.int64)
        next_id += base_size
        for _ in range(int(size)):
            kept = base[rng.random(base.size) < keep_p]
            n_noise = int(rng.integers(noise_tokens[0], noise_tokens[1] + 1))
            noise = rng.integers(
                boilerplate_size, vocab_size, size=n_noise
            ).astype(np.int64)
            shared = boilerplate[rng.random(boilerplate.size) < boilerplate_p]
            records.append(np.unique(np.concatenate([kept, noise, shared])))
            labels.append(entity)

    order = rng.permutation(len(labels))
    store = RecordStore(
        SPOTSIGS_SCHEMA, {"signatures": [records[i] for i in order]}
    )
    return Dataset(
        name="SpotSigs",
        store=store,
        labels=np.asarray(labels, dtype=np.int64)[order],
        rule=spotsigs_rule(),
        info={
            "zipf_exponent": zipf_exponent,
            "keep_p": keep_p,
            "n_popular": int((sizes >= 2).sum()),
            "top1_size": int(sizes.max()),
        },
    )
