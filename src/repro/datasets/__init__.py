"""Synthetic datasets mirroring the paper's three evaluation datasets
(§6.3): Cora (multi-field publications), SpotSigs (near-duplicate web
articles), and PopularImages (RGB-histogram image records)."""

from .base import Dataset, extend_dataset
from .cora import build_cora_layout, generate_cora, stream_cora
from .popularimages import generate_popular_images
from .querylog import generate_querylog
from .spotsigs import generate_spotsigs
from .zipfsizes import zipf_sizes

__all__ = [
    "Dataset",
    "extend_dataset",
    "generate_cora",
    "stream_cora",
    "build_cora_layout",
    "generate_spotsigs",
    "generate_popular_images",
    "generate_querylog",
    "zipf_sizes",
]
