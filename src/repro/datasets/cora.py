"""Cora-like synthetic dataset (paper §6.3).

The real Cora is ~2000 scientific-publication records with title,
authors, venue/volume/pages fields.  This generator reproduces its
structural properties:

* a skewed (Zipf-ish) entity-size distribution;
* three shingle-set fields per record — ``title``, ``authors``,
  ``rest`` — derived from corrupted copies of each entity's canonical
  strings (typos are modelled as token drops/replacements, which is
  what word-level shingles turn typos into);
* the paper's combined match rule: *average* Jaccard similarity of
  title and authors at least 0.7 AND Jaccard similarity of the rest at
  least 0.2 (an AND of a weighted-average rule and a threshold rule —
  the Appendix C.4 "combined rules" case).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from ..distance import AndRule, JaccardDistance, ThresholdRule, WeightedAverageRule
from ..records import RecordStore, Schema, FieldKind, FieldSpec
from ..rngutil import SeedLike, make_rng
from ..types import IntArray
from .base import Dataset
from .text import corrupt_tokens, make_vocabulary, token_ids
from .zipfsizes import zipf_sizes_for_total

if TYPE_CHECKING:
    from ..storage import StoreLayout

#: Paper rule: avg Jaccard similarity(title, authors) >= 0.7.
TITLE_AUTHOR_SIM = 0.7
#: Paper rule: Jaccard similarity(rest) >= 0.2.
REST_SIM = 0.2

CORA_SCHEMA = Schema(
    (
        FieldSpec("title", FieldKind.SHINGLES),
        FieldSpec("authors", FieldKind.SHINGLES),
        FieldSpec("rest", FieldKind.SHINGLES),
    )
)


def cora_rule() -> AndRule:
    """The paper's Cora match rule as a rule tree."""
    title_author = WeightedAverageRule(
        [JaccardDistance("title"), JaccardDistance("authors")],
        weights=[0.5, 0.5],
        threshold=1.0 - TITLE_AUTHOR_SIM,
    )
    rest = ThresholdRule(JaccardDistance("rest"), 1.0 - REST_SIM)
    return AndRule([title_author, rest])


def _cora_entity_sizes(
    n_records: int,
    n_popular: "int | None",
    top1_frac: float,
    zipf_exponent: float,
) -> IntArray:
    """Entity sizes (popular Zipf block + singleton background).

    Pure arithmetic — no RNG draws — so extracting it from
    :func:`generate_cora` left that generator's streams untouched.
    """
    from .zipfsizes import zipf_sizes

    top1 = max(2, int(round(top1_frac * n_records)))
    if n_popular is None:
        n_popular = max(5, n_records // 25)
    sizes = zipf_sizes(n_popular, zipf_exponent, top1)
    sizes = sizes[sizes >= 2]
    n_background = n_records - int(sizes.sum())
    if n_background < 0:
        sizes = zipf_sizes_for_total(len(sizes), zipf_exponent, n_records)
        n_background = 0
    return np.concatenate([sizes, np.ones(n_background, dtype=np.int64)])


def generate_cora(
    n_records: int = 2000,
    n_popular: "int | None" = None,
    top1_frac: float = 0.05,
    zipf_exponent: float = 1.35,
    drop_p: float = 0.06,
    replace_p: float = 0.03,
    seed=None,
) -> Dataset:
    """Generate a Cora-like dataset of ``n_records`` records.

    The top-1 publication gets ``top1_frac`` of all records (the
    paper's favorable §7.1 regime), smaller popular publications follow
    a Zipf decay, and the remainder are one-off publications (singleton
    entities).
    """
    rng = make_rng(seed)
    sizes = _cora_entity_sizes(n_records, n_popular, top1_frac, zipf_exponent)

    title_vocab = make_vocabulary(2500, seed=rng)
    author_vocab = make_vocabulary(1200, seed=rng)
    venue_vocab = make_vocabulary(400, seed=rng)

    def pick(vocab, count):
        return [vocab[int(i)] for i in rng.integers(0, len(vocab), size=count)]

    titles, authors, rests, labels = [], [], [], []
    raw = []
    for entity, size in enumerate(sizes):
        base_title = pick(title_vocab, int(rng.integers(8, 15)))
        base_authors = pick(author_vocab, int(rng.integers(2, 6)))
        base_rest = pick(venue_vocab, int(rng.integers(6, 12))) + [
            f"vol{int(rng.integers(1, 40))}",
            f"pp{int(rng.integers(1, 900))}",
            f"{int(rng.integers(1985, 2016))}",
        ]
        for _ in range(int(size)):
            title = corrupt_tokens(base_title, rng, drop_p, replace_p, title_vocab)
            author = corrupt_tokens(base_authors, rng, drop_p / 2, replace_p / 2, author_vocab)
            rest = corrupt_tokens(base_rest, rng, drop_p, replace_p, venue_vocab)
            titles.append(token_ids(title))
            authors.append(token_ids(author))
            rests.append(token_ids(rest))
            labels.append(entity)
            raw.append(
                {
                    "title": " ".join(title),
                    "authors": ", ".join(author),
                    "rest": " ".join(rest),
                }
            )
    # Shuffle so record order carries no entity signal.
    order = rng.permutation(len(labels))
    store = RecordStore(
        CORA_SCHEMA,
        {
            "title": [titles[i] for i in order],
            "authors": [authors[i] for i in order],
            "rest": [rests[i] for i in order],
        },
    )
    labels_arr = np.asarray(labels, dtype=np.int64)[order]
    return Dataset(
        name="Cora",
        store=store,
        labels=labels_arr,
        rule=cora_rule(),
        info={
            "raw": [raw[i] for i in order],
            "zipf_exponent": zipf_exponent,
            "n_popular": int((sizes >= 2).sum()),
            "top1_size": int(sizes.max()),
        },
    )


# ----------------------------------------------------------------------
# Out-of-core construction
# ----------------------------------------------------------------------
def stream_cora(
    n_records: int,
    chunk_records: int = 100_000,
    n_popular: "int | None" = None,
    top1_frac: float = 0.05,
    zipf_exponent: float = 1.35,
    drop_p: float = 0.06,
    replace_p: float = 0.03,
    seed: SeedLike = None,
) -> Iterator[tuple[dict[str, list[IntArray]], IntArray]]:
    """Yield a Cora-like dataset as ``(columns, labels)`` chunks.

    The bounded-memory twin of :func:`generate_cora`: entities follow
    the same Zipf size model and records the same corruption model, but
    rows are emitted ``chunk_records`` at a time for
    :class:`~repro.storage.StoreWriter` to flush, so peak memory is one
    chunk no matter how large ``n_records`` is.  Each chunk is shuffled
    internally (a chunk-local stand-in for :func:`generate_cora`'s
    global permutation — entity blocks still never survive in record
    order, but records of one entity stay within ~one chunk of each
    other) and no raw-string previews are kept.  Deterministic in
    ``seed``; the streams differ from :func:`generate_cora`'s for the
    same seed because the global shuffle is gone.
    """
    from ..errors import DatasetError

    if chunk_records < 1:
        raise DatasetError(f"chunk_records must be >= 1, got {chunk_records}")
    rng = make_rng(seed)
    sizes = _cora_entity_sizes(n_records, n_popular, top1_frac, zipf_exponent)

    title_vocab = make_vocabulary(2500, seed=rng)
    author_vocab = make_vocabulary(1200, seed=rng)
    venue_vocab = make_vocabulary(400, seed=rng)

    def pick(vocab: list[str], count: int) -> list[str]:
        return [vocab[int(i)] for i in rng.integers(0, len(vocab), size=count)]

    titles: list[IntArray] = []
    authors: list[IntArray] = []
    rests: list[IntArray] = []
    labels: list[int] = []

    def flush() -> tuple[dict[str, list[IntArray]], IntArray]:
        order = rng.permutation(len(labels))
        chunk = (
            {
                "title": [titles[i] for i in order],
                "authors": [authors[i] for i in order],
                "rest": [rests[i] for i in order],
            },
            np.asarray(labels, dtype=np.int64)[order],
        )
        titles.clear()
        authors.clear()
        rests.clear()
        labels.clear()
        return chunk

    for entity, size in enumerate(sizes):
        base_title = pick(title_vocab, int(rng.integers(8, 15)))
        base_authors = pick(author_vocab, int(rng.integers(2, 6)))
        base_rest = pick(venue_vocab, int(rng.integers(6, 12))) + [
            f"vol{int(rng.integers(1, 40))}",
            f"pp{int(rng.integers(1, 900))}",
            f"{int(rng.integers(1985, 2016))}",
        ]
        for _ in range(int(size)):
            title = corrupt_tokens(base_title, rng, drop_p, replace_p, title_vocab)
            author = corrupt_tokens(
                base_authors, rng, drop_p / 2, replace_p / 2, author_vocab
            )
            rest = corrupt_tokens(base_rest, rng, drop_p, replace_p, venue_vocab)
            titles.append(token_ids(title))
            authors.append(token_ids(author))
            rests.append(token_ids(rest))
            labels.append(entity)
            if len(labels) == chunk_records:
                yield flush()
    if labels:
        yield flush()


def build_cora_layout(
    path: Any,
    n_records: int,
    chunk_records: int = 100_000,
    seed: SeedLike = None,
    **params: Any,
) -> "StoreLayout":
    """Stream a Cora-like dataset straight to an on-disk layout.

    This is how ``cora(2_000_000)`` gets built: :func:`stream_cora`
    chunks flow through :func:`repro.storage.write_dataset_chunks`, so
    the full dataset never exists in memory.  Open the result with
    :func:`repro.storage.open_dataset` for a memory-mapped
    :class:`Dataset`.
    """
    from ..io import rule_to_spec
    from ..storage import write_dataset_chunks

    return write_dataset_chunks(
        CORA_SCHEMA,
        stream_cora(
            n_records, chunk_records=chunk_records, seed=seed, **params
        ),
        path,
        rule_spec=rule_to_spec(cora_rule()),
        name="Cora",
        info={
            "streamed": True,
            "n_records": int(n_records),
            "chunk_records": int(chunk_records),
        },
    )
