"""Cora-like synthetic dataset (paper §6.3).

The real Cora is ~2000 scientific-publication records with title,
authors, venue/volume/pages fields.  This generator reproduces its
structural properties:

* a skewed (Zipf-ish) entity-size distribution;
* three shingle-set fields per record — ``title``, ``authors``,
  ``rest`` — derived from corrupted copies of each entity's canonical
  strings (typos are modelled as token drops/replacements, which is
  what word-level shingles turn typos into);
* the paper's combined match rule: *average* Jaccard similarity of
  title and authors at least 0.7 AND Jaccard similarity of the rest at
  least 0.2 (an AND of a weighted-average rule and a threshold rule —
  the Appendix C.4 "combined rules" case).
"""

from __future__ import annotations

import numpy as np

from ..distance import AndRule, JaccardDistance, ThresholdRule, WeightedAverageRule
from ..records import RecordStore, Schema, FieldKind, FieldSpec
from ..rngutil import make_rng
from .base import Dataset
from .text import corrupt_tokens, make_vocabulary, token_ids
from .zipfsizes import zipf_sizes_for_total

#: Paper rule: avg Jaccard similarity(title, authors) >= 0.7.
TITLE_AUTHOR_SIM = 0.7
#: Paper rule: Jaccard similarity(rest) >= 0.2.
REST_SIM = 0.2

CORA_SCHEMA = Schema(
    (
        FieldSpec("title", FieldKind.SHINGLES),
        FieldSpec("authors", FieldKind.SHINGLES),
        FieldSpec("rest", FieldKind.SHINGLES),
    )
)


def cora_rule() -> AndRule:
    """The paper's Cora match rule as a rule tree."""
    title_author = WeightedAverageRule(
        [JaccardDistance("title"), JaccardDistance("authors")],
        weights=[0.5, 0.5],
        threshold=1.0 - TITLE_AUTHOR_SIM,
    )
    rest = ThresholdRule(JaccardDistance("rest"), 1.0 - REST_SIM)
    return AndRule([title_author, rest])


def generate_cora(
    n_records: int = 2000,
    n_popular: "int | None" = None,
    top1_frac: float = 0.05,
    zipf_exponent: float = 1.35,
    drop_p: float = 0.06,
    replace_p: float = 0.03,
    seed=None,
) -> Dataset:
    """Generate a Cora-like dataset of ``n_records`` records.

    The top-1 publication gets ``top1_frac`` of all records (the
    paper's favorable §7.1 regime), smaller popular publications follow
    a Zipf decay, and the remainder are one-off publications (singleton
    entities).
    """
    rng = make_rng(seed)
    from .zipfsizes import zipf_sizes

    top1 = max(2, int(round(top1_frac * n_records)))
    if n_popular is None:
        n_popular = max(5, n_records // 25)
    sizes = zipf_sizes(n_popular, zipf_exponent, top1)
    sizes = sizes[sizes >= 2]
    n_background = n_records - int(sizes.sum())
    if n_background < 0:
        sizes = zipf_sizes_for_total(len(sizes), zipf_exponent, n_records)
        n_background = 0
    sizes = np.concatenate([sizes, np.ones(n_background, dtype=np.int64)])

    title_vocab = make_vocabulary(2500, seed=rng)
    author_vocab = make_vocabulary(1200, seed=rng)
    venue_vocab = make_vocabulary(400, seed=rng)

    def pick(vocab, count):
        return [vocab[int(i)] for i in rng.integers(0, len(vocab), size=count)]

    titles, authors, rests, labels = [], [], [], []
    raw = []
    for entity, size in enumerate(sizes):
        base_title = pick(title_vocab, int(rng.integers(8, 15)))
        base_authors = pick(author_vocab, int(rng.integers(2, 6)))
        base_rest = pick(venue_vocab, int(rng.integers(6, 12))) + [
            f"vol{int(rng.integers(1, 40))}",
            f"pp{int(rng.integers(1, 900))}",
            f"{int(rng.integers(1985, 2016))}",
        ]
        for _ in range(int(size)):
            title = corrupt_tokens(base_title, rng, drop_p, replace_p, title_vocab)
            author = corrupt_tokens(base_authors, rng, drop_p / 2, replace_p / 2, author_vocab)
            rest = corrupt_tokens(base_rest, rng, drop_p, replace_p, venue_vocab)
            titles.append(token_ids(title))
            authors.append(token_ids(author))
            rests.append(token_ids(rest))
            labels.append(entity)
            raw.append(
                {
                    "title": " ".join(title),
                    "authors": ", ".join(author),
                    "rest": " ".join(rest),
                }
            )
    # Shuffle so record order carries no entity signal.
    order = rng.permutation(len(labels))
    store = RecordStore(
        CORA_SCHEMA,
        {
            "title": [titles[i] for i in order],
            "authors": [authors[i] for i in order],
            "rest": [rests[i] for i in order],
        },
    )
    labels_arr = np.asarray(labels, dtype=np.int64)[order]
    return Dataset(
        name="Cora",
        store=store,
        labels=labels_arr,
        rule=cora_rule(),
        info={
            "raw": [raw[i] for i in order],
            "zipf_exponent": zipf_exponent,
            "n_popular": int((sizes >= 2).sum()),
            "top1_size": int(sizes.max()),
        },
    )
