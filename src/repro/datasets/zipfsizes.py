"""Zipfian entity-size construction.

The paper's PopularImages datasets fix the size of the top-1 entity and
let size decay as ``rank^-s`` (§7.4.2: exponent 1.05 gives a top-1 of
~500 records, 1.2 gives ~1700); the remaining records are filled with
singleton entities.  This module provides that construction and a
variant normalized by total record count.
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError


def zipf_sizes(
    n_entities: int,
    exponent: float,
    largest: int,
    min_size: int = 1,
) -> np.ndarray:
    """Entity sizes ``max(min_size, round(largest * rank^-exponent))``.

    Sizes are returned largest first.
    """
    if n_entities < 1 or largest < 1:
        raise DatasetError(
            f"need n_entities >= 1 and largest >= 1 "
            f"(got {n_entities}, {largest})"
        )
    if exponent <= 0:
        raise DatasetError(f"exponent must be positive, got {exponent}")
    ranks = np.arange(1, n_entities + 1, dtype=np.float64)
    sizes = np.maximum(min_size, np.round(largest * ranks**-exponent))
    return sizes.astype(np.int64)


def zipf_sizes_for_total(
    n_entities: int,
    exponent: float,
    total: int,
    min_size: int = 1,
) -> np.ndarray:
    """Zipf sizes scaled so they sum to (approximately, then exactly)
    ``total``; the largest entity absorbs rounding leftovers."""
    if total < n_entities * min_size:
        raise DatasetError(
            f"total {total} cannot cover {n_entities} entities of at "
            f"least {min_size} records"
        )
    ranks = np.arange(1, n_entities + 1, dtype=np.float64)
    weights = ranks**-exponent
    raw = weights / weights.sum() * total
    sizes = np.maximum(min_size, np.floor(raw)).astype(np.int64)
    # Push the rounding remainder into the largest entities first.
    leftover = total - int(sizes.sum())
    idx = 0
    while leftover != 0:
        step = 1 if leftover > 0 else -1
        if sizes[idx % n_entities] + step >= min_size:
            sizes[idx % n_entities] += step
            leftover -= step
        idx += 1
    return np.sort(sizes)[::-1].copy()
