"""Shared type aliases for array-heavy signatures.

The package passes three shapes of NumPy data around constantly:
record-id arrays (``int64``), distance/probability arrays
(``float64``), and match masks (``bool``).  Centralizing the aliases
keeps signatures short and makes the dtype contract part of the type —
``rids: IntArray`` says both "array" and "int64".

``ArrayLike`` covers the loose inputs public entry points accept
(lists, tuples, arrays) before they are coerced with ``np.asarray``.
"""

from __future__ import annotations

from typing import Any, TypeAlias

import numpy as np
from numpy.typing import ArrayLike, NDArray

__all__ = [
    "ArrayLike",
    "AnyArray",
    "BoolArray",
    "FloatArray",
    "IntArray",
    "JSONDict",
]

#: Record-id and other integer arrays (dtype ``int64``).
IntArray: TypeAlias = NDArray[np.int64]
#: Distance, probability and cost arrays (dtype ``float64``).
FloatArray: TypeAlias = NDArray[np.float64]
#: Match masks.
BoolArray: TypeAlias = NDArray[np.bool_]
#: Arrays whose dtype varies by hash family (uint8/uint32/...).
AnyArray: TypeAlias = NDArray[Any]
#: JSON-object payloads (reports, metric snapshots, info dicts).
JSONDict: TypeAlias = dict[str, Any]
