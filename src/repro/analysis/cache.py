"""Content-hash incremental cache for warm ``repro lint`` runs.

The engine's per-file work (parse + model build + every rule) is pure:
its output depends only on the file's bytes, the active rule set, and
the analyzer's own code.  So a warm run can skip any file whose content
hash matches the last run — provided the *fingerprint* (analyzer source
+ rule ids) matches too, which is what invalidates the whole cache when
a rule changes behaviour without any target file changing.

The cache stores **raw per-file results** (post-noqa, pre-baseline):
baselines are applied per run in the engine, so the same cache serves
runs with different ``--baseline`` flags.  The on-disk format is one
JSON document; load failures of any kind degrade to an empty cache —
a corrupt cache must never break a lint run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding

#: Bump when the cached-entry layout changes.
CACHE_FORMAT_VERSION = 1


def file_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def engine_fingerprint(rule_ids: tuple[str, ...]) -> str:
    """Hash of everything besides file content that shapes results.

    Covers the active rule ids and the source of every module in the
    analysis package itself, so editing a rule (or the engine, model,
    or this file) invalidates the cache without a manual version bump.
    """
    hasher = hashlib.sha256()
    hasher.update(f"v{CACHE_FORMAT_VERSION}|{','.join(rule_ids)}|".encode())
    package_dir = Path(__file__).resolve().parent
    for source in sorted(package_dir.glob("*.py")):
        hasher.update(source.name.encode())
        try:
            hasher.update(source.read_bytes())
        except OSError:  # unreadable analyzer source: treat as changed
            hasher.update(b"<unreadable>")
    return hasher.hexdigest()


@dataclass
class CachedFile:
    """One file's raw lint result, keyed by its content hash."""

    digest: str
    findings: list[Finding]
    suppressed: int

    def to_dict(self) -> dict:
        return {
            "digest": self.digest,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": self.suppressed,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> CachedFile:
        return cls(
            digest=str(doc["digest"]),
            findings=[Finding(**f) for f in doc["findings"]],
            suppressed=int(doc["suppressed"]),
        )


@dataclass
class AnalysisCache:
    """The incremental store: path -> :class:`CachedFile`.

    ``hits``/``misses`` count this run's lookups so the engine can
    report how incremental the run actually was.
    """

    path: Path | None
    fingerprint: str
    files: dict[str, CachedFile] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    _dirty: bool = False

    @classmethod
    def load(cls, path: str | Path | None, fingerprint: str) -> AnalysisCache:
        """Load ``path``; any mismatch or damage yields an empty cache."""
        if path is None:
            return cls(path=None, fingerprint=fingerprint)
        cache_path = Path(path)
        try:
            doc = json.loads(cache_path.read_text(encoding="utf-8"))
            if doc.get("fingerprint") != fingerprint:
                return cls(path=cache_path, fingerprint=fingerprint)
            files = {
                str(rel): CachedFile.from_dict(entry)
                for rel, entry in doc["files"].items()
            }
        except (OSError, ValueError, KeyError, TypeError):
            return cls(path=cache_path, fingerprint=fingerprint)
        return cls(path=cache_path, fingerprint=fingerprint, files=files)

    def get(self, key: str, digest: str) -> CachedFile | None:
        entry = self.files.get(key)
        if entry is not None and entry.digest == digest:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(
        self, key: str, digest: str, findings: list[Finding], suppressed: int
    ) -> None:
        self.files[key] = CachedFile(
            digest=digest, findings=list(findings), suppressed=suppressed
        )
        self._dirty = True

    def save(self) -> None:
        """Persist (atomically) when backed by a path and changed."""
        if self.path is None or not self._dirty:
            return
        doc = {
            "version": CACHE_FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "files": {
                key: entry.to_dict() for key, entry in sorted(self.files.items())
            },
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(doc, indent=1) + "\n", encoding="utf-8")
        tmp.replace(self.path)
        self._dirty = False
