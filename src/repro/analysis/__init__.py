"""Repo-specific invariant linter (``repro lint``).

AST-based checks for the invariants this codebase relies on but no
off-the-shelf linter can express: the rngutil funnel (R1), the
obs.clock wall-clock funnel (R2), the repro.errors taxonomy (R3),
public-API annotation coverage (R4), and no mutable defaults (R5).
See ``docs/ANALYSIS.md`` for the rule catalogue, the suppression
syntax, and the baseline/ratchet workflow.
"""

from .engine import (
    Baseline,
    LintResult,
    apply_baseline,
    lint_file,
    lint_paths,
    make_baseline,
    resolve_rules,
)
from .findings import Finding, render_json, render_text
from .rules import RULES, FileContext, Rule, all_rules, register

__all__ = [
    "Baseline",
    "FileContext",
    "Finding",
    "LintResult",
    "RULES",
    "Rule",
    "all_rules",
    "apply_baseline",
    "lint_file",
    "lint_paths",
    "make_baseline",
    "register",
    "render_json",
    "render_text",
    "resolve_rules",
]
