"""Repo-specific invariant linter (``repro lint``).

AST-based checks for the invariants this codebase relies on but no
off-the-shelf linter can express, in two generations:

* the **syntactic rules** R1–R6 (``rules.py``): the rngutil funnel,
  the obs.clock wall-clock funnel, the errors taxonomy for core/lsh,
  annotation coverage, mutable defaults, the ``FilterResult.info``
  key schema — plus R0, stale-suppression detection;
* the **scope-aware rules** R7–R13 (``astrules.py``), built on a
  shared per-file AST model (``model.py``) with import-alias
  resolution and lexical scoping: unordered-iteration hazards,
  blocking calls in coroutines, fork-unsafe import-time state,
  dropped coroutines/tasks, frozen-config mutation, the taxonomy
  extended to the whole strict zone, and alias-aware RNG leaks.

The engine adds a content-hash incremental cache (warm runs re-analyze
only changed files), optional multi-process fan-out, and SARIF output
for CI annotations.  See ``docs/ANALYSIS.md`` for the rule catalogue,
the suppression syntax, and the baseline/ratchet workflow.
"""

from .cache import AnalysisCache, engine_fingerprint, file_digest
from .engine import (
    Baseline,
    LintResult,
    apply_baseline,
    git_changed_files,
    lint_file,
    lint_paths,
    lint_source,
    make_baseline,
    resolve_rules,
)
from .findings import Finding, render_json, render_text
from .model import ModuleModel
from .rules import RULES, FileContext, Rule, all_rules, register
from .sarif import render_sarif, sarif_document

__all__ = [
    "AnalysisCache",
    "Baseline",
    "FileContext",
    "Finding",
    "LintResult",
    "ModuleModel",
    "RULES",
    "Rule",
    "all_rules",
    "apply_baseline",
    "engine_fingerprint",
    "file_digest",
    "git_changed_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "make_baseline",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "resolve_rules",
    "sarif_document",
]
