"""The lint engine: file discovery, parsing, suppression, baselines.

The engine is what ``repro lint`` drives.  It walks the given paths,
parses each ``*.py`` file once, hands the shared AST to every rule,
then filters the raw findings through two mechanisms:

* **noqa comments** — ``# repro: noqa`` on the offending line
  suppresses every rule there; ``# repro: noqa[R1]`` (or
  ``noqa[R1,R3]``) suppresses only the listed rules;
* **baselines** — a JSON file recording, per rule and per file, how
  many findings are grandfathered in.  The engine drops up to that
  many findings (lowest line numbers first) and reports anything
  beyond the allowance.  Because the allowance is a *count*, the
  baseline acts as a ratchet: fixing violations and rewriting the
  baseline (``--write-baseline``) can only shrink it.
"""

from __future__ import annotations

import ast
import json
import re
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import AnalysisError
from .findings import Finding
from .rules import RULES, FileContext, Rule, all_rules

BASELINE_VERSION = 1

#: ``# repro: noqa`` or ``# repro: noqa[R1]`` / ``noqa[R1, R3]``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


# ----------------------------------------------------------------------
# baselines (the ratchet)
# ----------------------------------------------------------------------
@dataclass
class Baseline:
    """Grandfathered finding counts, keyed ``rule -> path -> count``."""

    counts: dict[str, dict[str, int]] = field(default_factory=dict)

    def allowance(self, rule: str, path: str) -> int:
        return self.counts.get(rule, {}).get(path, 0)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> Baseline:
        counts: dict[str, dict[str, int]] = {}
        for f in findings:
            per_path = counts.setdefault(f.rule, {})
            per_path[f.path] = per_path.get(f.path, 0) + 1
        return cls(
            {rule: dict(sorted(paths.items())) for rule, paths in sorted(counts.items())}
        )

    @classmethod
    def load(cls, path: str | Path) -> Baseline:
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except OSError as exc:
            raise AnalysisError(f"cannot read baseline {path!s}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"baseline {path!s} is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict) or "counts" not in doc:
            raise AnalysisError(f"baseline {path!s} has no 'counts' key")
        counts = doc["counts"]
        if not isinstance(counts, dict):
            raise AnalysisError(f"baseline {path!s}: 'counts' must be an object")
        return cls({str(rule): dict(paths) for rule, paths in counts.items()})

    def save(self, path: str | Path) -> None:
        doc = {"version": BASELINE_VERSION, "counts": self.counts}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")


def apply_baseline(
    findings: Sequence[Finding], baseline: Baseline
) -> tuple[list[Finding], int]:
    """Drop grandfathered findings; return (kept, number dropped).

    Within each ``(rule, path)`` group the findings with the *lowest*
    line numbers are considered grandfathered, so new violations added
    below old ones still surface.
    """
    groups: dict[tuple[str, str], list[Finding]] = {}
    for f in findings:
        groups.setdefault((f.rule, f.path), []).append(f)
    kept: list[Finding] = []
    dropped = 0
    for (rule, path), group in groups.items():
        allowance = baseline.allowance(rule, path)
        group.sort(key=Finding.sort_key)
        dropped += min(allowance, len(group))
        kept.extend(group[allowance:])
    return kept, dropped


# ----------------------------------------------------------------------
# per-file analysis
# ----------------------------------------------------------------------
def _noqa_map(lines: Sequence[str]) -> dict[int, set[str] | None]:
    """Line number -> suppressed rule ids (None = all rules)."""
    out: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        spec = match.group("rules")
        if spec is None:
            out[lineno] = None
        else:
            out[lineno] = {
                token.strip().upper()
                for token in spec.split(",")
                if token.strip()
            }
    return out


def _scope_parts(file: Path, root: Path) -> tuple[str, ...]:
    """Path parts relative to the ``repro`` package root.

    Files under a directory literally named ``repro`` scope from there
    (``src/repro/core/x.py`` -> ``("core", "x.py")``); anything else —
    e.g. test fixtures laid out as ``tmpdir/core/bad.py`` — scopes
    relative to the scanned root, so rules behave identically on both.
    """
    parts = file.parts
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return parts[anchor + 1 :]
    try:
        return file.relative_to(root).parts
    except ValueError:
        return (file.name,)


def _iter_python_files(target: Path) -> Iterator[Path]:
    if target.is_file():
        yield target
        return
    for path in sorted(target.rglob("*.py")):
        if any(part in _SKIP_DIRS for part in path.parts):
            continue
        yield path


def lint_file(
    file: Path, root: Path, rules: Sequence[Rule]
) -> tuple[list[Finding], int]:
    """Run ``rules`` over one file; return (findings, suppressed count)."""
    try:
        source = file.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read {file!s}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=str(file))
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {file!s}: {exc}") from exc
    lines = source.splitlines()
    ctx = FileContext(
        path=str(file),
        scope=_scope_parts(file, root),
        tree=tree,
        lines=lines,
    )
    noqa = _noqa_map(lines)
    kept: list[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(ctx):
            allowed = noqa.get(finding.line, ...)
            if allowed is None or (
                isinstance(allowed, set) and finding.rule in allowed
            ):
                suppressed += 1
            else:
                kept.append(finding)
    return kept, suppressed


# ----------------------------------------------------------------------
# the engine entry point
# ----------------------------------------------------------------------
@dataclass
class LintResult:
    """Everything one ``repro lint`` run produced."""

    findings: list[Finding]
    checked_files: int
    suppressed: int
    baselined: int

    @property
    def clean(self) -> bool:
        return not self.findings


def resolve_rules(rule_ids: Sequence[str] | None = None) -> list[Rule]:
    """Registry lookup for ``--rules``; all rules when None."""
    if rule_ids is None:
        return all_rules()
    rules = []
    for rule_id in rule_ids:
        key = rule_id.strip().upper()
        if key not in RULES:
            raise AnalysisError(
                f"unknown rule {rule_id!r}; known rules: {sorted(RULES)}"
            )
        rules.append(RULES[key])
    return rules


def lint_paths(
    paths: Sequence[str | Path],
    rule_ids: Sequence[str] | None = None,
    baseline: Baseline | None = None,
) -> LintResult:
    """Lint every ``*.py`` file under ``paths``.

    Findings are returned post-suppression and post-baseline, sorted
    by (path, line, rule).
    """
    rules = resolve_rules(rule_ids)
    findings: list[Finding] = []
    checked = 0
    suppressed = 0
    for raw in paths:
        target = Path(raw)
        if not target.exists():
            raise AnalysisError(f"no such file or directory: {target!s}")
        root = target if target.is_dir() else target.parent
        for file in _iter_python_files(target):
            file_findings, file_suppressed = lint_file(file, root, rules)
            findings.extend(file_findings)
            suppressed += file_suppressed
            checked += 1
    baselined = 0
    if baseline is not None:
        findings, baselined = apply_baseline(findings, baseline)
    findings.sort(key=Finding.sort_key)
    return LintResult(
        findings=findings,
        checked_files=checked,
        suppressed=suppressed,
        baselined=baselined,
    )


def make_baseline(
    paths: Sequence[str | Path], rule_ids: Sequence[str] | None = None
) -> Baseline:
    """Baseline capturing every current (unsuppressed) finding."""
    result = lint_paths(paths, rule_ids=rule_ids, baseline=None)
    return Baseline.from_findings(result.findings)
