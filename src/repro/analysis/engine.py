"""The lint engine: file discovery, parsing, suppression, baselines.

The engine is what ``repro lint`` drives.  It walks the given paths,
parses each ``*.py`` file once, hands the shared AST (and the lazily
built :class:`~repro.analysis.model.ModuleModel`) to every rule, then
filters the raw findings through two mechanisms:

* **noqa comments** — ``# repro: noqa`` on the offending line
  suppresses every rule there; ``# repro: noqa[R1]`` (or
  ``noqa[R1,R3]``) suppresses only the listed rules.  A noqa that
  suppresses nothing is itself reported (rule R0) on full-rule runs,
  so dead suppressions cannot accumulate;
* **baselines** — a JSON file recording, per rule and per file, how
  many findings are grandfathered in.  The engine drops up to that
  many findings (lowest line numbers first) and reports anything
  beyond the allowance.  Because the allowance is a *count*, the
  baseline acts as a ratchet: fixing violations and rewriting the
  baseline (``--write-baseline``) can only shrink it.

Two run-shaping levers sit on top:

* an :class:`~repro.analysis.cache.AnalysisCache` keyed by file
  content hash skips unchanged files on warm runs;
* ``jobs > 1`` fans per-file analysis across worker processes (the
  per-file work is pure, so order and results are identical to serial).
"""

from __future__ import annotations

import ast
import io
import json
import re
import subprocess
import tokenize
from collections.abc import Collection, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import AnalysisError
from .cache import AnalysisCache, engine_fingerprint, file_digest
from .findings import Finding
from .rules import RULES, FileContext, Rule, all_rules

# Importing the module registers R7-R13 alongside rules.py's R0-R6.
from . import astrules  # noqa: F401  (import is the registration)

BASELINE_VERSION = 1

#: Suppression grammar: a comment of ``repro: noqa``, optionally with
#: bracketed comma-separated rule ids (``[R1]``, ``[R1, R3]``,
#: ``[R1,R3]``; spaces around the bracket allowed).  Phrased without a
#: literal example so this very comment is not a live suppression.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


# ----------------------------------------------------------------------
# baselines (the ratchet)
# ----------------------------------------------------------------------
@dataclass
class Baseline:
    """Grandfathered finding counts, keyed ``rule -> path -> count``."""

    counts: dict[str, dict[str, int]] = field(default_factory=dict)

    def allowance(self, rule: str, path: str) -> int:
        return self.counts.get(rule, {}).get(path, 0)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> Baseline:
        counts: dict[str, dict[str, int]] = {}
        for f in findings:
            per_path = counts.setdefault(f.rule, {})
            per_path[f.path] = per_path.get(f.path, 0) + 1
        return cls(
            {rule: dict(sorted(paths.items())) for rule, paths in sorted(counts.items())}
        )

    @classmethod
    def load(cls, path: str | Path) -> Baseline:
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except OSError as exc:
            raise AnalysisError(f"cannot read baseline {path!s}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"baseline {path!s} is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict) or "counts" not in doc:
            raise AnalysisError(f"baseline {path!s} has no 'counts' key")
        counts = doc["counts"]
        if not isinstance(counts, dict):
            raise AnalysisError(f"baseline {path!s}: 'counts' must be an object")
        return cls({str(rule): dict(paths) for rule, paths in counts.items()})

    def save(self, path: str | Path) -> None:
        doc = {"version": BASELINE_VERSION, "counts": self.counts}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")


def apply_baseline(
    findings: Sequence[Finding], baseline: Baseline
) -> tuple[list[Finding], int]:
    """Drop grandfathered findings; return (kept, number dropped).

    Within each ``(rule, path)`` group the findings with the *lowest*
    line numbers are considered grandfathered, so new violations added
    below old ones still surface.
    """
    groups: dict[tuple[str, str], list[Finding]] = {}
    for f in findings:
        groups.setdefault((f.rule, f.path), []).append(f)
    kept: list[Finding] = []
    dropped = 0
    for (rule, path), group in groups.items():
        allowance = baseline.allowance(rule, path)
        group.sort(key=Finding.sort_key)
        dropped += min(allowance, len(group))
        kept.extend(group[allowance:])
    return kept, dropped


# ----------------------------------------------------------------------
# per-file analysis
# ----------------------------------------------------------------------
def _noqa_map(source: str) -> dict[int, set[str] | None]:
    """Line number -> suppressed rule ids (None = all rules).

    Only genuine ``#`` comment tokens count: the source is tokenized so
    a docstring *talking about* ``# repro: noqa`` (this engine's own
    documentation, say) never becomes a live suppression.  Unparseable
    token streams fall back to a raw line scan — over-matching beats
    silently dropping a suppression.
    """
    out: dict[int, set[str] | None] = {}

    def record(lineno: int, text: str) -> None:
        match = _NOQA_RE.search(text)
        if match is None:
            return
        spec = match.group("rules")
        if spec is None:
            out[lineno] = None
        else:
            out[lineno] = {
                token.strip().upper()
                for token in spec.split(",")
                if token.strip()
            }

    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                record(token.start[0], token.string)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            record(lineno, line)
    return out


def _scope_parts(file: Path, root: Path) -> tuple[str, ...]:
    """Path parts relative to the ``repro`` package root.

    Files under a directory literally named ``repro`` scope from there
    (``src/repro/core/x.py`` -> ``("core", "x.py")``); anything else —
    e.g. test fixtures laid out as ``tmpdir/core/bad.py`` — scopes
    relative to the scanned root, so rules behave identically on both.
    """
    parts = file.parts
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return parts[anchor + 1 :]
    try:
        return file.relative_to(root).parts
    except ValueError:
        return (file.name,)


def _iter_python_files(target: Path) -> Iterator[Path]:
    if target.is_file():
        yield target
        return
    for path in sorted(target.rglob("*.py")):
        if any(part in _SKIP_DIRS for part in path.parts):
            continue
        yield path


def lint_source(
    source: str, file: Path, root: Path, rules: Sequence[Rule]
) -> tuple[list[Finding], int]:
    """Run ``rules`` over already-read source; the pure per-file core."""
    try:
        tree = ast.parse(source, filename=str(file))
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {file!s}: {exc}") from exc
    lines = source.splitlines()
    ctx = FileContext(
        path=str(file),
        scope=_scope_parts(file, root),
        tree=tree,
        lines=lines,
    )
    noqa = _noqa_map(source)
    kept: list[Finding] = []
    suppressed = 0
    #: noqa line -> rule ids actually suppressed there (staleness input).
    used: dict[int, set[str]] = {}
    for rule in rules:
        for finding in rule.check(ctx):
            allowed = noqa.get(finding.line, ...)
            if allowed is None or (
                isinstance(allowed, set) and finding.rule in allowed
            ):
                suppressed += 1
                used.setdefault(finding.line, set()).add(finding.rule)
            else:
                kept.append(finding)
    kept.extend(_stale_noqa_findings(ctx, rules, noqa, used))
    return kept, suppressed


def _stale_noqa_findings(
    ctx: FileContext,
    rules: Sequence[Rule],
    noqa: dict[int, set[str] | None],
    used: dict[int, set[str]],
) -> Iterator[Finding]:
    """R0 findings for suppressions that suppressed nothing.

    Only meaningful on full-rule runs: with ``--rules R7`` active, a
    ``noqa[R3]`` is aimed at a rule that never ran, not stale.  Stale
    findings deliberately bypass line-level noqa (a blanket noqa cannot
    vouch for itself); listing ``R0`` in the comment opts a line out.
    """
    active = {rule.id for rule in rules}
    if "R0" not in active or not set(RULES) <= active:
        return
    for lineno in sorted(noqa):
        spec = noqa[lineno]
        suppressed_here = used.get(lineno, set())
        if spec is None:
            if not suppressed_here:
                yield Finding(
                    path=ctx.path,
                    line=lineno,
                    rule="R0",
                    message="blanket '# repro: noqa' suppresses nothing",
                    suggestion="remove the stale suppression comment",
                )
            continue
        if "R0" in spec:
            continue
        unknown = sorted(spec - set(RULES))
        if unknown:
            yield Finding(
                path=ctx.path,
                line=lineno,
                rule="R0",
                message=(
                    f"noqa lists unknown rule id(s): {', '.join(unknown)}"
                ),
                suggestion="fix or remove the unknown id "
                "(see `repro lint --list-rules`)",
            )
        stale = sorted((spec & set(RULES)) - suppressed_here)
        if stale:
            yield Finding(
                path=ctx.path,
                line=lineno,
                rule="R0",
                message=(
                    f"noqa[{', '.join(stale)}] suppresses nothing on this "
                    f"line"
                ),
                suggestion="drop the listed id(s) from the noqa comment",
            )


def lint_file(
    file: Path, root: Path, rules: Sequence[Rule]
) -> tuple[list[Finding], int]:
    """Run ``rules`` over one file; return (findings, suppressed count)."""
    try:
        source = file.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read {file!s}: {exc}") from exc
    return lint_source(source, file, root, rules)


def _lint_file_task(
    file_str: str, root_str: str, rule_ids: tuple[str, ...] | None
) -> tuple[list[Finding], int]:
    """Worker-process entry point: resolve rules locally (instances are
    registry state, cheaper to rebuild than to pickle) and lint one file."""
    rules = resolve_rules(rule_ids)
    return lint_file(Path(file_str), Path(root_str), rules)


# ----------------------------------------------------------------------
# the engine entry point
# ----------------------------------------------------------------------
@dataclass
class LintResult:
    """Everything one ``repro lint`` run produced."""

    findings: list[Finding]
    checked_files: int
    suppressed: int
    baselined: int
    #: Files actually parsed and analyzed this run.
    analyzed_files: int = 0
    #: Files served from the incremental cache (content hash unchanged).
    cached_files: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def resolve_rules(rule_ids: Sequence[str] | None = None) -> list[Rule]:
    """Registry lookup for ``--rules``; all rules when None."""
    if rule_ids is None:
        return all_rules()
    rules = []
    for rule_id in rule_ids:
        key = rule_id.strip().upper()
        if key not in RULES:
            raise AnalysisError(
                f"unknown rule {rule_id!r}; known rules: {sorted(RULES)}"
            )
        rules.append(RULES[key])
    return rules


#: Below this many cache-missing files a process pool costs more than
#: it saves; the engine silently runs serial.
MIN_PARALLEL_FILES = 4


def lint_paths(
    paths: Sequence[str | Path],
    rule_ids: Sequence[str] | None = None,
    baseline: Baseline | None = None,
    *,
    cache_path: str | Path | None = None,
    jobs: int = 1,
    only: Collection[Path] | None = None,
) -> LintResult:
    """Lint every ``*.py`` file under ``paths``.

    Findings are returned post-suppression and post-baseline, sorted by
    (path, line, rule).

    ``cache_path`` enables the incremental cache: files whose content
    hash matches the stored entry reuse the previous raw result (the
    cache fingerprint covers the active rule set and the analyzer's own
    source, so rule changes invalidate it wholesale).  ``jobs > 1``
    fans cache-missing files across worker processes.  ``only``
    restricts discovery to the given (resolved) files — the
    ``--changed`` fast path.
    """
    rules = resolve_rules(rule_ids)
    active_ids = tuple(rule.id for rule in rules)
    cache = AnalysisCache.load(cache_path, engine_fingerprint(active_ids))
    only_set = (
        {Path(p).resolve() for p in only} if only is not None else None
    )
    findings: list[Finding] = []
    checked = 0
    suppressed = 0
    cached_files = 0
    #: (file, root, cache key, digest) for every cache miss.
    pending: list[tuple[Path, Path, str, str]] = []
    for raw in paths:
        target = Path(raw)
        if not target.exists():
            raise AnalysisError(f"no such file or directory: {target!s}")
        root = target if target.is_dir() else target.parent
        for file in _iter_python_files(target):
            resolved = file.resolve()
            if only_set is not None and resolved not in only_set:
                continue
            checked += 1
            key = str(resolved)
            try:
                digest = file_digest(file.read_bytes())
            except OSError as exc:
                raise AnalysisError(f"cannot read {file!s}: {exc}") from exc
            entry = cache.get(key, digest)
            if entry is not None:
                findings.extend(entry.findings)
                suppressed += entry.suppressed
                cached_files += 1
            else:
                pending.append((file, root, key, digest))
    for (file, root, key, digest), (file_findings, file_suppressed) in zip(
        pending, _analyze_pending(pending, rule_ids, jobs)
    ):
        findings.extend(file_findings)
        suppressed += file_suppressed
        cache.put(key, digest, file_findings, file_suppressed)
    cache.save()
    baselined = 0
    if baseline is not None:
        findings, baselined = apply_baseline(findings, baseline)
    findings.sort(key=Finding.sort_key)
    return LintResult(
        findings=findings,
        checked_files=checked,
        suppressed=suppressed,
        baselined=baselined,
        analyzed_files=len(pending),
        cached_files=cached_files,
    )


def _analyze_pending(
    pending: Sequence[tuple[Path, Path, str, str]],
    rule_ids: Sequence[str] | None,
    jobs: int,
) -> list[tuple[list[Finding], int]]:
    """Per-file raw results for every cache miss, in ``pending`` order.

    With ``jobs > 1`` and enough files the per-file work — which is
    pure — is fanned across a process pool; results come back in
    submission order, so output is bit-identical to the serial path.
    """
    if jobs <= 1 or len(pending) < MIN_PARALLEL_FILES:
        rules = resolve_rules(rule_ids)
        return [lint_file(file, root, rules) for file, root, _, _ in pending]
    import concurrent.futures

    ids = tuple(rule_ids) if rule_ids is not None else None
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=min(jobs, len(pending))
    ) as executor:
        futures = [
            executor.submit(_lint_file_task, str(file), str(root), ids)
            for file, root, _, _ in pending
        ]
        return [future.result() for future in futures]


def git_changed_files(base: str, root: str | Path = ".") -> list[Path]:
    """Python files changed vs ``base`` (plus untracked ones), resolved
    and sorted.

    Backs ``repro lint --changed``: the union of ``git diff
    --name-only <base>`` (committed + working-tree changes) and
    untracked files, filtered to ``*.py``.
    """
    root = Path(root).resolve()
    commands = [
        ["git", "diff", "--name-only", base, "--", "*.py"],
        ["git", "ls-files", "--others", "--exclude-standard", "--", "*.py"],
    ]
    changed: set[Path] = set()
    for command in commands:
        try:
            proc = subprocess.run(
                command,
                cwd=root,
                capture_output=True,
                text=True,
                check=True,
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            detail = getattr(exc, "stderr", "") or str(exc)
            raise AnalysisError(
                f"cannot list changed files ({' '.join(command)}): "
                f"{detail.strip()}"
            ) from exc
        for line in proc.stdout.splitlines():
            if line.strip():
                changed.add((root / line.strip()).resolve())
    return sorted(changed)


def make_baseline(
    paths: Sequence[str | Path], rule_ids: Sequence[str] | None = None
) -> Baseline:
    """Baseline capturing every current (unsuppressed) finding."""
    result = lint_paths(paths, rule_ids=rule_ids, baseline=None)
    return Baseline.from_findings(result.findings)
