"""The scope-aware rules R7–R13, built on the shared AST model.

Where R1–R6 pattern-match on literal syntax, these rules consult
:class:`~repro.analysis.model.ModuleModel` — import-alias resolution,
lexical scopes, async-function indexes, and cheap local type facts —
so they can answer questions like "is this *resolved* call
``numpy.random.seed`` even though the file spells it ``xp.random.seed``"
or "does this ``time.sleep`` sit inside an ``async def``".

Each rule encodes one way a determinism or liveness contract of this
reproduction has historically broken (or nearly broken):

* **R7** — iterating an unordered collection while mutating shared
  state makes union/cluster order depend on hash randomization;
* **R8** — a blocking call in a coroutine stalls the whole serve loop;
* **R9** — locks/threads/RNGs created at import time in ``parallel/``
  are silently duplicated into forked workers;
* **R10** — an unawaited coroutine never runs; an unstored task can be
  garbage-collected mid-flight;
* **R11** — ``object.__setattr__`` outside a frozen dataclass's own
  ``__post_init__`` defeats the config-immutability contract;
* **R12** — strict-zone packages must raise the ``repro.errors``
  taxonomy (R3's reach, extended beyond ``core``/``lsh``);
* **R13** — the call-graph-aware successor to R1: RNG access that
  resolves to ``numpy.random`` / ``random`` through import aliases R1's
  syntactic check cannot see.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from .findings import Finding
from .model import dotted_name
from .rules import FileContext, Rule, register

#: Packages whose loops feeding union/cluster/report state must iterate
#: deterministically (R7).
ORDER_SENSITIVE_PACKAGES = frozenset({"core", "structures", "serve"})

#: Packages whose ``async def`` bodies must never block the loop (R8).
ASYNC_PACKAGES = frozenset({"serve"})

#: Package whose module-import state must be fork-safe (R9).
FORK_SAFE_PACKAGES = frozenset({"parallel"})

#: Strict-zone packages for the exception taxonomy beyond R3's
#: ``core``/``lsh`` (R12).  Mirrors the mypy --strict zone.
TAXONOMY_STRICT_PACKAGES = frozenset(
    {"structures", "distance", "obs", "parallel", "online", "serve"}
)

#: Filesystem enumerators whose order is OS-dependent (R7).
_UNORDERED_FS_CALLS = frozenset(
    {
        "os.listdir",
        "os.scandir",
        "glob.glob",
        "glob.iglob",
    }
)
#: ``Path`` methods with OS-dependent order, matched on the attribute
#: name (the receiver's type is unknowable locally).
_UNORDERED_FS_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Attribute names whose call marks a loop body as state-reaching (R7):
#: union-find merges, cluster/report accumulation, metric emission.
_STATE_SINK_METHODS = frozenset(
    {
        "union",
        "union_many",
        "merge",
        "link",
        "add",
        "append",
        "extend",
        "insert",
        "push",
        "put",
        "write",
        "record",
        "emit",
        "inc",
        "observe",
        "update",
        "setdefault",
    }
)

#: Order-insensitive wrappers that launder an unordered iterable (R7).
_ORDERING_WRAPPERS = frozenset({"sorted", "min", "max", "sum", "len"})

#: Blocking callables never allowed inside ``async def`` (R8), by
#: resolved qualified name.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "os.popen",
        "os.waitpid",
        "socket.create_connection",
        "requests.get",
        "requests.post",
        "requests.put",
        "requests.delete",
        "requests.request",
        "urllib.request.urlopen",
    }
)
#: Bare-name builtins that do blocking file I/O (R8).
_BLOCKING_BUILTINS = frozenset({"open", "input"})
#: Blocking socket/file methods matched on attribute name (R8) — chosen
#: to not collide with asyncio's StreamReader/StreamWriter API.
_BLOCKING_METHODS = frozenset({"recv", "recv_into", "accept", "sendall"})

#: Import-time constructors that are fork-hostile in ``parallel/`` (R9).
_FORK_UNSAFE_CALLS = frozenset(
    {
        "threading.Thread",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.local",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
        "multiprocessing.Queue",
        "multiprocessing.Pool",
        "multiprocessing.Manager",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.ProcessPoolExecutor",
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
    }
)

#: Known-coroutine stdlib callables (R10): a bare-statement call to one
#: of these is an unawaited coroutine even without a local ``async def``.
_KNOWN_COROUTINES = frozenset(
    {
        "asyncio.sleep",
        "asyncio.gather",
        "asyncio.wait",
        "asyncio.wait_for",
        "asyncio.open_connection",
        "asyncio.start_server",
        "asyncio.to_thread",
        "asyncio.shield",
    }
)

#: Task factories whose result must be stored (R10).
_TASK_FACTORIES = frozenset({"asyncio.create_task", "asyncio.ensure_future"})


@register
class UnorderedIterationRule(Rule):
    """R7: no iterating unordered collections into shared state.

    Set/``os.listdir``/``glob`` iteration order depends on hash
    randomization and the filesystem; when the loop body unions
    clusters, appends to reports, or bumps metrics, that order leaks
    into results and breaks the bit-identity contracts.  Wrap the
    iterable in ``sorted(...)`` (the fix everywhere in ``core/``) or
    iterate an ordered structure instead.

    The state-reaching test is a lexical approximation: the loop body
    must contain a mutating call (``union``/``append``/``inc``/...), a
    ``yield``, or a write to a name or subscript defined outside the
    loop.  Pure reductions over sets (``any``/``sum``-style
    accumulation into loop-local temporaries) do not fire.
    """

    id = "R7"
    title = "unordered iteration feeding union/cluster/report state"

    _SUGGESTION = (
        "iterate sorted(...) (or an ordered container) before touching "
        "union/cluster/report state"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.package not in ORDER_SENSITIVE_PACKAGES:
            return
        model = ctx.model
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            source = self._unordered_source(ctx, node.iter)
            if source is None:
                continue
            if not self._body_reaches_state(node):
                continue
            yield self.finding(
                ctx,
                node,
                f"iterates {source} while the loop body mutates "
                f"shared state — order depends on hash/OS randomization",
                self._SUGGESTION,
            )

    # -- what counts as unordered ------------------------------------
    def _unordered_source(
        self, ctx: FileContext, iter_expr: ast.AST
    ) -> str | None:
        model = ctx.model
        # enumerate(X) / reversed(X) iterate X's order: look through.
        while (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Name)
            and iter_expr.func.id in ("enumerate", "reversed", "iter", "tuple", "list")
            and iter_expr.args
        ):
            iter_expr = iter_expr.args[0]
        if isinstance(iter_expr, ast.Call):
            name = model.call_name(iter_expr)
            if name in _ORDERING_WRAPPERS:
                return None
            if name in _UNORDERED_FS_CALLS:
                return f"the unsorted result of {name}()"
            if (
                isinstance(iter_expr.func, ast.Attribute)
                and iter_expr.func.attr in _UNORDERED_FS_METHODS
            ):
                return f"the unsorted result of .{iter_expr.func.attr}()"
        scope = model.enclosing_function(iter_expr) or ctx.tree
        known = model.set_typed_names(scope)
        if model.is_set_expression(iter_expr, known):
            label = dotted_name(iter_expr)
            return f"set {label!r}" if label else "a set expression"
        return None

    # -- does the body mutate shared state ---------------------------
    def _body_reaches_state(self, loop: ast.For | ast.AsyncFor) -> bool:
        loop_locals = self._loop_local_names(loop)
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    return True
                if isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _STATE_SINK_METHODS
                    ):
                        # Calls on loop-local receivers stay local.
                        receiver = func.value
                        if (
                            isinstance(receiver, ast.Name)
                            and receiver.id in loop_locals
                        ):
                            continue
                        return True
                elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if isinstance(target, ast.Subscript):
                            base = target.value
                            if not (
                                isinstance(base, ast.Name)
                                and base.id in loop_locals
                            ):
                                return True
                        elif isinstance(target, ast.Attribute):
                            return True
        return False

    @staticmethod
    def _loop_local_names(loop: ast.For | ast.AsyncFor) -> set[str]:
        """Names bound by the loop target and plain assignments inside
        the body — mutations confined to these are order-safe."""
        names: set[str] = set()
        for target_node in ast.walk(loop.target):
            if isinstance(target_node, ast.Name):
                names.add(target_node.id)
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
                elif isinstance(node, ast.AnnAssign):
                    if isinstance(node.target, ast.Name):
                        names.add(node.target.id)
        return names


@register
class BlockingAsyncCallRule(Rule):
    """R8: no blocking calls inside ``async def`` in the serve layer.

    One ``time.sleep`` or sync ``open()`` in a coroutine stalls every
    in-flight request on the event loop — the serve layer's latency
    contract (and its 429 admission control) assumes the loop always
    turns.  Blocking work belongs in ``asyncio.to_thread`` (how
    ``service.py`` ships store rebuilds off-loop) or behind an
    ``await``-able API.  Resolution is alias-aware: ``import time as t;
    t.sleep(...)`` is still caught.
    """

    id = "R8"
    title = "blocking call inside async def (serve layer)"

    _SUGGESTION = (
        "await the async equivalent (asyncio.sleep) or push the work "
        "off-loop via asyncio.to_thread(...)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.package not in ASYNC_PACKAGES:
            return
        model = ctx.model
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not model.in_async_function(node):
                continue
            name = model.call_name(node)
            if name in _BLOCKING_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"calls blocking {name}() inside an async function",
                    self._SUGGESTION,
                )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in _BLOCKING_BUILTINS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"calls blocking builtin {node.func.id}() inside an "
                    f"async function",
                    self._SUGGESTION,
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _BLOCKING_METHODS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"calls blocking socket method .{node.func.attr}() "
                    f"inside an async function",
                    self._SUGGESTION,
                )


@register
class ForkUnsafeStateRule(Rule):
    """R9: no fork-hostile state at import time in ``parallel/``.

    The execution pool forks workers that inherit the parent address
    space; a lock created at module scope forks *held-or-not* by
    accident, a module-level thread never exists in the child, and a
    module-level RNG silently gives every worker the same stream.  All
    such state must be constructed per-pool (inside functions/methods)
    so each process owns its copy deliberately.
    """

    id = "R9"
    title = "fork-unsafe state created at import time in parallel/"

    _SUGGESTION = (
        "construct threads/locks/RNGs inside the pool or worker "
        "initializer, never at module import"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.package not in FORK_SAFE_PACKAGES:
            return
        model = ctx.model
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not model.at_import_time(node):
                continue
            name = model.call_name(node)
            if name in _FORK_UNSAFE_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"creates {name}() at module import — forked workers "
                    f"inherit (or lose) it unpredictably",
                    self._SUGGESTION,
                )


@register
class UnawaitedCoroutineRule(Rule):
    """R10: no dropped coroutines or unstored tasks.

    A coroutine called without ``await`` never executes — the statement
    is a silent no-op (Python only warns at GC time, long after the
    test that should have caught it).  A task created without storing
    the handle can be garbage-collected mid-flight.  Detection is
    module-local: bare-statement calls to ``async def``\\ s defined in
    this module (by name, or ``self.<m>()`` for methods of the same
    class), to known stdlib coroutines, and to task factories.
    """

    id = "R10"
    title = "unawaited coroutine / un-stored asyncio task"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        model = ctx.model
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Expr):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            name = model.call_name(call)
            if name in _TASK_FACTORIES or (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "create_task"
            ):
                yield self.finding(
                    ctx,
                    call,
                    "creates an asyncio task without storing the handle — "
                    "it can be garbage-collected before it runs",
                    "keep a reference (self._task = ...) and await or "
                    "cancel it on shutdown",
                )
            elif name in _KNOWN_COROUTINES or model.is_local_coroutine_call(
                call
            ):
                label = name or dotted_name(call.func) or "<coroutine>"
                yield self.finding(
                    ctx,
                    call,
                    f"calls coroutine {label}() without awaiting it — the "
                    f"body never runs",
                    "await the call (or create_task and store the handle)",
                )


@register
class FrozenDataclassMutationRule(Rule):
    """R11: ``object.__setattr__`` only inside a frozen dataclass's own
    ``__post_init__``.

    ``AdaptiveConfig`` and ``ServiceConfig`` are frozen on purpose:
    they are the single construction surface for runs and snapshots,
    and every consumer (sessions, shard workers, snapshot capture)
    assumes a config can never change underneath it.  The one blessed
    escape hatch is normalization inside ``__post_init__``; any other
    ``object.__setattr__`` is mutation of state the rest of the system
    believes immutable.
    """

    id = "R11"
    title = "object.__setattr__ outside a frozen dataclass __post_init__"

    _SUGGESTION = (
        "use dataclasses.replace(...) to derive a new config instead of "
        "mutating a frozen instance"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        model = ctx.model
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) != "object.__setattr__":
                continue
            fn = model.enclosing_function(node)
            if (
                isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
                and fn.name == "__post_init__"
            ):
                owner = model.enclosing_class(fn)
                if owner is not None and self._is_frozen_dataclass(
                    model, owner
                ):
                    continue
            yield self.finding(
                ctx,
                node,
                "mutates a frozen dataclass via object.__setattr__ outside "
                "its own __post_init__",
                self._SUGGESTION,
            )

    @staticmethod
    def _is_frozen_dataclass(model, cls: ast.ClassDef) -> bool:
        for decorator in cls.decorator_list:
            name = (
                model.call_name(decorator)
                if isinstance(decorator, ast.Call)
                else model.qualified(decorator) or dotted_name(decorator)
            )
            if name not in ("dataclass", "dataclasses.dataclass"):
                continue
            if isinstance(decorator, ast.Call):
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "frozen"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        return True
        return False


@register
class TaxonomyEscapeRule(Rule):
    """R12: strict-zone packages raise the ``repro.errors`` taxonomy.

    R3 enforces this for ``core``/``lsh``; R12 extends the contract to
    the rest of the mypy-strict zone (``structures``, ``distance``,
    ``obs``, ``parallel``, ``online``, ``serve``).  Bare ``ValueError``
    / ``RuntimeError`` from deep code is indistinguishable from a
    genuine bug at the call site, so callers either over-catch or crash.
    """

    id = "R12"
    title = "bare ValueError/RuntimeError raised in a strict-zone package"

    _BARE = frozenset({"ValueError", "RuntimeError"})
    _SUGGESTION = (
        "raise a repro.errors.ReproError subclass (ConfigurationError, "
        "StructureError, ServiceError, ...)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.package not in TAXONOMY_STRICT_PACKAGES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise):
                continue
            exc = node.exc
            name: str | None = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in self._BARE:
                yield self.finding(
                    ctx, node, f"raises bare {name}", self._SUGGESTION
                )


@register
class RngStateLeakRule(Rule):
    """R13: alias-aware RNG funnel enforcement (supersedes R1's reach).

    R1 catches the literal spellings (``np.random.*``, ``import
    random``).  R13 resolves names through the import table, so the
    forms R1 cannot see — ``import numpy as xp; xp.random.seed(0)``,
    ``from numpy import random as nr; nr.default_rng()`` — are caught
    too.  Global reseeding (``numpy.random.seed``) is the worst case:
    it silently rewires every legacy-RNG consumer in the process, so
    adaptive rounds stop being reproducible from the run seed.

    Findings R1 already reports (literal ``np.random``/``numpy.random``
    text) are skipped, so a violation surfaces under exactly one rule.
    """

    id = "R13"
    title = "RNG construction/use escaping the rngutil funnel (alias-aware)"

    _SUGGESTION = "take a seed: SeedLike and call repro.rngutil.make_rng/spawn"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.filename == "rngutil.py":
            return
        model = ctx.model
        stack: list[ast.AST] = [ctx.tree]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.Attribute, ast.Name)):
                literal = dotted_name(node)
                resolved = model.qualified(node)
                if resolved is not None and self._is_rng_target(resolved):
                    if literal is not None and self._r1_sees(literal):
                        continue  # R1 already reports this spelling
                    yield self.finding(
                        ctx,
                        node,
                        f"{literal or resolved} resolves to {resolved} — "
                        f"RNG state outside the rngutil funnel",
                        self._SUGGESTION,
                    )
                    continue  # do not re-flag inner chain nodes
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _is_rng_target(qualified: str) -> bool:
        return (
            qualified.startswith("numpy.random.")
            or qualified == "numpy.random"
            or qualified.startswith("random.")
            or qualified == "random"
        )

    @staticmethod
    def _r1_sees(literal: str) -> bool:
        return (
            literal.startswith(("np.random.", "numpy.random.", "random."))
            or literal in ("np.random", "numpy.random", "random")
        )
