"""The invariant rules and their registry.

Each rule is an AST check encoding one repo-specific invariant that
plain flake8/ruff cannot express:

* **R1** — randomness flows through :mod:`repro.rngutil` only;
* **R2** — algorithm packages never read the wall clock directly
  (timing goes through :func:`repro.obs.clock.monotonic`);
* **R3** — library code in ``core/`` and ``lsh/`` raises
  :class:`repro.errors.ReproError` subclasses, never bare
  ``ValueError`` / ``RuntimeError``;
* **R4** — public functions in the typed packages carry complete
  annotations (the mypy ratchet's AST-level twin);
* **R5** — no mutable default arguments anywhere;
* **R6** — result-producing packages only write documented
  ``FilterResult.info`` keys (the key schema lives in ``docs/API.md``).

Rules register themselves in :data:`RULES` via the :func:`register`
decorator, so adding a rule is: subclass :class:`Rule`, decorate, done.
The engine instantiates the registry once per run.
"""

from __future__ import annotations

import abc
import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from .findings import Finding
from .model import ModuleModel

#: Packages whose code must not read the wall clock (R2).
CLOCK_FREE_PACKAGES = frozenset({"core", "lsh", "structures", "distance"})
#: Packages whose raises must come from the repro error taxonomy (R3).
TAXONOMY_PACKAGES = frozenset({"core", "lsh"})
#: Packages whose public functions must be fully annotated (R4).
ANNOTATED_PACKAGES = frozenset({"core", "lsh", "obs", "eval"})
#: Packages that build FilterResults and must stick to the documented
#: ``info`` key schema (R6).
INFO_SCHEMA_PACKAGES = frozenset({"core", "baselines", "online", "serve"})
#: The ``FilterResult.info`` key schema documented in ``docs/API.md``.
#: Writing any other key from an :data:`INFO_SCHEMA_PACKAGES` package is
#: an R6 finding — document the key (and add it here) first.
DOCUMENTED_INFO_KEYS = frozenset(
    {
        "method",
        "budgets",
        "designs",
        "selection",
        "records_per_level",
        "parallel",
        "signature_cache",
        "components",
        "n_hashes",
        "design",
        "verified",
        "serving",
        "memoized_pairs",
        "store_backing",
        "kernels",
        "bin_index",
    }
)

#: Wall-clock callables flagged by R2 (dotted form as written in code).
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.perf_counter",
        "time.monotonic",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
    }
)


@dataclass
class FileContext:
    """Everything a rule may need to know about one source file."""

    #: Display path (as reported in findings).
    path: str
    #: Path parts relative to the ``repro`` package root, e.g.
    #: ``("core", "adaptive.py")`` — rules scope themselves on these.
    scope: tuple[str, ...]
    tree: ast.Module
    lines: list[str]
    #: Lazily built shared AST model (imports, scopes, parents) for the
    #: scope-aware rules; one build serves every rule on this file.
    _model: ModuleModel | None = field(default=None, repr=False, compare=False)

    @property
    def model(self) -> ModuleModel:
        if self._model is None:
            self._model = ModuleModel(self.tree)
        return self._model

    @property
    def package(self) -> str:
        """First-level package the file lives in ('' for top-level modules)."""
        return self.scope[0] if len(self.scope) > 1 else ""

    @property
    def filename(self) -> str:
        return self.scope[-1]


class Rule(abc.ABC):
    """One invariant check over a parsed source file."""

    #: Stable identifier used in findings, noqa comments and baselines.
    id: str = ""
    #: One-line description shown by ``repro lint --list-rules``.
    title: str = ""

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``ctx``."""

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str, suggestion: str
    ) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            rule=self.id,
            message=message,
            suggestion=suggestion,
        )


#: Rule registry, id -> instance; populated by :func:`register`.
RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of ``cls`` to :data:`RULES`."""
    RULES[cls.id] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    return [RULES[rule_id] for rule_id in sorted(RULES)]


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register
class StaleNoqaRule(Rule):
    """R0: a ``# repro: noqa`` that suppresses nothing is itself a finding.

    The check lives in the engine (:func:`repro.analysis.engine.lint_file`)
    because staleness is only knowable *after* every other rule has run
    on the file; this class exists so R0 participates in the registry —
    ``--list-rules``, ``--rules`` filtering, baselines — like any rule.
    Stale-suppression detection only runs when R0 is in the active rule
    set **and** the run covers all registered rules (a ``--rules R7``
    subset run cannot tell a stale noqa from one aimed at an inactive
    rule).
    """

    id = "R0"
    title = "stale noqa: suppression comment that suppresses nothing"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())


@register
class RandomSourceRule(Rule):
    """R1: all randomness is constructed in ``rngutil.py``."""

    id = "R1"
    title = "np.random / random usage outside repro.rngutil"

    _SUGGESTION = "take a seed: SeedLike and call repro.rngutil.make_rng/spawn"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.filename == "rngutil.py":
            return
        # Walk manually so a flagged `np.random.default_rng` chain does
        # not also flag its inner `np.random` Attribute node.
        stack: list[ast.AST] = [ctx.tree]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "numpy.random"
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"imports {alias.name!r} directly",
                            self._SUGGESTION,
                        )
                continue
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "random" or module.startswith("numpy.random"):
                    yield self.finding(
                        ctx,
                        node,
                        f"imports from {module!r} directly",
                        self._SUGGESTION,
                    )
                continue
            if isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted is not None and (
                    dotted.startswith("np.random.")
                    or dotted.startswith("numpy.random.")
                    or dotted in ("np.random", "numpy.random")
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"uses {dotted} directly",
                        self._SUGGESTION,
                    )
                    continue  # do not descend into the flagged chain
            stack.extend(ast.iter_child_nodes(node))


@register
class WallClockRule(Rule):
    """R2: algorithm packages read time only through ``repro.obs.clock``."""

    id = "R2"
    title = "wall-clock access in core/lsh/structures/distance"

    _SUGGESTION = "route timing through repro.obs.clock.monotonic()"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.package not in CLOCK_FREE_PACKAGES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module in ("time", "datetime"):
                    names = ", ".join(alias.name for alias in node.names)
                    yield self.finding(
                        ctx,
                        node,
                        f"imports {names} from {module!r}",
                        self._SUGGESTION,
                    )
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted in _CLOCK_CALLS:
                    yield self.finding(
                        ctx,
                        node,
                        f"calls {dotted}() directly",
                        self._SUGGESTION,
                    )


@register
class ErrorTaxonomyRule(Rule):
    """R3: core/lsh raise repro.errors subclasses, not stdlib errors."""

    id = "R3"
    title = "bare ValueError/RuntimeError raised in core/lsh"

    _BARE = frozenset({"ValueError", "RuntimeError"})
    _SUGGESTION = (
        "raise a repro.errors.ReproError subclass "
        "(e.g. ConfigurationError)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.package not in TAXONOMY_PACKAGES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise):
                continue
            exc = node.exc
            name: str | None = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in self._BARE:
                yield self.finding(
                    ctx, node, f"raises bare {name}", self._SUGGESTION
                )


@register
class AnnotationRule(Rule):
    """R4: public functions in the typed packages are fully annotated."""

    id = "R4"
    title = "incomplete annotations on public functions"

    _SUGGESTION = "annotate every parameter and the return type"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.package not in ANNOTATED_PACKAGES:
            return
        yield from self._walk(ctx, ctx.tree, in_class=False)

    def _walk(
        self, ctx: FileContext, node: ast.AST, in_class: bool
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from self._walk(ctx, child, in_class=True)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self._is_public(child.name):
                    yield from self._check_signature(ctx, child, in_class)
                # Nested defs are implementation details — not public API.

    @staticmethod
    def _is_public(name: str) -> bool:
        if name.startswith("__") and name.endswith("__"):
            return True  # dunders are part of the public protocol
        return not name.startswith("_")

    def _check_signature(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        in_class: bool,
    ) -> Iterator[Finding]:
        args = fn.args
        positional = list(args.posonlyargs) + list(args.args)
        if in_class and positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        missing = [
            a.arg
            for a in positional + list(args.kwonlyargs)
            if a.annotation is None
        ]
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None and vararg.annotation is None:
                missing.append(vararg.arg)
        if missing:
            yield self.finding(
                ctx,
                fn,
                f"public function {fn.name!r} has unannotated "
                f"parameter(s): {', '.join(missing)}",
                self._SUGGESTION,
            )
        if fn.returns is None:
            yield self.finding(
                ctx,
                fn,
                f"public function {fn.name!r} has no return annotation",
                self._SUGGESTION,
            )


@register
class InfoKeySchemaRule(Rule):
    """R6: only documented ``FilterResult.info`` keys are written."""

    id = "R6"
    title = "undocumented FilterResult.info key written in a result package"

    _SUGGESTION = (
        "document the key in docs/API.md and add it to "
        "DOCUMENTED_INFO_KEYS (or drop the write)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.package not in INFO_SCHEMA_PACKAGES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                yield from self._check_assign(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_assign(
        self, ctx: FileContext, node: ast.Assign | ast.AnnAssign
    ) -> Iterator[Finding]:
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            # result.info["key"] = ... / info["key"] = ...
            if isinstance(target, ast.Subscript) and self._is_info(
                target.value
            ):
                key = target.slice
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    yield from self._check_key(ctx, key, key.value)
            # info = {...} / info: dict = {...}
            elif (
                self._is_info(target)
                and node.value is not None
                and isinstance(node.value, ast.Dict)
            ):
                yield from self._check_dict(ctx, node.value)

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        dotted = _dotted(node.func)
        if dotted is None or not dotted.startswith("FilterResult"):
            return
        for keyword in node.keywords:
            if keyword.arg == "info" and isinstance(keyword.value, ast.Dict):
                yield from self._check_dict(ctx, keyword.value)

    @staticmethod
    def _is_info(node: ast.AST) -> bool:
        """Matches the name ``info`` and any ``<expr>.info`` attribute."""
        if isinstance(node, ast.Name):
            return node.id == "info"
        return isinstance(node, ast.Attribute) and node.attr == "info"

    def _check_dict(self, ctx: FileContext, node: ast.Dict) -> Iterator[Finding]:
        for key in node.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                yield from self._check_key(ctx, key, key.value)

    def _check_key(
        self, ctx: FileContext, node: ast.AST, key: str
    ) -> Iterator[Finding]:
        if key not in DOCUMENTED_INFO_KEYS:
            yield self.finding(
                ctx,
                node,
                f"writes undocumented FilterResult.info key {key!r}",
                self._SUGGESTION,
            )


@register
class MutableDefaultRule(Rule):
    """R5: no mutable default arguments, anywhere."""

    id = "R5"
    title = "mutable default argument"

    _FACTORIES = frozenset({"list", "dict", "set"})
    _SUGGESTION = "default to None and create the object inside the function"

    def _is_mutable(self, default: ast.AST) -> bool:
        if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                ast.DictComp, ast.SetComp)):
            return True
        if isinstance(default, ast.Call) and isinstance(default.func, ast.Name):
            return default.func.id in self._FACTORIES
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            name = getattr(node, "name", "<lambda>")
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"function {name!r} has a mutable default argument",
                        self._SUGGESTION,
                    )
