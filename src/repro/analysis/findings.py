"""Structured lint findings and their text / JSON renderings.

A :class:`Finding` is one rule violation at one source location.  The
renderers are deliberately dumb — ``render_text`` is what a human reads
in a terminal, ``render_json`` is what CI archives as an artifact — and
both consume the same list, so the two views can never drift.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any


@dataclass(frozen=True)
class Finding:
    """One invariant violation at one source location."""

    #: Path of the offending file, as given to the engine (repo-relative
    #: when the engine was invoked from the repo root).
    path: str
    #: 1-based line number of the violation.
    line: int
    #: Rule identifier (``R1`` .. ``R5``).
    rule: str
    #: Human-readable description of what is wrong.
    message: str
    #: Suggested fix (one line, imperative).
    suggestion: str

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    def sort_key(self) -> tuple[str, int, str]:
        return (self.path, self.line, self.rule)


def render_text(findings: list[Finding]) -> str:
    """One ``path:line: [Rx] message (fix: ...)`` line per finding."""
    lines = [
        f"{f.path}:{f.line}: [{f.rule}] {f.message} (fix: {f.suggestion})"
        for f in sorted(findings, key=Finding.sort_key)
    ]
    return "\n".join(lines)


def render_json(
    findings: list[Finding],
    checked_files: int,
    suppressed: int,
    baselined: int,
) -> str:
    """JSON document with findings plus run-level counts."""
    ordered = sorted(findings, key=Finding.sort_key)
    per_rule: dict[str, int] = {}
    for f in ordered:
        per_rule[f.rule] = per_rule.get(f.rule, 0) + 1
    doc = {
        "findings": [f.to_dict() for f in ordered],
        "counts": {
            "total": len(ordered),
            "per_rule": dict(sorted(per_rule.items())),
            "checked_files": checked_files,
            "suppressed": suppressed,
            "baselined": baselined,
        },
    }
    return json.dumps(doc, indent=2)
