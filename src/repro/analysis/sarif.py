"""SARIF 2.1.0 rendering for CI code-scanning annotations.

``repro lint --format sarif`` emits one SARIF run whose results GitHub
code scanning turns into inline PR annotations (via
``github/codeql-action/upload-sarif``).  The document is deliberately
minimal — tool driver with one descriptor per registered rule, one
``result`` per finding — because annotation rendering only consumes
``ruleId``, ``message`` and the physical location.

Paths are emitted as repo-relative POSIX URIs when they fall under the
current working directory (CI invokes the linter from the repo root),
which is what the annotation matcher requires.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from pathlib import Path

from .findings import Finding
from .rules import Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _relative_uri(path: str, root: Path) -> str:
    """``path`` as a POSIX URI relative to ``root`` when possible."""
    candidate = Path(path)
    try:
        resolved = candidate.resolve()
        return resolved.relative_to(root).as_posix()
    except (OSError, ValueError):
        return candidate.as_posix()


def sarif_document(
    findings: Sequence[Finding],
    rules: Sequence[Rule],
    root: str | Path | None = None,
) -> dict:
    """The SARIF run as a plain dict (``render_sarif`` serializes it)."""
    base = Path(root).resolve() if root is not None else Path.cwd().resolve()
    ordered_rules = sorted(rules, key=lambda rule: rule.id)
    rule_index = {rule.id: i for i, rule in enumerate(ordered_rules)}
    descriptors = [
        {
            "id": rule.id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.title},
            "fullDescription": {
                "text": (type(rule).__doc__ or rule.title).strip()
            },
            "help": {"text": "See docs/ANALYSIS.md for the rule catalogue."},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in ordered_rules
    ]
    results = []
    for finding in sorted(findings, key=Finding.sort_key):
        result = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {
                "text": f"{finding.message} (fix: {finding.suggestion})"
            },
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative_uri(finding.path, base),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": max(1, finding.line)},
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": descriptors,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": base.as_uri() + "/"}
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding],
    rules: Sequence[Rule],
    root: str | Path | None = None,
) -> str:
    """Serialize :func:`sarif_document` for ``--format sarif``."""
    return json.dumps(sarif_document(findings, rules, root), indent=2)
