"""Shared per-file AST model for the scope-aware rules (R7–R13).

The original rules (R1–R6) are purely syntactic: they pattern-match on
node shapes and the literal dotted text in the source.  The rules added
with the AST engine need three things syntax alone cannot give them:

* **qualified names** — ``import numpy as xp; xp.random.seed(0)`` must
  resolve to ``numpy.random.seed`` even though the text never says so;
* **scopes** — "is this call inside an ``async def``?", "is this
  statement at module import time?", "which class owns this method?";
* **cheap local type facts** — "does this name hold a ``set`` in this
  function?", "which functions in this module are coroutines?".

One :class:`ModuleModel` is built lazily per file (one ``ast.parse``
already happens in the engine; the model adds one walk over that tree)
and shared by every AST rule through :attr:`FileContext.model`, so the
per-rule cost is lookups, not re-traversal.

Everything here is deliberately *local*: resolution never crosses file
boundaries.  A rule that needs whole-program truth approximates it with
module-level facts plus naming conventions, and says so in its docs.
"""

from __future__ import annotations

import ast

#: Node types that open a new (function-like) scope.
_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

#: Calls whose result is a ``set`` regardless of arguments.
_SET_FACTORIES = frozenset({"set", "frozenset"})

#: Annotation heads naming an unordered collection type.
_SET_ANNOTATIONS = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for an Attribute/Name chain as written, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ModuleModel:
    """Imports, scopes, and local type facts for one parsed module."""

    def __init__(self, tree: ast.Module) -> None:
        self.tree = tree
        #: child node -> parent node, for every node in the tree.
        self.parents: dict[ast.AST, ast.AST] = {}
        #: local name -> fully qualified dotted prefix it stands for.
        #: ``import numpy as xp``   -> ``{"xp": "numpy"}``
        #: ``from numpy import random as r`` -> ``{"r": "numpy.random"}``
        #: ``from os.path import join``      -> ``{"join": "os.path.join"}``
        self.imports: dict[str, str] = {}
        #: names of module-level ``async def`` functions.
        self.async_functions: set[str] = set()
        #: class name -> names of its ``async def`` methods.
        self.async_methods: dict[str, set[str]] = {}
        self._set_names_cache: dict[ast.AST, frozenset[str]] = {}
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else local
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import: stays repo-local
                    continue
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{module}.{alias.name}"
            elif isinstance(node, ast.AsyncFunctionDef):
                owner = self.parents.get(node)
                if isinstance(owner, ast.Module):
                    self.async_functions.add(node.name)
                elif isinstance(owner, ast.ClassDef):
                    self.async_methods.setdefault(owner.name, set()).add(
                        node.name
                    )

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def qualified(self, node: ast.AST) -> str | None:
        """The fully qualified dotted name behind ``node``, if knowable.

        Resolves the *leading* segment through the module's import
        table, so aliased access is seen through: with ``import numpy
        as xp``, both ``xp.random.seed`` and ``numpy.random.seed``
        resolve to ``numpy.random.seed``.  Names bound by assignment
        (not import) resolve to ``None`` — the model does not chase
        dataflow.
        """
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self.imports.get(head)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target

    def call_name(self, call: ast.Call) -> str | None:
        """Qualified name of a call's callee; falls back to the literal
        dotted text when the head is not an import binding (so builtins
        like ``open`` still resolve to ``"open"``)."""
        resolved = self.qualified(call.func)
        if resolved is not None:
            return resolved
        return dotted_name(call.func)

    # ------------------------------------------------------------------
    # scope queries
    # ------------------------------------------------------------------
    def enclosing(self, node: ast.AST, kinds: tuple[type, ...]) -> ast.AST | None:
        """The nearest ancestor of ``node`` of one of ``kinds``."""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, kinds):
                return current
            current = self.parents.get(current)
        return None

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda | None:
        fn = self.enclosing(node, _FUNCTION_NODES)
        assert fn is None or isinstance(fn, _FUNCTION_NODES)
        return fn

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        cls = self.enclosing(node, (ast.ClassDef,) + _FUNCTION_NODES)
        return cls if isinstance(cls, ast.ClassDef) else None

    def in_async_function(self, node: ast.AST) -> bool:
        """True when ``node`` sits (lexically) inside an ``async def``.

        The *nearest* function decides: a sync ``def`` nested inside an
        ``async def`` shields its body — it runs wherever it is called,
        typically off-loop via ``asyncio.to_thread``.
        """
        return isinstance(self.enclosing_function(node), ast.AsyncFunctionDef)

    def at_import_time(self, node: ast.AST) -> bool:
        """True when ``node`` executes at module import (module or class
        body, not inside any function)."""
        return self.enclosing_function(node) is None

    def is_local_coroutine_call(self, call: ast.Call) -> bool:
        """True when ``call`` invokes an ``async def`` defined in this
        module: a module-level coroutine by bare name, or
        ``self.<m>()`` / ``cls.<m>()`` where ``<m>`` is an async method
        of the lexically enclosing class."""
        func = call.func
        if isinstance(func, ast.Name):
            return func.id in self.async_functions
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
        ):
            # ``self`` binds to the *nearest class* even across nested
            # function scopes, so (unlike :meth:`enclosing_class`) walk
            # straight up to the owning ClassDef.
            owner = self.enclosing(call, (ast.ClassDef,))
            if isinstance(owner, ast.ClassDef):
                return func.attr in self.async_methods.get(owner.name, set())
        return False

    # ------------------------------------------------------------------
    # local type facts
    # ------------------------------------------------------------------
    def _scope_of(self, node: ast.AST) -> ast.AST:
        """The function (or module) whose namespace ``node`` reads."""
        return self.enclosing_function(node) or self.tree

    def set_typed_names(self, scope: ast.AST) -> frozenset[str]:
        """Names that (locally) hold a ``set``/``frozenset`` in ``scope``.

        Evidence counted: assignment from a set literal / comprehension
        / ``set()``-``frozenset()`` call, an annotation whose head names
        a set type (``x: set[int]``, parameter annotations included),
        and ``|=``-style augmented assignment from another set-typed
        name.  This is one-pass flow-insensitive inference — enough for
        R7's "you are iterating an unordered collection" question, and
        cheap enough to memoize per scope.
        """
        cached = self._set_names_cache.get(scope)
        if cached is None:
            cached = self._infer_set_typed_names(scope)
            self._set_names_cache[scope] = cached
        return cached

    def _infer_set_typed_names(self, scope: ast.AST) -> frozenset[str]:
        names: set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + [a for a in (args.vararg, args.kwarg) if a is not None]
            ):
                if arg.annotation is not None and self._is_set_annotation(
                    arg.annotation
                ):
                    names.add(arg.arg)
        for node in self._scope_statements(scope):
            if isinstance(node, ast.Assign):
                if self.is_set_expression(node.value, names):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and (
                    self._is_set_annotation(node.annotation)
                    or (
                        node.value is not None
                        and self.is_set_expression(node.value, names)
                    )
                ):
                    names.add(node.target.id)
            elif isinstance(node, ast.AugAssign):
                if (
                    isinstance(node.target, ast.Name)
                    and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub))
                    and self.is_set_expression(node.value, names)
                ):
                    names.add(node.target.id)
        return frozenset(names)

    def _scope_statements(self, scope: ast.AST):
        """Every node whose nearest enclosing function is ``scope``."""
        for node in ast.walk(scope):
            if node is scope:
                continue
            if self._scope_of(node) is scope or (
                scope is self.tree and self.enclosing_function(node) is None
            ):
                yield node

    @staticmethod
    def _is_set_annotation(annotation: ast.AST) -> bool:
        head = annotation
        if isinstance(head, ast.Subscript):
            head = head.value
        name = dotted_name(head)
        if name is None and isinstance(head, ast.Constant) and isinstance(
            head.value, str
        ):
            name = head.value.split("[", 1)[0]
        if name is None:
            return False
        return name.split(".")[-1] in _SET_ANNOTATIONS

    def is_set_expression(
        self, node: ast.AST, known_sets: frozenset[str] | set[str] = frozenset()
    ) -> bool:
        """True when ``node`` evaluates to a set, as far as local
        evidence goes: literals, comprehensions, factory calls, names
        already known to be sets, and set-algebra ``BinOp``s over them.
        """
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = self.call_name(node)
            if name in _SET_FACTORIES:
                return True
            # s.union(...) / s.intersection(...) on a known set
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
                "copy",
            ):
                return self.is_set_expression(node.func.value, known_sets)
            return False
        if isinstance(node, ast.Name):
            return node.id in known_sets
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_set_expression(
                node.left, known_sets
            ) or self.is_set_expression(node.right, known_sets)
        return False
