"""Record-range sharding and the deterministic cross-shard top-k merge.

A service generation partitions its store into contiguous record
ranges (one :class:`~repro.serve.ResolverSession` per range) with the
same deterministic partitioner the parallel layer uses for signature
batches (:func:`repro.parallel.partition.chunk_spans`), so a given
``(n_records, n_shards)`` always produces the same shard layout.

Every helper here is a pure function of its inputs.  That is the
load-harness bit-identity contract: the service's worker processes,
the inline thread backend, and the in-process oracle all route their
shard queries through :func:`clamped_top_k` and combine them through
:func:`merge_shard_top_k`, so any divergence between a served response
and the oracle is a real serving-layer bug, not tie-break noise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..core.config import AdaptiveConfig, config_with
from ..core.result import FilterResult
from ..errors import ResolvableExceededError
from ..parallel.partition import chunk_spans
from .session import ResolverSession

if TYPE_CHECKING:
    from ..distance.rules import MatchRule
    from ..records import RecordStore

#: Fewest records per shard; tiny stores collapse to fewer shards.
MIN_SHARD_RECORDS = 8


def shard_spans(n_records: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous half-open record ranges covering ``[0, n_records)``.

    At most ``n_shards`` near-equal spans, each at least
    :data:`MIN_SHARD_RECORDS` long (small stores produce fewer shards
    rather than degenerate ones).
    """
    return chunk_spans(n_records, n_shards, MIN_SHARD_RECORDS)


def clamped_top_k(
    session: ResolverSession, k: int
) -> tuple[FilterResult | None, int]:
    """``session.top_k(k)``, clamped to what the shard can resolve.

    A shard holding fewer than ``k`` final clusters raises
    :class:`ResolvableExceededError`; the error carries the exact
    resolvable count, so one retry at that depth always succeeds.
    Returns ``(result, effective_k)`` — ``(None, 0)`` for a shard with
    nothing to resolve.
    """
    effective = min(int(k), len(session.store))
    while effective >= 1:
        try:
            return session.top_k(effective), effective
        except ResolvableExceededError as exc:
            if exc.resolvable < 1:
                return None, 0
            effective = exc.resolvable
    return None, 0


def shard_response(
    result: FilterResult | None, effective_k: int, offset: int
) -> dict[str, Any]:
    """Wire-shaped view of one shard's clamped top-k answer.

    Record ids are translated to the global id space (shard stores are
    contiguous slices, so global id = local id + span start) and sorted
    within each cluster: member order is discovery order inside a
    session, which depends on the shard layout, so the wire format
    canonicalizes it (cluster identity is a set).  The payload is plain
    ints/lists — picklable for process workers and JSON-ready for the
    HTTP layer.
    """
    if result is None:
        return {
            "clusters": [],
            "resolvable": 0,
            "hashes_computed": 0,
            "pairs_compared": 0,
        }
    return {
        "clusters": [
            sorted(int(rid) + offset for rid in cluster.rids)
            for cluster in result.clusters
        ],
        "resolvable": int(effective_k),
        "hashes_computed": int(result.counters.hashes_computed),
        "pairs_compared": int(result.counters.pairs_compared),
    }


def merge_shard_top_k(
    shard_results: list[dict[str, Any]], k: int
) -> dict[str, Any]:
    """Combine per-shard top-k answers into the global top-k.

    Candidates are every shard's clusters (already shard-locally
    largest-first); the global order is size-descending with a full
    lexicographic record-id tie-break, so the merge is a pure function
    of the candidate set — independent of shard arrival order.

    A shard query asks each shard for depth ``k``, and record ranges
    are disjoint, so every global top-k cluster that is contained in a
    single shard is among the candidates.  (Entities straddling a shard
    boundary are resolved per shard — the documented approximation of
    range sharding; see ``docs/SERVING.md``.)
    """
    candidates: list[list[int]] = []
    hashes = 0
    pairs = 0
    for res in shard_results:
        candidates.extend(res["clusters"])
        hashes += int(res["hashes_computed"])
        pairs += int(res["pairs_compared"])
    candidates.sort(key=lambda cluster: (-len(cluster), cluster))
    return {
        "clusters": candidates[: int(k)],
        "resolvable": len(candidates),
        "hashes_computed": hashes,
        "pairs_compared": pairs,
    }


# ----------------------------------------------------------------------
# The synchronous facade
# ----------------------------------------------------------------------
class ShardedIndex:
    """Record-range-sharded adaLSH index with the cross-shard merge.

    The synchronous, in-process face of the sharding layer: the store
    is partitioned by :func:`shard_spans`, and each shard owns a full
    :class:`~repro.serve.ResolverSession` over a zero-copy
    :meth:`~repro.records.RecordStore.slice_view` of its range — so the
    LSH bin index, the MinHash/Hyperplane signature pools, and the
    cross-round pair-verdict memo are all sharded by record range as a
    consequence, with no global structures to synchronize.  Queries run
    Largest-First independently per shard and combine through
    :func:`merge_shard_top_k`, the same pure merge the async service,
    its worker processes, and the :class:`~repro.serve.service.
    ShardOracle` use — responses here are the bit-identity reference
    for all of them.

    With a memory-mapped store (:meth:`repro.storage.StoreLayout.open`)
    the shards never copy column data at all: ``n_shards=1`` over an
    in-memory store and ``n_shards=1`` over the mmap open of the same
    rows return byte-identical responses, and multi-shard runs agree
    with the single-shard path whenever no entity straddles a span
    boundary (the documented range-sharding approximation).

    Parameters
    ----------
    store, rule:
        The records to index and the match rule.
    n_shards:
        Requested shard count; tiny stores collapse to fewer (see
        :data:`MIN_SHARD_RECORDS`).  :attr:`spans` has the final
        layout.
    config:
        Base :class:`~repro.core.config.AdaptiveConfig`; shard ``i``
        runs with ``seed = config.seed + i`` (generation-0 service
        shards use the same derivation).
    """

    def __init__(
        self,
        store: RecordStore,
        rule: MatchRule,
        n_shards: int = 1,
        config: AdaptiveConfig | None = None,
    ) -> None:
        if config is None:
            config = AdaptiveConfig(cost_model="analytic")
        self.spans = shard_spans(len(store), int(n_shards))
        self.sessions = [
            ResolverSession(
                store.slice_view(lo, hi),
                rule,
                config=config_with(config, seed=int(config.seed or 0) + i),
            )
            for i, (lo, hi) in enumerate(self.spans)
        ]

    @property
    def n_shards(self) -> int:
        """Actual shard count (may be below the requested one)."""
        return len(self.sessions)

    def top_k(self, k: int) -> dict[str, Any]:
        """Merged top-``k`` across every shard (wire-shaped dict)."""
        results = [
            shard_response(*clamped_top_k(session, int(k)), offset=lo)
            for session, (lo, _hi) in zip(self.sessions, self.spans)
        ]
        merged = merge_shard_top_k(results, int(k))
        merged["k"] = int(k)
        merged["n_shards"] = self.n_shards
        return merged

    def shard_stats(self) -> list[dict[str, Any]]:
        """Per-shard serving stats, plus each shard's record span."""
        out = []
        for session, (lo, hi) in zip(self.sessions, self.spans):
            stats = dict(session.serving_stats())
            stats["span"] = [int(lo), int(hi)]
            out.append(stats)
        return out

    def close(self) -> None:
        for session in self.sessions:
            session.close()

    def __enter__(self) -> ShardedIndex:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
