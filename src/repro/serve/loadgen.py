"""Open-loop load harness for the sharded resolver service.

The driver pre-computes a deterministic request schedule — Poisson
arrivals at a target QPS, Zipf-skewed ``k`` choice, an optional write
fraction fed from held-out reserve records — then fires it **open
loop**: each request is launched at its scheduled arrival time whether
or not earlier requests have completed, and latency is measured from
the *scheduled* arrival, so queueing delay inside the service counts
against it (closed-loop harnesses hide exactly that).

The harness gates on three things and **never** on wall-clock latency
(CI machines are too noisy for latency gates):

* **error rate** — non-2xx/non-429 responses and transport failures;
* **shed rate** — 429 admission-control rejections;
* **response bit-identity** — every distinct ``(k, generation)``
  response observed during the run must equal the in-process
  :class:`~repro.serve.service.ShardOracle` answer for that
  generation, and repeated responses for the same key must agree with
  each other.

Latency percentiles, throughput, and per-op breakdowns are reported in
``BENCH_serve_load.json`` for trend tracking.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field, fields
from typing import Any

import numpy as np

from ..errors import ConfigurationError, ServiceError
from ..records import FieldKind, RecordStore
from ..rngutil import make_rng
from .service import ResolverService

#: Schema version of the ``BENCH_serve_load.json`` payload.
BENCH_VERSION = 1


@dataclass(frozen=True)
class LoadProfile:
    """Shape of one load run, in one frozen value.

    Parameters
    ----------
    qps:
        Target offered load (requests per second, Poisson arrivals).
    duration_s:
        Length of the arrival schedule.
    k_values:
        The query depths in play; index 0 is the hottest key.
    zipf_s:
        Skew exponent: ``P(rank r) ∝ 1 / r**zipf_s`` over ``k_values``.
        0 gives a uniform mix.
    write_fraction:
        Fraction of arrivals that are ``insert_records`` writes, fed
        from the reserve store until it runs out (then they fall back
        to queries).
    write_chunk:
        Records per write request.
    seed:
        Schedule seed (arrivals, skew draws, write placement).
    timeout_s:
        Per-request client timeout; expiries count as errors.
    max_error_rate, max_shed_rate:
        Gate thresholds for the pass/fail verdict.
    """

    qps: float = 50.0
    duration_s: float = 5.0
    k_values: tuple[int, ...] = (2, 5, 10)
    zipf_s: float = 1.1
    write_fraction: float = 0.0
    write_chunk: int = 8
    seed: int = 0
    timeout_s: float = 30.0
    max_error_rate: float = 0.01
    max_shed_rate: float = 0.2

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ConfigurationError(f"qps must be > 0, got {self.qps}")
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"duration_s must be > 0, got {self.duration_s}"
            )
        if not self.k_values or any(k < 1 for k in self.k_values):
            raise ConfigurationError(
                f"k_values must be >= 1 values, got {self.k_values!r}"
            )
        if not 0.0 <= self.write_fraction < 1.0:
            raise ConfigurationError(
                f"write_fraction must be in [0, 1), got {self.write_fraction}"
            )
        if self.write_chunk < 1:
            raise ConfigurationError(
                f"write_chunk must be >= 1, got {self.write_chunk}"
            )
        object.__setattr__(self, "k_values", tuple(int(k) for k in self.k_values))

    def to_dict(self) -> dict[str, Any]:
        return {
            f.name: list(v) if isinstance(v := getattr(self, f.name), tuple) else v
            for f in fields(self)
        }


@dataclass
class _Op:
    """One scheduled request."""

    at: float
    kind: str  # "top_k" | "insert"
    k: int = 0
    chunk: int = -1
    # -- filled in after firing --
    status: int = 0
    latency_ms: float = 0.0
    error: str | None = None
    generation: int = -1
    coalesced: bool = False
    clusters: list[list[int]] | None = field(default=None, repr=False)


def build_schedule(profile: LoadProfile, n_write_chunks: int) -> list[_Op]:
    """The deterministic arrival schedule for one run.

    Pure function of ``(profile, n_write_chunks)``: Poisson arrival
    gaps, the write/query split, and the Zipf rank draws all come from
    one :func:`~repro.rngutil.make_rng` stream.  Writes beyond the
    available reserve chunks degrade to queries.
    """
    rng = make_rng(profile.seed)
    ranks = np.arange(1, len(profile.k_values) + 1, dtype=np.float64)
    weights = ranks ** -float(profile.zipf_s)
    weights /= weights.sum()
    ops: list[_Op] = []
    t = 0.0
    next_chunk = 0
    while True:
        t += float(rng.exponential(1.0 / profile.qps))
        if t >= profile.duration_s:
            break
        is_write = (
            profile.write_fraction > 0
            and float(rng.random()) < profile.write_fraction
        )
        rank = int(rng.choice(len(profile.k_values), p=weights))
        if is_write and next_chunk < n_write_chunks:
            ops.append(_Op(at=t, kind="insert", chunk=next_chunk))
            next_chunk += 1
        else:
            ops.append(_Op(at=t, kind="top_k", k=profile.k_values[rank]))
    return ops


def store_columns_payload(store: RecordStore, lo: int, hi: int) -> dict[str, Any]:
    """Rows ``[lo, hi)`` of a store as a JSON-ready ``columns`` mapping
    (the ``insert_records`` wire shape)."""
    columns: dict[str, Any] = {}
    for spec in store.schema:
        if spec.kind is FieldKind.VECTOR:
            columns[spec.name] = store.vectors(spec.name)[lo:hi].tolist()
        else:
            columns[spec.name] = [
                [int(x) for x in s] for s in store.shingle_sets(spec.name)[lo:hi]
            ]
    return columns


# ----------------------------------------------------------------------
# Minimal HTTP client (one short-lived connection per request).
# ----------------------------------------------------------------------
async def http_request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: dict[str, Any] | None = None,
    timeout: float = 30.0,
) -> tuple[int, dict[str, Any]]:
    """One JSON request/response against the service wire protocol.

    The response body is read by ``Content-Length``, never to EOF: a
    service rollover forks worker processes that inherit any open
    connection fds, so the server closing a socket does not guarantee
    the client an EOF while those workers live.
    """

    async def _go() -> tuple[int, dict[str, Any]]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            body = b"" if payload is None else json.dumps(payload).encode("utf-8")
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
            status_line = (await reader.readline()).decode("latin-1").strip()
            parts = status_line.split()
            if len(parts) < 2 or not parts[1].isdigit():
                raise ServiceError(f"malformed response: {status_line!r}")
            headers: dict[str, str] = {}
            while True:
                raw = await reader.readline()
                if raw in (b"\r\n", b"\n", b""):
                    break
                name, _, value = raw.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            body_raw = await reader.readexactly(length) if length else b""
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
        data = json.loads(body_raw.decode("utf-8")) if body_raw else {}
        return int(parts[1]), data

    return await asyncio.wait_for(_go(), timeout)


async def _fire(
    host: str,
    port: int,
    start: float,
    op: _Op,
    write_payloads: list[dict[str, Any]],
    timeout: float,
) -> None:
    delay = start + op.at - time.perf_counter()
    if delay > 0:
        await asyncio.sleep(delay)
    try:
        if op.kind == "insert":
            status, data = await http_request(
                host,
                port,
                "POST",
                "/insert_records",
                {"columns": write_payloads[op.chunk]},
                timeout,
            )
        else:
            status, data = await http_request(
                host, port, "POST", "/top_k", {"k": op.k}, timeout
            )
    except (OSError, asyncio.TimeoutError, ServiceError, ValueError) as exc:
        op.status = -1
        op.error = f"{type(exc).__name__}: {exc}"
        op.latency_ms = (time.perf_counter() - (start + op.at)) * 1000.0
        return
    op.latency_ms = (time.perf_counter() - (start + op.at)) * 1000.0
    op.status = status
    if status == 200 and op.kind == "top_k":
        op.generation = int(data.get("generation", -1))
        op.coalesced = bool(data.get("coalesced", False))
        op.clusters = data.get("clusters")
    elif status == 200 and op.kind == "insert":
        op.generation = int(data.get("generation", -1))
    elif status != 429:
        op.error = str(data.get("error", f"status {status}"))


async def run_schedule(
    host: str,
    port: int,
    schedule: list[_Op],
    write_payloads: list[dict[str, Any]],
    timeout: float,
) -> float:
    """Fire the schedule open loop; returns the elapsed wall time."""
    start = time.perf_counter()
    await asyncio.gather(
        *(
            _fire(host, port, start, op, write_payloads, timeout)
            for op in schedule
        )
    )
    return time.perf_counter() - start


# ----------------------------------------------------------------------
# Verification + summary.
# ----------------------------------------------------------------------
def verify_identity(
    service: ResolverService, schedule: list[_Op]
) -> dict[str, Any]:
    """Check served responses against the per-generation oracle.

    Two layers: (1) *consistency* — all 200 responses for the same
    ``(k, generation)`` must be identical (they are deterministic by
    contract); (2) *oracle identity* — each distinct key's response
    must equal :meth:`ShardOracle.top_k` for that generation.  Only the
    ``clusters`` payload is compared: work counters legitimately differ
    between a warm serving session and a cold oracle replica.
    """
    by_key: dict[tuple[int, int], list[list[int]]] = {}
    mismatched_repeats = 0
    for op in schedule:
        if op.kind != "top_k" or op.status != 200 or op.clusters is None:
            continue
        key = (op.k, op.generation)
        if key in by_key:
            if by_key[key] != op.clusters:
                mismatched_repeats += 1
        else:
            by_key[key] = op.clusters
    checked = 0
    matched = 0
    mismatches: list[dict[str, Any]] = []
    oracles: dict[int, Any] = {}
    try:
        for (k, gen), clusters in sorted(by_key.items()):
            if gen not in oracles:
                oracles[gen] = service.build_oracle(gen)
            expected = oracles[gen].top_k(k)["clusters"]
            checked += 1
            if clusters == expected:
                matched += 1
            elif len(mismatches) < 5:
                mismatches.append(
                    {"k": k, "generation": gen, "served": clusters, "oracle": expected}
                )
    finally:
        for oracle in oracles.values():
            oracle.close()
    return {
        "checked": checked,
        "matched": matched,
        "mismatched_repeats": mismatched_repeats,
        "mismatches": mismatches,
        "ok": checked == matched and mismatched_repeats == 0,
    }


def _latency_summary(values: list[float]) -> dict[str, Any]:
    if not values:
        return {"count": 0}
    arr = np.asarray(values, dtype=np.float64)
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


def summarize(
    profile: LoadProfile,
    schedule: list[_Op],
    elapsed_s: float,
    identity: dict[str, Any],
    service_stats: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The ``BENCH_serve_load.json`` payload for one run."""
    queries = [op for op in schedule if op.kind == "top_k"]
    writes = [op for op in schedule if op.kind == "insert"]
    completed = [op for op in schedule if op.status == 200]
    shed = [op for op in schedule if op.status == 429]
    errors = [op for op in schedule if op.status not in (200, 429)]
    offered = len(schedule)
    shed_rate = len(shed) / offered if offered else 0.0
    error_rate = len(errors) / offered if offered else 0.0
    gates = {
        "identity_ok": bool(identity["ok"]),
        "shed_rate_ok": shed_rate <= profile.max_shed_rate,
        "error_rate_ok": error_rate <= profile.max_error_rate,
    }
    gates["pass"] = all(gates.values())
    return {
        "bench_version": BENCH_VERSION,
        "profile": profile.to_dict(),
        "offered": {
            "requests": offered,
            "queries": len(queries),
            "writes": len(writes),
        },
        "completed": len(completed),
        "shed": len(shed),
        "errors": len(errors),
        "error_samples": [op.error for op in errors[:5]],
        "shed_rate": shed_rate,
        "error_rate": error_rate,
        "elapsed_s": elapsed_s,
        "throughput_rps": len(completed) / elapsed_s if elapsed_s > 0 else 0.0,
        "coalesced": sum(1 for op in queries if op.coalesced),
        "generations_seen": sorted(
            {op.generation for op in completed if op.generation >= 0}
        ),
        "latency_ms": _latency_summary([op.latency_ms for op in completed]),
        "latency_ms_queries": _latency_summary(
            [op.latency_ms for op in completed if op.kind == "top_k"]
        ),
        "latency_ms_writes": _latency_summary(
            [op.latency_ms for op in completed if op.kind == "insert"]
        ),
        "identity": identity,
        "gates": gates,
        "service_stats": service_stats or {},
    }


def render_markdown(summary: dict[str, Any]) -> str:
    """A ``BENCH_serve_load.json`` payload as a Markdown table (printed
    by ``repro loadtest`` / ``repro loadreport`` and appended to the CI
    step summary)."""
    lat = summary.get("latency_ms", {})
    offered = summary.get("offered", {})
    identity = summary.get("identity", {})
    gates = summary.get("gates", {})

    def ms(key: str) -> str:
        value = lat.get(key)
        return f"{value:.2f}" if isinstance(value, (int, float)) else "-"

    rows = [
        ("offered requests", f"{offered.get('requests', 0)} "
         f"({offered.get('queries', 0)} queries, {offered.get('writes', 0)} writes)"),
        ("completed", str(summary.get("completed", 0))),
        ("throughput (req/s)", f"{summary.get('throughput_rps', 0.0):.1f}"),
        ("latency p50 / p95 / p99 (ms)", f"{ms('p50')} / {ms('p95')} / {ms('p99')}"),
        ("shed rate", f"{summary.get('shed_rate', 0.0):.2%}"),
        ("error rate", f"{summary.get('error_rate', 0.0):.2%}"),
        ("coalesced queries", str(summary.get("coalesced", 0))),
        ("generations seen", ", ".join(
            str(g) for g in summary.get("generations_seen", [])) or "-"),
        ("identity checks", f"{identity.get('matched', 0)}/"
         f"{identity.get('checked', 0)} matched"),
        ("gates", "PASS" if gates.get("pass") else "**FAIL** " + ", ".join(
            name for name, ok in gates.items() if name != "pass" and not ok)),
    ]
    lines = ["| metric | value |", "| --- | --- |"]
    lines.extend(f"| {name} | {value} |" for name, value in rows)
    return "\n".join(lines)


async def run_loadtest(
    service: ResolverService,
    profile: LoadProfile,
    reserve: RecordStore | None = None,
) -> dict[str, Any]:
    """Drive one load run against a started (or startable) service.

    Starts the service if needed, fires the schedule, verifies response
    identity against per-generation oracles, and returns the summary
    payload.  The caller owns service shutdown.
    """
    started_here = service.port is None
    if started_here:
        await service.start()
    if service.port is None:
        raise ServiceError("service has no bound port")
    if profile.write_fraction > 0 and (reserve is None or len(reserve) == 0):
        raise ConfigurationError(
            "write_fraction > 0 requires a non-empty reserve store"
        )
    write_payloads: list[dict[str, Any]] = []
    if reserve is not None:
        for lo in range(0, len(reserve), profile.write_chunk):
            hi = min(lo + profile.write_chunk, len(reserve))
            write_payloads.append(store_columns_payload(reserve, lo, hi))
    schedule = build_schedule(profile, len(write_payloads))
    elapsed = await run_schedule(
        service.config.host, service.port, schedule, write_payloads, profile.timeout_s
    )
    identity = verify_identity(service, schedule)
    return summarize(profile, schedule, elapsed, identity, service.stats())
