"""Persistent index snapshots: freeze a prepared :class:`AdaptiveLSH`.

A snapshot captures everything ``_prepare()`` produces — the designed
``(w, z)`` sequence, calibrated cost model, every hash family's drawn
parameters and RNG stream position, and the signature-pool columns —
plus the store fingerprint and seed lineage needed to verify and
resume.  Restoring onto the same store yields a method whose
:meth:`~repro.core.adaptive.AdaptiveLSH.run` output is **bit-identical**
to the cold run the snapshot was captured from, while skipping design,
calibration, and all already-paid hashing.

Format: one compressed ``.npz``.  A ``header`` array holds the JSON
metadata (magic, version, schema/rule specs, config, design specs,
cost model, RNG states) encoded as UTF-8 bytes (the same convention as
dataset persistence in :mod:`repro.io`); every numeric payload —
signature columns, fill counts, family parameter arrays — is stored as
its own dtype-exact array entry.  Nested family states (e.g. a
mixture's children) reference their arrays through ``{"__array__":
key}`` placeholders in the header JSON.

Compatibility policy: ``SNAPSHOT_VERSION`` is bumped on any change to
the header schema or array layout; :meth:`IndexSnapshot.load` refuses
versions it does not know (no silent best-effort reads).  See
``docs/SERVING.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.adaptive import AdaptiveLSH
from ..core.config import AdaptiveConfig
from ..core.cost import CostModel
from ..errors import SnapshotError
from ..io import (
    pack_json_header,
    rule_from_spec,
    rule_to_spec,
    unpack_json_header,
)
from ..kernels import use_kernels
from ..lsh.design import (
    build_design_context,
    scheme_design_from_spec,
    scheme_design_to_spec,
)
from ..obs.observer import RunObserver
from ..records import RecordStore
from ..rngutil import rng_from_state, rng_state

#: File-format sentinel; a load that does not find it fails fast.
SNAPSHOT_MAGIC = "repro-index-snapshot"
#: Bumped on any incompatible change to the header or array layout.
SNAPSHOT_VERSION = 1


def _extract_arrays(
    value: Any, prefix: str, arrays: dict[str, np.ndarray]
) -> Any:
    """Replace every ndarray in a nested state tree with an
    ``{"__array__": key}`` placeholder, collecting the arrays."""
    if isinstance(value, np.ndarray):
        arrays[prefix] = value
        return {"__array__": prefix}
    if isinstance(value, dict):
        return {
            str(k): _extract_arrays(v, f"{prefix}.{k}", arrays)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [
            _extract_arrays(v, f"{prefix}.{i}", arrays)
            for i, v in enumerate(value)
        ]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _resolve_arrays(value: Any, arrays: dict[str, np.ndarray]) -> Any:
    """Inverse of :func:`_extract_arrays`."""
    if isinstance(value, dict):
        if set(value) == {"__array__"}:
            key = value["__array__"]
            try:
                return arrays[key]
            except KeyError:
                raise SnapshotError(
                    f"snapshot is missing array {key!r}"
                ) from None
        return {k: _resolve_arrays(v, arrays) for k, v in value.items()}
    if isinstance(value, list):
        return [_resolve_arrays(v, arrays) for v in value]
    return value


@dataclass
class IndexSnapshot:
    """A captured, serializable prepared state of an :class:`AdaptiveLSH`.

    ``header`` is the JSON-friendly metadata; ``arrays`` maps array
    keys (pool columns, family parameters) to dtype-exact ndarrays.
    """

    header: dict[str, Any]
    arrays: dict[str, np.ndarray]

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, method: AdaptiveLSH) -> IndexSnapshot:
        """Freeze ``method``'s prepared state (preparing it if needed)."""
        method.prepare()
        store = method.store
        arrays: dict[str, np.ndarray] = {}
        pools_meta: list[dict[str, Any]] = []
        leaves = [comp for branch in method._ctx.branches for comp in branch]
        for i, comp in enumerate(leaves):
            data, filled = comp.pool.export_columns()
            arrays[f"pool::{i}::data"] = data
            arrays[f"pool::{i}::filled"] = filled
            state = comp.pool.family.export_state()
            pools_meta.append(
                {
                    "name": comp.pool.name,
                    "state": _extract_arrays(state, f"state::{i}", arrays),
                }
            )
        header: dict[str, Any] = {
            "magic": SNAPSHOT_MAGIC,
            "version": SNAPSHOT_VERSION,
            "n_records": len(store),
            "store_fingerprint": store.content_fingerprint(),
            "schema": [
                {"name": f.name, "kind": f.kind.value} for f in store.schema
            ],
            "rule": rule_to_spec(method.rule),
            "config": dict(method.config.to_dict(), budgets=list(method.budgets)),
            "designs": [scheme_design_to_spec(d) for d in method._designs],
            "layouts": [fn.scheme.layout_spec() for fn in method._functions],
            "cost_model": method.cost_model.to_dict(),
            "rng": rng_state(method._rng),
            "pools": pools_meta,
        }
        return cls(header, arrays)

    # ------------------------------------------------------------------
    def save(self, path: Any) -> None:
        """Write the snapshot as one compressed ``.npz`` file."""
        np.savez_compressed(
            path, header=pack_json_header(self.header), **self.arrays
        )

    @classmethod
    def load(cls, path: Any) -> IndexSnapshot:
        """Read a snapshot written by :meth:`save` (dtype-exact)."""
        with np.load(path) as data:
            files = set(data.files)
            if "header" not in files:
                raise SnapshotError(f"{path!r} is not an index snapshot")
            try:
                header = unpack_json_header(data["header"])
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise SnapshotError(
                    f"{path!r} has a corrupt snapshot header: {exc}"
                ) from exc
            if header.get("magic") != SNAPSHOT_MAGIC:
                raise SnapshotError(
                    f"{path!r} is not an index snapshot "
                    f"(magic={header.get('magic')!r})"
                )
            version = header.get("version")
            if version != SNAPSHOT_VERSION:
                raise SnapshotError(
                    f"snapshot version {version!r} is not supported "
                    f"(this build reads version {SNAPSHOT_VERSION})"
                )
            arrays = {
                key: np.array(data[key]) for key in files if key != "header"
            }
        return cls(header, arrays)

    # ------------------------------------------------------------------
    def restore(
        self,
        store: RecordStore,
        n_jobs: int | None = None,
        observer: RunObserver | None = None,
        strict: bool = True,
        kernels: str | None = None,
    ) -> AdaptiveLSH:
        """Rebuild a warm-started :class:`AdaptiveLSH` over ``store``.

        With ``strict=True`` (default) the store must be byte-identical
        to the captured one.  ``strict=False`` additionally accepts a
        store *extended* past the captured records (same prefix):
        restored pool columns cover the prefix and new records hash
        lazily — the snapshot-then-extend serving path.

        ``n_jobs`` overrides the worker count and ``kernels`` the
        kernel backend; both are execution details (results are
        bit-identical either way) and are therefore never captured in
        the snapshot itself.
        """
        header = self.header
        schema_spec = [
            {"name": f.name, "kind": f.kind.value} for f in store.schema
        ]
        if schema_spec != header["schema"]:
            raise SnapshotError(
                f"store schema {schema_spec} does not match snapshot "
                f"schema {header['schema']}"
            )
        n = int(header["n_records"])
        fingerprint = header["store_fingerprint"]
        if strict:
            if len(store) != n or store.content_fingerprint() != fingerprint:
                raise SnapshotError(
                    "store content does not match the snapshot; pass "
                    "strict=False to restore onto an extended store"
                )
        else:
            if len(store) < n or store.content_fingerprint(limit=n) != fingerprint:
                raise SnapshotError(
                    "store is not an extension of the snapshot's store "
                    "(captured prefix differs)"
                )
        rule = rule_from_spec(header["rule"])
        cost_model = CostModel.from_dict(header["cost_model"])
        config = AdaptiveConfig.from_dict(
            header["config"],
            cost_model=cost_model,
            n_jobs=n_jobs,
            kernels=kernels,
        )
        method = AdaptiveLSH(store, rule, config=config, observer=observer)
        # Rebuilding the context draws nothing: families are constructed
        # with empty parameter arrays, then overwritten from the
        # snapshot (parameters + exact RNG stream positions).  Built
        # under the method's kernel selection so the rebuilt families
        # pin the same backend.
        with use_kernels(method.kernels):
            ctx = build_design_context(store, rule, seed=0)
        leaves = [comp for branch in ctx.branches for comp in branch]
        pools_meta = header["pools"]
        if len(leaves) != len(pools_meta):
            raise SnapshotError(
                f"snapshot has {len(pools_meta)} signature pools but the "
                f"rule produces {len(leaves)}"
            )
        for i, (comp, meta) in enumerate(zip(leaves, pools_meta)):
            if comp.pool.name != meta["name"]:
                raise SnapshotError(
                    f"pool order mismatch: expected {meta['name']!r}, "
                    f"built {comp.pool.name!r}"
                )
            comp.pool.family.import_state(
                _resolve_arrays(meta["state"], self.arrays)
            )
            try:
                data = self.arrays[f"pool::{i}::data"]
                filled = self.arrays[f"pool::{i}::filled"]
            except KeyError:
                raise SnapshotError(
                    f"snapshot is missing columns for pool {meta['name']!r}"
                ) from None
            comp.pool.import_columns(data, filled)
        designs = [
            scheme_design_from_spec(spec, ctx) for spec in header["designs"]
        ]
        method.adopt_prepared_state(
            ctx, designs, cost_model, rng=rng_from_state(header["rng"])
        )
        layouts = [fn.scheme.layout_spec() for fn in method._functions]
        if layouts != header["layouts"]:
            raise SnapshotError(
                "rebuilt scheme layout differs from the captured layout; "
                "the snapshot does not match this build"
            )
        return method
