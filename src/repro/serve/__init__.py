"""Serving layer: snapshots, sessions, and the sharded async service.

``IndexSnapshot`` freezes a prepared :class:`~repro.core.AdaptiveLSH`
(designs, cost model, family parameters, signature columns, RNG
lineage) into a versioned ``.npz``; ``ResolverSession`` owns a store
plus a warm method and answers repeated ``top_k`` queries with an LRU
and pool reuse; ``ResolverService`` shards a store across worker
processes behind an asyncio HTTP front-end with request batching,
admission control, and write rollover, configured by the frozen
``ServiceConfig``; :mod:`repro.serve.loadgen` is the open-loop load
harness that gates on response bit-identity against ``ShardOracle``.
See ``docs/SERVING.md``.
"""

from .config import WORKER_MODES, ServiceConfig
from .loadgen import LoadProfile, run_loadtest
from .service import ResolverService, ShardOracle
from .session import ResolverSession
from .sharding import ShardedIndex, merge_shard_top_k, shard_spans
from .snapshot import SNAPSHOT_MAGIC, SNAPSHOT_VERSION, IndexSnapshot

__all__ = [
    "IndexSnapshot",
    "LoadProfile",
    "ResolverService",
    "ResolverSession",
    "ServiceConfig",
    "ShardedIndex",
    "ShardOracle",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "WORKER_MODES",
    "merge_shard_top_k",
    "run_loadtest",
    "shard_spans",
]
