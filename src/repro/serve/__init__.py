"""Serving layer: persistent index snapshots and long-lived sessions.

``IndexSnapshot`` freezes a prepared :class:`~repro.core.AdaptiveLSH`
(designs, cost model, family parameters, signature columns, RNG
lineage) into a versioned ``.npz``; ``ResolverSession`` owns a store
plus a warm method and answers repeated ``top_k`` queries with an LRU
and pool reuse.  See ``docs/SERVING.md``.
"""

from .session import ResolverSession
from .snapshot import SNAPSHOT_MAGIC, SNAPSHOT_VERSION, IndexSnapshot

__all__ = [
    "IndexSnapshot",
    "ResolverSession",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
]
