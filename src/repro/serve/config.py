"""Frozen configuration for the sharded resolver service.

:class:`ServiceConfig` is the serving-side sibling of
:class:`~repro.core.config.AdaptiveConfig`: one immutable value holding
every knob of :class:`~repro.serve.service.ResolverService` — shard
count, worker mode, the batching window, admission control, and the
write-rollover threshold — so a service, its worker processes, and the
bit-identity oracle are all constructed from the same comparable value.

Determinism constraint: shard sessions must be reproducible in the
oracle (the load harness re-derives every shard in-process and demands
bit-identical responses), so the embedded adaptive config must use the
``analytic`` cost model — ``calibrate`` folds measured wall time into
the scheme design, which no replica could reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any

from ..core.config import AdaptiveConfig, config_with
from ..errors import ConfigurationError

#: Worker execution modes: ``process`` forks/spawns one worker process
#: per shard; ``inline`` runs shard sessions in threads of the serving
#: process (useful for tests and single-machine debugging).
WORKER_MODES = ("process", "inline")


@dataclass(frozen=True)
class ServiceConfig:
    """Every tuning knob of the resolver service, in one frozen value.

    Parameters
    ----------
    host, port:
        Listen address.  ``port=0`` binds an ephemeral port (the bound
        port is available as ``ResolverService.port`` after start).
    n_shards:
        Number of record-range shards; each holds one
        :class:`~repro.serve.ResolverSession` over a contiguous slice
        of the store.
    workers:
        ``"process"`` (one worker process per shard) or ``"inline"``
        (shard sessions in threads of the serving process).
    batch_window_ms:
        Same-``k`` queries arriving within this window coalesce into
        one shard broadcast (results are deterministic per
        ``(k, generation)``, so every waiter gets the same payload).
    max_inflight:
        Admission-control bound: requests admitted while this many are
        already in flight are shed with a 429-style response.
    shed_retry_after_s:
        ``Retry-After`` hint attached to shed responses.
    rollover_records:
        Buffered writes that trigger a background re-shard; until the
        new generation is warm, reads keep hitting the old shards.
    warm_k:
        Per-shard warm-up query depth run before a generation starts
        serving (0 skips the warm-up).
    seed:
        Base seed; shard ``i`` of generation ``g`` derives its session
        seed deterministically from ``(seed, g, i)``.
    worker_n_jobs:
        ``n_jobs`` for the session inside each shard worker (default 1:
        shard-level parallelism already uses one process per shard).
    spool_dir:
        When set, a service given a purely in-memory store writes it to
        an on-disk columnar layout (:mod:`repro.storage`) under this
        directory at start and serves from the memory-mapped copy; the
        spooled layout is service-owned, so generation rollovers append
        to it in place (O(pending) instead of O(n) concat copies) and
        shard workers receive :class:`~repro.parallel.sharing.
        DiskStoreRef` handles instead of pickled columns.  Stores that
        already carry a layout backing get all of this without
        spooling.  ``None`` (default) keeps the in-memory path.
    adaptive:
        The :class:`AdaptiveConfig` shard sessions are built from
        (``seed``/``n_jobs`` fields are overridden per shard).  Must
        use the ``analytic`` cost model.
    """

    host: str = "127.0.0.1"
    port: int = 0
    n_shards: int = 2
    workers: str = "process"
    batch_window_ms: float = 2.0
    max_inflight: int = 64
    shed_retry_after_s: float = 0.05
    rollover_records: int = 256
    warm_k: int = 0
    seed: int = 0
    worker_n_jobs: int = 1
    spool_dir: "str | None" = None
    adaptive: AdaptiveConfig = field(
        default_factory=lambda: AdaptiveConfig(cost_model="analytic")
    )

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1, got {self.n_shards}"
            )
        if self.workers not in WORKER_MODES:
            raise ConfigurationError(
                f"workers must be one of {WORKER_MODES}, got {self.workers!r}"
            )
        if self.batch_window_ms < 0:
            raise ConfigurationError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )
        if self.max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.shed_retry_after_s <= 0:
            raise ConfigurationError(
                f"shed_retry_after_s must be > 0, got {self.shed_retry_after_s}"
            )
        if self.rollover_records < 1:
            raise ConfigurationError(
                f"rollover_records must be >= 1, got {self.rollover_records}"
            )
        if self.warm_k < 0:
            raise ConfigurationError(f"warm_k must be >= 0, got {self.warm_k}")
        if self.port < 0:
            raise ConfigurationError(f"port must be >= 0, got {self.port}")
        if self.adaptive.cost_model != "analytic":
            raise ConfigurationError(
                "ServiceConfig requires adaptive.cost_model='analytic': "
                "calibrated cost models fold measured wall time into the "
                "design, which shard replicas and the bit-identity oracle "
                "cannot reproduce"
            )
        object.__setattr__(self, "n_shards", int(self.n_shards))
        object.__setattr__(self, "max_inflight", int(self.max_inflight))
        object.__setattr__(self, "rollover_records", int(self.rollover_records))
        object.__setattr__(self, "warm_k", int(self.warm_k))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "worker_n_jobs", int(self.worker_n_jobs))
        object.__setattr__(self, "batch_window_ms", float(self.batch_window_ms))
        if self.spool_dir is not None:
            object.__setattr__(self, "spool_dir", str(self.spool_dir))

    # ------------------------------------------------------------------
    def shard_seed(self, generation: int, shard_index: int) -> int:
        """Deterministic session seed for one shard of one generation.

        A pure function of ``(seed, generation, shard_index)`` so every
        replica — worker process, inline thread, or the in-process
        oracle — derives the identical adaptive method.
        """
        return self.seed + 1_000_003 * int(generation) + int(shard_index)

    def shard_adaptive(self, generation: int, shard_index: int) -> AdaptiveConfig:
        """The :class:`AdaptiveConfig` for one shard session."""
        return config_with(
            self.adaptive,
            seed=self.shard_seed(generation, shard_index),
            n_jobs=self.worker_n_jobs,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly view (the embedded adaptive config included)."""
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = value.to_dict() if f.name == "adaptive" else value
        return out
