"""A long-lived serving session over one store and one prepared method.

:class:`ResolverSession` is the serving-side counterpart of the
one-shot :func:`~repro.core.adaptive.adaptive_filter`: it owns a
:class:`~repro.records.RecordStore` plus one prepared (cold) or
restored (warm) :class:`~repro.core.adaptive.AdaptiveLSH`, and answers
repeated ``top_k`` queries against them.  Signature pools, key caches,
and the worker :class:`~repro.parallel.pool.ExecutionPool` all live for
the session, so every query after the first pays only its marginal
hashing.

Queries are memoized in a small LRU keyed by ``(k, store_version)``;
``insert_records``/``extend_store`` bump ``store_version`` (invalidating
the cache) and re-seat the warm pools onto the extended store through a
snapshot round-trip, after which queries refine coarse clusters through
a :class:`~repro.online.StreamingTopK` front-end (§9).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence
from typing import Any

from ..core.adaptive import AdaptiveLSH
from ..core.config import AdaptiveConfig
from ..core.result import FilterResult
from ..distance.rules import MatchRule
from ..errors import ConfigurationError
from ..obs import DISABLED, RunObserver
from ..obs.report import RunReport
from ..online.streaming import StreamingTopK
from ..records import RecordStore
from .snapshot import IndexSnapshot

#: Default number of memoized FilterResults per session.
DEFAULT_CACHE_SIZE = 8


class ResolverSession:
    """Long-lived top-k entity-resolution session.

    Parameters
    ----------
    store, rule:
        The dataset and match rule (cold start).  Alternatively pass a
        prepared ``method=`` — :meth:`from_snapshot` does — and omit
        ``rule``.
    config, observer:
        Forwarded to :class:`AdaptiveLSH` on a cold start.
    cache_size:
        Capacity of the per-session LRU of recent
        :class:`FilterResult`s, keyed by ``(k, store_version)``.
    """

    def __init__(
        self,
        store: RecordStore,
        rule: MatchRule | None = None,
        config: AdaptiveConfig | None = None,
        observer: RunObserver | None = None,
        method: AdaptiveLSH | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if method is not None:
            if config is not None:
                raise ConfigurationError(
                    "pass either method= or config= to ResolverSession, not both"
                )
            if method.store is not store:
                raise ConfigurationError(
                    "method= must wrap the same store passed to ResolverSession"
                )
            self._method = method
        else:
            if rule is None:
                raise ConfigurationError(
                    "ResolverSession needs a rule (or a prepared method=)"
                )
            self._method = AdaptiveLSH(
                store, rule, config=config, observer=observer
            )
        if cache_size < 1:
            raise ConfigurationError(
                f"cache_size must be >= 1, got {cache_size}"
            )
        self._store = store
        self.cache_size = int(cache_size)
        #: Bumped by every :meth:`extend_store`; part of the cache key.
        self.store_version = 0
        self._stream: StreamingTopK | None = None
        self._cache: OrderedDict[tuple[int, int], FilterResult] = OrderedDict()
        self._queries = 0
        self._cache_hits = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_snapshot(
        cls,
        snapshot: IndexSnapshot | Any,
        store: RecordStore,
        n_jobs: int | None = None,
        observer: RunObserver | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> ResolverSession:
        """Warm-start a session from an :class:`IndexSnapshot` or a path.

        The restored method skips design, calibration, and all
        already-captured hashing; its queries are bit-identical to the
        cold run the snapshot came from.
        """
        if not isinstance(snapshot, IndexSnapshot):
            snapshot = IndexSnapshot.load(snapshot)
        method = snapshot.restore(store, n_jobs=n_jobs, observer=observer)
        return cls(store, method=method, cache_size=cache_size)

    @classmethod
    def from_layout(
        cls,
        path: Any,
        rule: MatchRule | None = None,
        config: AdaptiveConfig | None = None,
        observer: RunObserver | None = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> ResolverSession:
        """Serve an on-disk columnar layout (:mod:`repro.storage`).

        The store is opened with ``mmap_mode="r"`` — columns fault in
        on first touch and the session never holds a private copy.
        ``rule`` may be omitted when the layout was written with a rule
        spec (dataset layouts are), in which case the stored rule is
        used.
        """
        from ..io import rule_from_spec
        from ..storage import StoreLayout

        layout = path if isinstance(path, StoreLayout) else StoreLayout(path)
        if rule is None:
            spec = layout.extras.get("rule")
            if not spec:
                raise ConfigurationError(
                    f"layout at {layout.path} stores no rule spec; pass rule="
                )
            rule = rule_from_spec(spec)
        return cls(
            layout.open(),
            rule,
            config=config,
            observer=observer,
            cache_size=cache_size,
        )

    # ------------------------------------------------------------------
    @property
    def store(self) -> RecordStore:
        """The current (possibly extended) record store."""
        return self._store

    @property
    def method(self) -> AdaptiveLSH:
        """The underlying adaptive method serving this session."""
        return self._method

    @property
    def warm_started(self) -> bool:
        """True when the current method was restored from a snapshot."""
        return self._method.warm_started

    @property
    def last_report(self) -> RunReport | None:
        """The :class:`RunReport` of the most recent uncached query."""
        return self._method.last_report

    def serving_stats(self) -> dict[str, Any]:
        """Session counters: queries answered, cache hits, warm/cold."""
        bin_index = self._method.bin_index
        return {
            "queries": self._queries,
            "cache_hits": self._cache_hits,
            "warm_start": self._method.warm_started,
            "store_version": self.store_version,
            "cached_results": len(self._cache),
            "bin_index": bin_index.stats() if bin_index is not None else None,
        }

    # ------------------------------------------------------------------
    def top_k(self, k: int) -> FilterResult:
        """The top-``k`` clusters of the current store.

        Results are served from the session LRU when the same ``k`` was
        already answered for the current ``store_version``; otherwise
        the query runs on the warm method (or, after a store extension,
        through the streaming refine front-end).
        """
        k = int(k)
        self._queries += 1
        key = (k, self.store_version)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache_hits += 1
            self._cache.move_to_end(key)
            cached.info["serving"] = self._serving_info(cache_hit=True)
            return cached
        if self._stream is not None:
            result = self._stream.top_k(k)
        else:
            result = self._method.run(k)
        result.info["serving"] = self._serving_info(cache_hit=False)
        report = self._method.last_report
        if report is not None:
            report.serving = dict(result.info["serving"])
        self._cache[key] = result
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return result

    def batch_top_k(self, ks: Sequence[int]) -> list[FilterResult]:
        """Answer several ``k`` values, returned in the requested order.

        Evaluation happens largest-``k`` first: deeper queries warm the
        pools past what shallower ones need, so the smaller ``k`` runs
        reuse a superset of the cached signatures.
        """
        order = sorted(range(len(ks)), key=lambda i: -int(ks[i]))
        results: dict[int, FilterResult] = {}
        for i in order:
            results[i] = self.top_k(int(ks[i]))
        return [results[i] for i in range(len(ks))]

    def _serving_info(self, cache_hit: bool) -> dict[str, Any]:
        stats = self.serving_stats()
        stats["cache_hit"] = cache_hit
        return stats

    # ------------------------------------------------------------------
    def insert_records(self, records: RecordStore | dict[str, Any]) -> None:
        """Append records (a store, or schema-shaped columns) and
        re-seat the warm index onto the extended store."""
        if not isinstance(records, RecordStore):
            records = RecordStore(self._store.schema, records)
        self.extend_store(records)

    def extend_store(self, new_records: RecordStore) -> None:
        """Append ``new_records`` to the store without losing warm state.

        The current prepared state is captured, the store is extended,
        and the snapshot is restored (``strict=False``) onto the
        extension — family parameters, designs, the cost model, and all
        existing signature columns carry over; only the new records
        hash lazily.  Queries then go through a
        :class:`~repro.online.StreamingTopK` front-end whose refine
        loop shares the restored pools.

        Streaming state is carried too: when the previous front-end ran
        on the ``H_1`` delta index, its partition and sorted bucket
        arrays transfer (:meth:`~repro.online.StreamingTopK.carry_state`)
        and only the *new* records are ingested — delta candidate pairs
        come from touched buckets instead of a full re-group.
        """
        if len(new_records) == 0:
            return
        snapshot = IndexSnapshot.capture(self._method)
        n_before = len(self._store)
        carry = self._stream.carry_state() if self._stream is not None else None
        extended = self._store.concat(new_records)
        observer = self._method.obs if self._method.obs is not DISABLED else None
        n_jobs = self._method.n_jobs
        pair_memo = self._method.pair_memo
        self._method.close()
        self._method = snapshot.restore(
            extended, n_jobs=n_jobs, observer=observer, strict=False
        )
        if pair_memo is not None:
            # Carry remembered pair verdicts across the re-seat: the old
            # store is a byte-identical prefix of the extension, so the
            # memo's re-bind keeps every verdict and later refines skip
            # re-verifying pairs this session already resolved.
            self._method.adopt_pair_memo(pair_memo)
        self._store = extended
        self.store_version += 1
        stream = StreamingTopK(extended, method=self._method, carry=carry)
        if stream.carried:
            stream.insert_many(extended.rids[n_before:])
        else:
            stream.insert_many(extended.rids)
        self._stream = stream

    # ------------------------------------------------------------------
    def snapshot(self, path: Any | None = None) -> IndexSnapshot:
        """Capture the session's current prepared state; write it to
        ``path`` when given."""
        snap = IndexSnapshot.capture(self._method)
        if path is not None:
            snap.save(path)
        return snap

    def close(self) -> None:
        """Shut down the method's worker pool (no-op when serial)."""
        self._method.close()

    def __enter__(self) -> ResolverSession:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
