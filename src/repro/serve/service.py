"""The sharded asynchronous resolver service.

:class:`ResolverService` is the layer that turns the reproduction into
a system: an :mod:`asyncio` HTTP front-end (plain ``asyncio.
start_server`` — no new dependencies) routing ``top_k`` /
``batch_top_k`` / ``insert_records`` requests to a pool of shard
workers, each holding one :class:`~repro.serve.ResolverSession` over a
contiguous record range of the store.

The serving path adds three production behaviours on top of the
sessions:

* **request batching** — same-``k`` queries arriving within
  ``batch_window_ms`` coalesce into one shard broadcast (responses are
  deterministic per ``(k, generation)``, so every waiter receives the
  identical payload);
* **admission control** — a bounded in-flight budget; excess query
  load is shed with a 429 response carrying ``Retry-After`` instead of
  queueing without bound;
* **write rollover** — ``insert_records`` buffers rows; once
  ``rollover_records`` accumulate, a background task re-shards the
  extended store into a new *generation* of workers and swaps it in
  atomically.  The old generation keeps serving until the new one is
  warm, then drains and stops.

Bit-identity contract: every shard replica — worker process, inline
thread, or the in-process :class:`ShardOracle` — derives its session
from the same ``(ServiceConfig, generation, shard_index)`` triple and
routes queries through :func:`~repro.serve.sharding.clamped_top_k` +
:func:`~repro.serve.sharding.merge_shard_top_k`, so a served response
that differs from the oracle is a serving-layer bug.  The load harness
(:mod:`repro.serve.loadgen`) gates on exactly this.

Wire protocol (``docs/SERVING.md`` has the full table)::

    GET  /healthz                          -> {"status": "ok", ...}
    GET  /stats                            -> serving counters
    POST /top_k          {"k": 5}          -> {"k", "clusters", ...}
    POST /batch_top_k    {"ks": [5, 10]}   -> {"results": [...]}
    POST /insert_records {"columns": ...}  -> {"accepted", "pending", ...}
    POST /rollover       {}                -> {"rolled": bool, ...}
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import multiprocessing
import queue
import threading
import time
import traceback
from typing import TYPE_CHECKING, Any

from ..core.config import AdaptiveConfig
from ..errors import ConfigurationError, ReproError, SchemaError, ServiceError
from ..io import rule_from_spec, rule_to_spec
from ..obs import RunObserver
from ..obs.report import RunReport
from ..parallel.pool import fork_available
from ..parallel.sharing import (
    DiskStoreRef,
    StorePayload,
    payload_from_store,
    ref_from_store,
    resolve_store_arg,
)
from ..records import RecordStore
from .config import ServiceConfig
from .session import ResolverSession
from .sharding import clamped_top_k, merge_shard_top_k, shard_response, shard_spans

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

    from ..distance.rules import MatchRule

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


# ----------------------------------------------------------------------
# Shard servers: one session over one record range, op-dict protocol.
# ----------------------------------------------------------------------
class _ShardServer:
    """Owns one shard's :class:`ResolverSession` and answers op dicts.

    Shared by every backend (worker process, inline thread, oracle), so
    the clamp/translate logic cannot drift between them.
    """

    def __init__(
        self,
        store: RecordStore,
        rule: MatchRule,
        adaptive: AdaptiveConfig,
        offset: int,
        warm_k: int,
    ) -> None:
        self.offset = int(offset)
        self.warm_k = int(warm_k)
        self.session = ResolverSession(store, rule, config=adaptive)

    def warm(self) -> dict[str, Any]:
        """Prepare the session (and optionally pre-run one query)."""
        if self.warm_k > 0:
            clamped_top_k(self.session, self.warm_k)
        else:
            self.session.method.prepare()
        return {"ready": True, "n_records": len(self.session.store)}

    def handle(self, op: dict[str, Any]) -> dict[str, Any]:
        kind = op.get("op")
        if kind == "ping":
            return {"ok": True}
        if kind == "warm":
            return self.warm()
        if kind == "top_k":
            result, effective = clamped_top_k(self.session, int(op["k"]))
            return shard_response(result, effective, self.offset)
        if kind == "stats":
            return dict(self.session.serving_stats())
        raise ServiceError(f"unknown shard op {kind!r}")

    def close(self) -> None:
        self.session.close()


def _build_shard_server(
    store: RecordStore | StorePayload | DiskStoreRef,
    rule_spec: dict[str, Any],
    adaptive_portable: dict[str, Any],
    seed: int,
    n_jobs: int,
    offset: int,
    warm_k: int,
) -> _ShardServer:
    """Rebuild a :class:`_ShardServer` from picklable parts (the worker
    process entry path; inline backends call it with live objects).

    The store arrives in whichever transferable shape the parent chose:
    a live :class:`RecordStore` (inline / fork copy-on-write), a
    :class:`StorePayload` of pickled columns (spawn fallback), or a
    :class:`DiskStoreRef` the worker resolves by memory-mapping the
    layout itself — zero column bytes on the pipe.
    """
    store = resolve_store_arg(store)
    adaptive = AdaptiveConfig.from_dict(
        adaptive_portable, cost_model="analytic", seed=seed, n_jobs=n_jobs
    )
    return _ShardServer(
        store, rule_from_spec(rule_spec), adaptive, offset, warm_k
    )


def _shard_process_main(
    conn: Connection,
    store: RecordStore | StorePayload | DiskStoreRef,
    rule_spec: dict[str, Any],
    adaptive_portable: dict[str, Any],
    seed: int,
    n_jobs: int,
    offset: int,
    warm_k: int,
) -> None:
    """Worker-process loop: build the shard server, answer ops until
    ``stop``.  Errors travel back as ``("error", traceback)`` tuples so
    the parent can re-raise without killing the worker."""
    try:
        server = _build_shard_server(
            store, rule_spec, adaptive_portable, seed, n_jobs, offset, warm_k
        )
    except BaseException:
        conn.send(("fatal", traceback.format_exc()))
        conn.close()
        return
    conn.send(("ok", {"built": True}))
    while True:
        try:
            op = conn.recv()
        except (EOFError, OSError):
            break
        if not isinstance(op, dict) or op.get("op") == "stop":
            conn.send(("ok", {"stopped": True}))
            break
        try:
            conn.send(("ok", server.handle(op)))
        except BaseException:
            conn.send(("error", traceback.format_exc()))
    server.close()
    conn.close()


class _InlineBackend:
    """Shard backend running the session inside the serving process."""

    def __init__(self, builder_args: tuple[Any, ...]) -> None:
        self._args = builder_args
        self._server: _ShardServer | None = None

    def start(self) -> None:
        self._server = _build_shard_server(*self._args)

    def request(self, op: dict[str, Any]) -> dict[str, Any]:
        if self._server is None:
            raise ServiceError("shard backend not started")
        return self._server.handle(op)

    def close(self) -> None:
        if self._server is not None:
            self._server.close()
            self._server = None


class _ProcessBackend:
    """Shard backend running the session in a dedicated worker process.

    Fork platforms pass the shard store by inheritance (copy-on-write,
    no serialization); spawn platforms ship a
    :class:`~repro.parallel.sharing.StorePayload` — the same lifecycle
    split as :class:`~repro.parallel.pool.ExecutionPool` workers.
    """

    def __init__(self, builder_args: tuple[Any, ...]) -> None:
        self._args = builder_args
        self._conn: Connection | None = None
        self._proc: multiprocessing.process.BaseProcess | None = None

    def start(self) -> None:
        if fork_available():
            ctx = multiprocessing.get_context("fork")
            args = self._args
        else:  # pragma: no cover - spawn platforms
            ctx = multiprocessing.get_context()
            store = self._args[0]
            if isinstance(store, RecordStore):
                # Disk-backed stores travel as a ref (no column bytes);
                # purely in-memory ones must be pickled as a payload.
                ref = ref_from_store(store)
                shipped = ref if ref is not None else payload_from_store(store)
                args = (shipped,) + self._args[1:]
            else:
                args = self._args
        parent_conn, child_conn = ctx.Pipe()
        self._proc = ctx.Process(
            target=_shard_process_main,
            args=(child_conn,) + args,
            daemon=True,
        )
        self._proc.start()
        child_conn.close()
        self._conn = parent_conn
        status, payload = parent_conn.recv()
        if status != "ok":
            raise ServiceError(f"shard worker failed to build:\n{payload}")

    def request(self, op: dict[str, Any]) -> dict[str, Any]:
        if self._conn is None:
            raise ServiceError("shard backend not started")
        try:
            self._conn.send(op)
            status, payload = self._conn.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise ServiceError(f"shard worker died: {exc}") from exc
        if status != "ok":
            raise ServiceError(f"shard worker error:\n{payload}")
        out: dict[str, Any] = payload
        return out

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.send({"op": "stop"})
                self._conn.recv()
            except (EOFError, OSError, BrokenPipeError):
                pass
            self._conn.close()
            self._conn = None
        if self._proc is not None:
            self._proc.join(timeout=10)
            if self._proc.is_alive():  # pragma: no cover - hung worker
                self._proc.terminate()
                self._proc.join(timeout=5)
            self._proc = None


_STOP = object()


class _ShardHandle:
    """Thread-bridged handle over one shard backend.

    Each handle owns a dispatcher thread draining a FIFO of
    ``(op, Future)`` pairs, so a shard processes one request at a time
    (a session is single-threaded state) while the asyncio front-end
    awaits many shards concurrently via ``asyncio.wrap_future``.
    """

    def __init__(self, backend: _InlineBackend | _ProcessBackend, name: str) -> None:
        self._backend = backend
        self._queue: queue.Queue[Any] = queue.Queue()
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )
        self._started = False

    def start(self) -> None:
        self._thread.start()
        self._started = True

    def _run(self) -> None:
        start_error: BaseException | None = None
        try:
            self._backend.start()
        except BaseException as exc:  # surfaced via every queued future
            start_error = exc
        while True:
            item = self._queue.get()
            if item is _STOP:
                break
            op, fut = item
            if not fut.set_running_or_notify_cancel():
                continue
            if start_error is not None:
                fut.set_exception(start_error)
                continue
            try:
                fut.set_result(self._backend.request(op))
            except BaseException as exc:
                fut.set_exception(exc)
        self._backend.close()

    def submit(
        self, op: dict[str, Any]
    ) -> concurrent.futures.Future[dict[str, Any]]:
        """Enqueue one op; returns a ``concurrent.futures.Future``."""
        fut: concurrent.futures.Future[dict[str, Any]] = (
            concurrent.futures.Future()
        )
        self._queue.put((op, fut))
        return fut

    def close(self) -> None:
        """Drain queued work, stop the backend, join the thread."""
        if not self._started:
            self._backend.close()
            return
        self._queue.put(_STOP)
        self._thread.join(timeout=60)


# ----------------------------------------------------------------------
# Oracle: the bit-identity reference for served responses.
# ----------------------------------------------------------------------
class ShardOracle:
    """Direct in-process replica of one service generation.

    Builds the same per-shard sessions from the same
    ``(ServiceConfig, generation, shard_index)`` seeds and merges
    through the same pure functions — but bypasses HTTP, batching,
    admission control, and worker processes entirely.  A served
    ``top_k`` response must match :meth:`top_k` bit-for-bit on the
    ``clusters`` payload; the load harness gates on this.
    """

    def __init__(
        self,
        store: RecordStore,
        rule: MatchRule,
        config: ServiceConfig,
        generation: int,
    ) -> None:
        self.generation = int(generation)
        self.spans = shard_spans(len(store), config.n_shards)
        self._servers = [
            _ShardServer(
                store.slice_view(lo, hi),
                rule,
                config.shard_adaptive(generation, i),
                offset=lo,
                warm_k=0,
            )
            for i, (lo, hi) in enumerate(self.spans)
        ]

    def top_k(self, k: int) -> dict[str, Any]:
        """The merged top-``k`` response this generation must serve."""
        results = [
            server.handle({"op": "top_k", "k": int(k)})
            for server in self._servers
        ]
        merged = merge_shard_top_k(results, int(k))
        merged["k"] = int(k)
        merged["generation"] = self.generation
        return merged

    def close(self) -> None:
        for server in self._servers:
            server.close()

    def __enter__(self) -> ShardOracle:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# The service.
# ----------------------------------------------------------------------
class ResolverService:
    """Sharded async top-k resolver over one store and one match rule.

    Parameters
    ----------
    store, rule:
        The dataset to serve and its match rule.
    config:
        :class:`~repro.serve.ServiceConfig`; defaults are smoke-scale.
    observer:
        Optional :class:`~repro.obs.RunObserver`.  The service always
        keeps its own enabled observer for ``/stats`` and
        :meth:`run_report`; passing one here shares yours instead.
    """

    def __init__(
        self,
        store: RecordStore,
        rule: MatchRule,
        config: ServiceConfig | None = None,
        observer: RunObserver | None = None,
    ) -> None:
        if len(store) == 0:
            raise ConfigurationError("cannot serve an empty store")
        self.rule = rule
        self.config = config if config is not None else ServiceConfig()
        self.obs = observer if observer is not None else RunObserver()
        #: Bound port after :meth:`start` (== config.port unless 0).
        self.port: int | None = None
        self._started_at: float | None = None
        #: (generation, handles) swapped atomically on rollover.
        self._current: tuple[int, list[_ShardHandle]] = (0, [])
        #: generation -> full store of that generation.
        self._generations: dict[int, RecordStore] = {0: store}
        self._server: asyncio.AbstractServer | None = None
        self._pending_stores: list[RecordStore] = []
        self._pending_records = 0
        self._rollover_task: asyncio.Task[None] | None = None
        self._batches: dict[tuple[int, int], asyncio.Future[dict[str, Any]]] = {}
        self._inflight = 0
        self._counts = {
            "requests": 0,
            "queries": 0,
            "inserts": 0,
            "shed": 0,
            "errors": 0,
            "batches": 0,
            "coalesced": 0,
            "rollovers": 0,
            "store_pickle_bytes": 0,
        }
        self._spool_seq = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """The generation currently serving reads."""
        return self._current[0]

    def current_store(self) -> RecordStore:
        """The store backing the serving generation (extensions land
        only after their rollover completes)."""
        return self._generations[self.generation]

    async def start(self) -> None:
        """Build + warm generation 0 and start accepting connections."""
        if self._server is not None:
            raise ServiceError("service already started")
        with self.obs.span("service.start", n_shards=self.config.n_shards):
            if (
                self.config.spool_dir is not None
                and self._generations[0].backing is None
            ):
                self._generations[0] = await asyncio.to_thread(
                    self._spool_store, self._generations[0], 0
                )
            handles = await asyncio.to_thread(
                self._start_generation, self._generations[0], 0
            )
            self._current = (0, handles)
            self._server = await asyncio.start_server(
                self._handle_conn, host=self.config.host, port=self.config.port
            )
        sockets = self._server.sockets
        self.port = int(sockets[0].getsockname()[1]) if sockets else None
        self._started_at = time.perf_counter()

    async def stop(self) -> None:
        """Stop accepting connections, then drain and stop every shard."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        task = self._rollover_task
        if task is not None and not task.done():
            await task
        _gen, handles = self._current
        await asyncio.to_thread(self._close_handles, handles)
        self._current = (self.generation, [])

    async def __aenter__(self) -> ResolverService:
        await self.start()
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.stop()

    def _start_generation(
        self, store: RecordStore, generation: int
    ) -> list[_ShardHandle]:
        """Build, start, and warm one generation's shard handles.

        Runs in a worker thread (``asyncio.to_thread``): starting a
        process and cold-preparing a session both block.  Shards warm
        concurrently — each handle's dispatcher thread (or worker
        process) prepares its own session.
        """
        spans = shard_spans(len(store), self.config.n_shards)
        handles: list[_ShardHandle] = []
        for i, (lo, hi) in enumerate(spans):
            # Zero-copy window; with an on-disk backing it also carries
            # the (path, version, lo, hi) needed to ship a ref.
            shard_store = store.slice_view(lo, hi)
            shipped: RecordStore | StorePayload | DiskStoreRef = shard_store
            if self.config.workers == "process":
                ref = ref_from_store(shard_store)
                if ref is not None:
                    # Disk-backed: the worker mmaps the layout itself.
                    shipped = ref
                elif not fork_available():  # pragma: no cover - spawn
                    payload = payload_from_store(shard_store)
                    self._count("store_pickle_bytes", payload.nbytes)
                    shipped = payload
                # fork: inherited copy-on-write, nothing serialized.
            builder_args = (
                shipped,
                rule_to_spec(self.rule),
                self.config.adaptive.to_dict(),
                self.config.shard_seed(generation, i),
                self.config.worker_n_jobs,
                lo,
                self.config.warm_k,
            )
            backend: _InlineBackend | _ProcessBackend
            if self.config.workers == "process":
                backend = _ProcessBackend(builder_args)
            else:
                backend = _InlineBackend(builder_args)
            handle = _ShardHandle(backend, name=f"shard-g{generation}-{i}")
            handle.start()
            handles.append(handle)
        warm_futures = [h.submit({"op": "warm"}) for h in handles]
        try:
            for fut in warm_futures:
                fut.result()
        except BaseException:
            self._close_handles(handles)
            raise
        return handles

    @staticmethod
    def _close_handles(handles: list[_ShardHandle]) -> None:
        for handle in handles:
            handle.close()

    def _spool_store(self, store: RecordStore, generation: int) -> RecordStore:
        """Write an in-memory store to a service-owned layout under
        ``config.spool_dir`` and return the memory-mapped reopen."""
        import os

        from ..storage import StoreLayout

        assert self.config.spool_dir is not None
        os.makedirs(self.config.spool_dir, exist_ok=True)
        self._spool_seq += 1
        path = os.path.join(
            self.config.spool_dir,
            f"spool-{os.getpid()}-{id(self):x}-{self._spool_seq}.store",
        )
        return StoreLayout.write(store, path).open()

    def _extended_store(
        self, base: RecordStore, pending: list[RecordStore], generation: int
    ) -> RecordStore:
        """``base`` plus the buffered writes, as the next generation's
        store.

        When ``base`` is the full current view of an on-disk layout
        (and the layout carries no ground-truth labels column), the
        pending rows are *appended to the layout in place* and the
        result is a fresh mmap open — O(pending) I/O, zero copies of
        the existing rows, and old-generation shards keep serving their
        shorter prefix because layouts are append-only.  Anything else
        falls back to the in-memory concat (then spools the result when
        ``spool_dir`` is set, so the *next* rollover takes the fast
        path).
        """
        backing = base.backing
        if backing is not None and backing.lo == 0:
            from ..storage import StoreLayout

            layout = StoreLayout(backing.path)
            if (
                layout.store_version == backing.store_version
                and layout.n == backing.hi
                and not layout.header.get("with_labels")
            ):
                for chunk in pending:
                    layout.append(chunk)
                return layout.open()
        store = base
        for chunk in pending:
            store = store.concat(chunk)
        if self.config.spool_dir is not None:
            store = self._spool_store(store, generation)
        return store

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        self._counts[name] += n
        self.obs.counter(f"serve.{name}").inc(n)

    def stats(self) -> dict[str, Any]:
        """Serving counters + the latency histogram summary."""
        gen, handles = self._current
        latency = self.obs.metrics.histogram("serve.latency_ms")
        out: dict[str, Any] = dict(self._counts)
        out.update(
            {
                "generation": gen,
                "n_shards": len(handles),
                "n_records": len(self.current_store()),
                "workers": self.config.workers,
                "store_backed": self.current_store().backing is not None,
                "inflight": self._inflight,
                "pending_writes": self._pending_records,
                "latency_ms": latency.to_value()
                if hasattr(latency, "to_value")
                else {},
            }
        )
        if self._started_at is not None:
            out["uptime_s"] = time.perf_counter() - self._started_at
        return out

    def run_report(self) -> RunReport:
        """The service lifetime as a :class:`RunReport` (``serving``
        section = :meth:`stats`; latency histograms under metrics)."""
        wall = (
            time.perf_counter() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        report = self.obs.build_report(
            method="service:resolver", k=0, wall_time=wall
        )
        report.serving = self.stats()
        return report

    def build_oracle(self, generation: int | None = None) -> ShardOracle:
        """A :class:`ShardOracle` replica of one generation (default:
        the serving one)."""
        gen = self.generation if generation is None else int(generation)
        if gen not in self._generations:
            raise ServiceError(f"unknown generation {gen}")
        return ShardOracle(self._generations[gen], self.rule, self.config, gen)

    # ------------------------------------------------------------------
    # query path
    # ------------------------------------------------------------------
    async def top_k(self, k: int) -> dict[str, Any]:
        """The merged top-``k`` response (coalesced; no admission)."""
        response, _coalesced = await self._coalesced_top_k(int(k))
        return response

    async def _broadcast_top_k(self, k: int) -> dict[str, Any]:
        gen, handles = self._current
        if not handles:
            raise ServiceError("service is not serving")
        futures = [
            asyncio.wrap_future(handle.submit({"op": "top_k", "k": k}))
            for handle in handles
        ]
        shard_results = list(await asyncio.gather(*futures))
        merged = merge_shard_top_k(shard_results, k)
        merged["k"] = k
        merged["generation"] = gen
        return merged

    async def _coalesced_top_k(self, k: int) -> tuple[dict[str, Any], bool]:
        key = (k, self.generation)
        existing = self._batches.get(key)
        if existing is not None and not existing.done():
            self._count("coalesced")
            return await asyncio.shield(existing), True
        loop = asyncio.get_running_loop()
        fut: asyncio.Future[dict[str, Any]] = loop.create_future()
        self._batches[key] = fut
        self._count("batches")
        try:
            window = self.config.batch_window_ms / 1000.0
            if window > 0:
                await asyncio.sleep(window)
            result = await self._broadcast_top_k(k)
            fut.set_result(result)
            return result, False
        except BaseException as exc:
            fut.set_exception(exc)
            # Followers consume the exception; the leader re-raises it.
            await asyncio.sleep(0)
            if not fut.cancelled():
                fut.exception()
            raise
        finally:
            if self._batches.get(key) is fut:
                del self._batches[key]

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def _buffer_insert(self, records: RecordStore) -> dict[str, Any]:
        self._pending_stores.append(records)
        self._pending_records += len(records)
        scheduled = self._maybe_schedule_rollover()
        return {
            "accepted": len(records),
            "pending": self._pending_records,
            "generation": self.generation,
            "rollover_scheduled": scheduled,
        }

    def _maybe_schedule_rollover(self, force: bool = False) -> bool:
        due = force or self._pending_records >= self.config.rollover_records
        if not due or self._pending_records == 0:
            return False
        if self._rollover_task is not None and not self._rollover_task.done():
            return True  # the running task loops until the buffer drains
        self._rollover_task = asyncio.get_running_loop().create_task(
            self._rollover_loop(force)
        )
        return True

    async def _rollover_loop(self, force: bool) -> None:
        """Re-shard buffered writes into new generations until the
        buffer is (sufficiently) drained.  One instance runs at a time."""
        while self._pending_records > 0 and (
            force or self._pending_records >= self.config.rollover_records
        ):
            force = False
            with self.obs.span("service.rollover"):
                pending = self._pending_stores
                self._pending_stores = []
                self._pending_records = 0
                gen, old_handles = self._current
                new_gen = gen + 1
                # Extend (layout append or concat fallback), then build
                # + warm the new generation — all off-loop; reads keep
                # hitting the old handles the whole time.
                new_store = await asyncio.to_thread(
                    self._extended_store,
                    self._generations[gen],
                    pending,
                    new_gen,
                )
                handles = await asyncio.to_thread(
                    self._start_generation, new_store, new_gen
                )
                self._generations[new_gen] = new_store
                self._current = (new_gen, handles)
                self._count("rollovers")
                # Old generation: drain queued work, then stop.
                await asyncio.to_thread(self._close_handles, old_handles)

    # ------------------------------------------------------------------
    # HTTP front-end
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await _read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                started = time.perf_counter()
                status, payload, extra = await self._dispatch(
                    method, path, body
                )
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                self.obs.histogram("serve.latency_ms").observe(elapsed_ms)
                self.obs.histogram(f"serve.latency_ms.{path.lstrip('/')}")\
                    .observe(elapsed_ms)
                _write_response(writer, status, payload, extra)
                await writer.drain()
                if headers.get("connection", "").lower() == "close":
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        self._count("requests")
        try:
            if method == "GET" and path == "/healthz":
                gen, handles = self._current
                return (
                    200,
                    {
                        "status": "ok",
                        "generation": gen,
                        "n_shards": len(handles),
                        "n_records": len(self.current_store()),
                    },
                    {},
                )
            if method == "GET" and path == "/stats":
                return 200, self.stats(), {}
            if method != "POST":
                return 405, {"error": f"{method} not allowed"}, {}
            if path in ("/top_k", "/batch_top_k"):
                return await self._dispatch_query(path, _parse_body(body))
            if path == "/insert_records":
                return self._dispatch_insert(_parse_body(body))
            if path == "/rollover":
                scheduled = self._maybe_schedule_rollover(force=True)
                return (
                    200,
                    {
                        "rolled": scheduled,
                        "pending": self._pending_records,
                        "generation": self.generation,
                    },
                    {},
                )
            return 404, {"error": f"unknown endpoint {path}"}, {}
        except (ServiceError, ReproError, ValueError, KeyError, TypeError) as exc:
            self._count("errors")
            return 400, {"error": f"{type(exc).__name__}: {exc}"}, {}
        except Exception as exc:  # pragma: no cover - defensive
            self._count("errors")
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, {}

    async def _dispatch_query(
        self, path: str, payload: dict[str, Any]
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        if self._inflight >= self.config.max_inflight:
            self._count("shed")
            retry = self.config.shed_retry_after_s
            return (
                429,
                {"error": "overloaded", "retry_after_s": retry},
                {"Retry-After": f"{retry:.3f}"},
            )
        self._inflight += 1
        self._count("queries")
        try:
            if path == "/top_k":
                k = int(payload["k"])
                if k < 1:
                    raise ServiceError(f"k must be >= 1, got {k}")
                response, coalesced = await self._coalesced_top_k(k)
                out = dict(response)
                out["coalesced"] = coalesced
                return 200, out, {}
            ks = [int(k) for k in payload["ks"]]
            if not ks or any(k < 1 for k in ks):
                raise ServiceError(f"ks must be >= 1 values, got {ks}")
            # Largest-k first warms shard pools past what the shallower
            # queries need (same policy as ResolverSession.batch_top_k);
            # results return in the requested order.
            results: dict[int, dict[str, Any]] = {}
            for i in sorted(range(len(ks)), key=lambda i: -ks[i]):
                response, _ = await self._coalesced_top_k(ks[i])
                results[i] = response
            return 200, {"results": [results[i] for i in range(len(ks))]}, {}
        finally:
            self._inflight -= 1

    def _dispatch_insert(
        self, payload: dict[str, Any]
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        columns = payload.get("columns")
        if not isinstance(columns, dict):
            raise ServiceError('insert_records expects {"columns": {...}}')
        schema = self.current_store().schema
        try:
            records = RecordStore(schema, columns)
        except SchemaError as exc:
            raise ServiceError(f"bad insert payload: {exc}") from exc
        self._count("inserts")
        return 200, self._buffer_insert(records), {}


# ----------------------------------------------------------------------
# Minimal HTTP/1.1 plumbing (requests are tiny JSON bodies).
# ----------------------------------------------------------------------
def _parse_body(body: bytes) -> dict[str, Any]:
    if not body:
        return {}
    try:
        payload = json.loads(body.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ServiceError(f"request body is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ServiceError("request body must be a JSON object")
    return payload


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """One HTTP/1.1 request as ``(method, path, headers, body)``;
    ``None`` on a cleanly closed connection."""
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ServiceError(f"malformed request line: {line!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    body = await reader.readexactly(length) if length > 0 else b""
    path = target.split("?", 1)[0]
    return method.upper(), path, headers, body


def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict[str, Any],
    extra_headers: dict[str, str] | None = None,
) -> None:
    body = json.dumps(payload).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    writer.write(head + body)
