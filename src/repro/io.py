"""Persistence: serialize match rules and datasets.

Rules round-trip through plain dict specs (JSON-friendly); datasets go
to a single compressed ``.npz`` holding the columns, labels, rule spec,
and metadata.  Useful for sharing generated benchmarks and for
pipelines that separate data preparation from filtering.
"""

from __future__ import annotations

import json

import numpy as np

from .datasets.base import Dataset
from .distance import (
    AndRule,
    CosineDistance,
    EuclideanDistance,
    JaccardDistance,
    MatchRule,
    OrRule,
    ThresholdRule,
    WeightedAverageRule,
)
from .errors import ConfigurationError
from .records import FieldKind, FieldSpec, RecordStore, Schema

# ----------------------------------------------------------------------
# JSON-in-npz headers
# ----------------------------------------------------------------------
def pack_json_header(header: dict) -> np.ndarray:
    """Encode a JSON-serializable dict as a uint8 array for ``.npz``.

    Shared by dataset persistence and index snapshots: ``np.savez``
    only stores arrays, so structured metadata rides along as the raw
    UTF-8 bytes of its JSON encoding.
    """
    return np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8)


def unpack_json_header(data: np.ndarray) -> dict:
    """Decode :func:`pack_json_header` output back into a dict."""
    decoded = json.loads(bytes(data).decode("utf-8"))
    if not isinstance(decoded, dict):
        raise ConfigurationError("header array does not decode to a JSON object")
    return decoded


# ----------------------------------------------------------------------
# rule specs
# ----------------------------------------------------------------------
def distance_to_spec(distance) -> dict:
    """Dict spec of a field distance."""
    if isinstance(distance, CosineDistance):
        return {"kind": "cosine", "field": distance.field}
    if isinstance(distance, JaccardDistance):
        spec = {"kind": "jaccard", "field": distance.field}
        if distance.minhash_bits is not None:
            spec["minhash_bits"] = distance.minhash_bits
        return spec
    if isinstance(distance, EuclideanDistance):
        return {
            "kind": "euclidean",
            "field": distance.field,
            "scale": distance.scale,
            "bucket_width": distance.bucket_width,
        }
    raise ConfigurationError(f"cannot serialize distance {distance!r}")


def distance_from_spec(spec: dict):
    kind = spec.get("kind")
    if kind == "cosine":
        return CosineDistance(spec["field"])
    if kind == "jaccard":
        return JaccardDistance(spec["field"], minhash_bits=spec.get("minhash_bits"))
    if kind == "euclidean":
        return EuclideanDistance(
            spec["field"], scale=spec["scale"], bucket_width=spec["bucket_width"]
        )
    raise ConfigurationError(f"unknown distance kind {kind!r}")


def rule_to_spec(rule: MatchRule) -> dict:
    """Dict spec of a match-rule tree (JSON-serializable)."""
    if isinstance(rule, ThresholdRule):
        return {
            "kind": "threshold",
            "distance": distance_to_spec(rule.distance),
            "threshold": rule.threshold,
        }
    if isinstance(rule, WeightedAverageRule):
        return {
            "kind": "weighted_average",
            "distances": [distance_to_spec(d) for d in rule.distances],
            "weights": rule.weights.tolist(),
            "threshold": rule.threshold,
        }
    if isinstance(rule, AndRule):
        return {"kind": "and", "children": [rule_to_spec(c) for c in rule.children]}
    if isinstance(rule, OrRule):
        return {"kind": "or", "children": [rule_to_spec(c) for c in rule.children]}
    raise ConfigurationError(f"cannot serialize rule {rule!r}")


def rule_from_spec(spec: dict) -> MatchRule:
    """Rebuild a match rule from :func:`rule_to_spec` output."""
    kind = spec.get("kind")
    if kind == "threshold":
        return ThresholdRule(
            distance_from_spec(spec["distance"]), spec["threshold"]
        )
    if kind == "weighted_average":
        return WeightedAverageRule(
            [distance_from_spec(d) for d in spec["distances"]],
            weights=spec["weights"],
            threshold=spec["threshold"],
        )
    if kind == "and":
        return AndRule([rule_from_spec(c) for c in spec["children"]])
    if kind == "or":
        return OrRule([rule_from_spec(c) for c in spec["children"]])
    raise ConfigurationError(f"unknown rule kind {kind!r}")


# ----------------------------------------------------------------------
# dataset persistence
# ----------------------------------------------------------------------
def save_dataset(dataset: Dataset, path) -> None:
    """Write a dataset to a compressed ``.npz`` file.

    The ``info`` dict is stored as JSON where possible; non-serializable
    entries (e.g. the Cora raw-string previews) are dropped.
    """
    arrays: dict = {"labels": dataset.labels}
    schema_spec = []
    for field in dataset.store.schema:
        schema_spec.append({"name": field.name, "kind": field.kind.value})
        if field.kind is FieldKind.VECTOR:
            arrays[f"vec::{field.name}"] = dataset.store.vectors(field.name)
        else:
            # Columnar store → two flat arrays, no per-record loop.
            column = dataset.store.shingle_sets(field.name)
            arrays[f"shingles::{field.name}::flat"] = column.flat
            arrays[f"shingles::{field.name}::lengths"] = np.ascontiguousarray(
                column.sizes()
            )
    info = {}
    for key, value in dataset.info.items():
        try:
            json.dumps(value)
        except TypeError:
            continue
        info[key] = value
    header = {
        "name": dataset.name,
        "schema": schema_spec,
        "rule": rule_to_spec(dataset.rule),
        "info": info,
    }
    arrays["header"] = pack_json_header(header)
    np.savez_compressed(path, **arrays)


def load_dataset(path) -> Dataset:
    """Load a dataset written by :func:`save_dataset`."""
    with np.load(path) as data:
        header = unpack_json_header(data["header"])
        columns: dict = {}
        specs = []
        for field in header["schema"]:
            kind = FieldKind(field["kind"])
            specs.append(FieldSpec(field["name"], kind))
            if kind is FieldKind.VECTOR:
                columns[field["name"]] = data[f"vec::{field['name']}"]
            else:
                flat = np.asarray(
                    data[f"shingles::{field['name']}::flat"], dtype=np.int64
                )
                lengths = np.asarray(
                    data[f"shingles::{field['name']}::lengths"], dtype=np.int64
                )
                # Rebuild the CSR column directly — the saved arrays
                # came from a validated store, no np.split row lists.
                offsets = np.zeros(lengths.size + 1, dtype=np.int64)
                np.cumsum(lengths, out=offsets[1:])
                columns[field["name"]] = (offsets, flat)
        store = RecordStore(Schema(tuple(specs)), columns)
        return Dataset(
            name=header["name"],
            store=store,
            labels=data["labels"],
            rule=rule_from_spec(header["rule"]),
            info=header["info"],
        )
