"""Structured run reports: one JSON document per filtering run.

A :class:`RunReport` captures everything a scaling PR needs to prove a
speedup claim about one adaLSH run:

* per-round :class:`RoundEvent` records (action, cluster size, source
  level, wall-time, cost-model prediction);
* the work counters (hashes, pairs charged vs. compared, rounds);
* the metrics-registry snapshot and the span tree;
* the cost model used, plus prediction-vs-actual residuals aggregated
  per action kind.

Reports serialize losslessly to JSON (:meth:`RunReport.to_json` /
:meth:`RunReport.from_json`) and render as a human-readable table
(:meth:`RunReport.to_table`, also exposed as ``python -m repro
metrics``).
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

#: Schema version stamped into every serialized report.
#: Version 2 added the ``serving`` section (warm/cold start, session
#: cache hits); version-1 documents load fine — the section defaults
#: to empty.
REPORT_VERSION = 2


@dataclass
class RoundEvent:
    """One Largest-First round: which action ran on which cluster.

    ``predicted_cost`` is the cost model's estimate for the chosen
    action (model units — seconds for calibrated models); ``wall_time``
    is the measured execution time of that action.
    """

    round: int
    action: str
    size: int
    from_level: int
    subclusters: int
    largest_out: int
    wall_time: float = 0.0
    predicted_cost: float = 0.0
    jump: bool = False

    def legacy_dict(self) -> dict[str, Any]:
        """The pre-observability ``AdaptiveLSH.trace`` entry schema."""
        return {
            "round": self.round,
            "action": self.action,
            "size": self.size,
            "from_level": self.from_level,
            "subclusters": self.subclusters,
            "largest_out": self.largest_out,
        }


def cost_residuals(rounds: Iterable[RoundEvent]) -> dict[str, Any]:
    """Aggregate prediction-vs-actual per action kind (hash / pairwise).

    ``residual`` is ``actual - predicted`` wall-time in seconds (only
    meaningful for calibrated cost models, whose unit is seconds);
    ``ratio`` is ``actual / predicted`` and is unit-free, so it is
    comparable across analytic and calibrated models.
    """
    out: dict[str, dict[str, Any]] = {}
    for event in rounds:
        kind = "pairwise" if event.jump else "hash"
        agg = out.setdefault(
            kind,
            {"rounds": 0, "predicted_total": 0.0, "actual_total": 0.0},
        )
        agg["rounds"] += 1
        agg["predicted_total"] += float(event.predicted_cost)
        agg["actual_total"] += float(event.wall_time)
    for agg in out.values():
        agg["residual"] = agg["actual_total"] - agg["predicted_total"]
        agg["ratio"] = (
            agg["actual_total"] / agg["predicted_total"]
            if agg["predicted_total"] > 0.0
            else None
        )
    return out


@dataclass
class RunReport:
    """Serializable record of one filtering run."""

    method: str
    k: int
    wall_time: float
    rounds: list[RoundEvent] = field(default_factory=list)
    counters: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    spans: list[dict[str, Any]] = field(default_factory=list)
    cost_model: dict[str, Any] = field(default_factory=dict)
    residuals: dict[str, Any] = field(default_factory=dict)
    hash_pools: list[dict[str, Any]] = field(default_factory=list)
    info: dict[str, Any] = field(default_factory=dict)
    #: Serving-session counters (warm vs cold start, session queries,
    #: cache hits); empty outside a ResolverSession.
    serving: dict[str, Any] = field(default_factory=dict)
    version: int = REPORT_VERSION

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        out = asdict(self)
        out["rounds"] = [asdict(e) for e in self.rounds]
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> RunReport:
        data = dict(data)
        data["rounds"] = [RoundEvent(**e) for e in data.get("rounds", [])]
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> RunReport:
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def load(cls, path: str | Path) -> RunReport:
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    # ------------------------------------------------------------------
    def to_table(self, max_rounds: int = 20) -> str:
        """Human-readable multi-section summary of this report."""
        lines = [
            f"run: {self.method}  k={self.k}  wall={self.wall_time:.4f}s  "
            f"rounds={len(self.rounds)}",
        ]
        if self.counters:
            parts = ", ".join(
                f"{key}={value}"
                for key, value in self.counters.items()
                if not isinstance(value, dict)
            )
            lines += ["", "counters:", f"  {parts}"]
        if self.serving:
            parts = ", ".join(
                f"{key}={value}" for key, value in self.serving.items()
            )
            lines += ["", "serving:", f"  {parts}"]
        memo = self.info.get("memoized_pairs")
        if memo:
            parts = ", ".join(f"{key}={value}" for key, value in memo.items())
            lines += ["", "memoized pairs:", f"  {parts}"]
        if self.residuals:
            lines += ["", "cost-model residuals (predicted vs actual):"]
            lines.append(
                f"  {'action':<10}{'rounds':>8}{'predicted':>14}"
                f"{'actual':>14}{'ratio':>10}"
            )
            for kind in sorted(self.residuals):
                agg = self.residuals[kind]
                ratio = agg.get("ratio")
                ratio_cell = f"{ratio:>10.3g}" if ratio is not None else f"{'-':>10}"
                lines.append(
                    f"  {kind:<10}{agg['rounds']:>8}"
                    f"{agg['predicted_total']:>14.6g}"
                    f"{agg['actual_total']:>14.6g}{ratio_cell}"
                )
        if self.hash_pools:
            lines += ["", "hash pools:"]
            lines.append(
                f"  {'pool':<28}{'hashes':>10}{'seconds':>12}"
            )
            for pool in self.hash_pools:
                lines.append(
                    f"  {str(pool.get('name', '?')):<28}"
                    f"{pool.get('hashes_computed', 0):>10}"
                    f"{pool.get('seconds', 0.0):>12.6f}"
                )
        if self.rounds:
            lines += ["", f"rounds (first {min(max_rounds, len(self.rounds))}):"]
            lines.append(
                f"  {'#':>4} {'action':<7}{'size':>8}{'from':>6}"
                f"{'subcl':>7}{'largest':>9}{'wall_s':>12}{'pred':>12}"
            )
            for event in self.rounds[:max_rounds]:
                lines.append(
                    f"  {event.round:>4} {event.action:<7}{event.size:>8}"
                    f"{event.from_level:>6}{event.subclusters:>7}"
                    f"{event.largest_out:>9}{event.wall_time:>12.6g}"
                    f"{event.predicted_cost:>12.6g}"
                )
            if len(self.rounds) > max_rounds:
                lines.append(f"  ... {len(self.rounds) - max_rounds} more rounds")
        hist = self.metrics.get("histograms") or {}
        if hist:
            lines += ["", "histograms:"]
            lines.append(
                f"  {'name':<32}{'count':>8}{'mean':>12}{'total':>12}"
            )
            for name in sorted(hist):
                entry = hist[name]
                lines.append(
                    f"  {name:<32}{entry['count']:>8}"
                    f"{entry['mean']:>12.6f}{entry['total']:>12.6f}"
                )
        return "\n".join(lines)
