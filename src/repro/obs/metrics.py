"""Named counters, gauges and histograms for one run.

A :class:`MetricsRegistry` hands out metric instruments by name and
serializes them all with :meth:`MetricsRegistry.snapshot`.  Instruments
are created on first use, so instrumented code never needs to declare
them up front::

    reg = MetricsRegistry()
    reg.counter("pairs.compared").inc(42)
    reg.histogram("hash.seconds").observe(0.0013)

A disabled registry returns shared no-op instruments — the cost of an
``inc()`` on the disabled path is one dictionary-free method call.
"""

from __future__ import annotations

import math
from typing import Any


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int | float = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    def to_value(self) -> int | float:
        return self.value


class Gauge:
    """Last-written value (e.g. a calibration constant)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Any = None

    def set(self, value: Any) -> None:
        self.value = value

    def to_value(self) -> Any:
        return self.value


class Histogram:
    """Streaming summary of observed values (count/total/min/max).

    Keeps O(1) state rather than samples: runs can observe one value
    per round, and the report only needs summary statistics.  Positive
    observations additionally land in log-spaced buckets (4 per octave)
    so :meth:`percentile` can estimate tail latencies — p99 of a
    serving run — without retaining samples; the estimate is exact to
    within one bucket (~19% relative width).
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    #: Sub-divisions per power of two; 4 gives ~19% bucket width.
    _BUCKETS_PER_OCTAVE = 4

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        #: Log-bucket index -> observation count (positive values only).
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value > 0.0:
            index = int(
                math.floor(math.log2(value) * self._BUCKETS_PER_OCTAVE)
            )
            self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """Estimate the ``q``-th percentile (``0 < q <= 100``) of the
        positive observations; ``None`` when nothing positive was seen.

        Returns the geometric midpoint of the bucket containing the
        requested rank — within one bucket width of the true value.
        """
        n = sum(self.buckets.values())
        if n == 0:
            return None
        rank = max(1, math.ceil(n * float(q) / 100.0))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                lo = 2.0 ** (index / self._BUCKETS_PER_OCTAVE)
                hi = 2.0 ** ((index + 1) / self._BUCKETS_PER_OCTAVE)
                return math.sqrt(lo * hi)
        return self.max  # pragma: no cover - rank <= n guarantees a hit

    def to_value(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        if self.buckets:
            out["p50"] = self.percentile(50)
            out["p95"] = self.percentile(95)
            out["p99"] = self.percentile(99)
        return out


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for disabled registries."""

    __slots__ = ()

    def inc(self, n: int | float = 1) -> None:
        return None

    def set(self, value: Any) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Name-indexed instrument store for one run."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter | _NullInstrument:
        if not self.enabled:
            return NULL_INSTRUMENT
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge | _NullInstrument:
        if not self.enabled:
            return NULL_INSTRUMENT
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name)
        return found

    def histogram(self, name: str) -> Histogram | _NullInstrument:
        if not self.enabled:
            return NULL_INSTRUMENT
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name)
        return found

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def snapshot(self) -> dict[str, Any]:
        """All instruments as one JSON-friendly dict, sorted by name."""
        return {
            "counters": {
                name: self._counters[name].to_value()
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].to_value() for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].to_value()
                for name in sorted(self._histograms)
            },
        }


#: Shared disabled registry for uninstrumented runs.
NULL_REGISTRY = MetricsRegistry(enabled=False)
