"""The library's single wall-clock funnel.

Library code in ``core/``, ``lsh/``, ``structures/`` and ``distance/``
must never read the clock directly (invariant rule R2 of
:mod:`repro.analysis`): all timing flows through :func:`monotonic`, so

* every timed quantity in the package shares one clock source and one
  unit (seconds on the process-wide monotonic clock), which keeps the
  calibrated cost model's predictions comparable with the measured
  wall-times the observability layer records against them; and
* tests can fake time deterministically by patching one function.
"""

from __future__ import annotations

import time


def monotonic() -> float:
    """Seconds on the process-wide monotonic clock.

    Backed by :func:`time.perf_counter`: monotonic, highest available
    resolution, unaffected by system clock adjustments.
    """
    return time.perf_counter()
