"""The per-run observation bundle threaded through the hot paths.

A :class:`RunObserver` owns one :class:`~repro.obs.spans.Tracer`, one
:class:`~repro.obs.metrics.MetricsRegistry`, and the list of
:class:`~repro.obs.report.RoundEvent` records of the current run.  The
filtering code holds a single observer reference and checks one
``enabled`` flag before doing any timing work, so a disabled observer
(the module-level :data:`DISABLED` singleton) adds only attribute
checks to the hot paths.
"""

from __future__ import annotations

from .metrics import MetricsRegistry
from .report import RunReport, cost_residuals
from .spans import Tracer


class RunObserver:
    """Tracer + metrics registry + round events for one run."""

    def __init__(
        self,
        enabled: bool = True,
        tracer: "Tracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
    ):
        self.enabled = enabled
        self.tracer = tracer if tracer is not None else Tracer(enabled=enabled)
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(enabled=enabled)
        )
        self.rounds: list = []

    # ------------------------------------------------------------------
    # Delegates, so instrumented code needs only the observer reference.
    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def counter(self, name: str):
        return self.metrics.counter(name)

    def gauge(self, name: str):
        return self.metrics.gauge(name)

    def histogram(self, name: str):
        return self.metrics.histogram(name)

    def record_round(self, event) -> None:
        if self.enabled:
            self.rounds.append(event)

    def reset(self) -> None:
        """Clear per-run state (round events; spans and metrics too)."""
        self.rounds = []
        self.tracer.reset()
        self.metrics.reset()

    def reset_rounds(self) -> None:
        """Clear only the round events (metrics/spans accumulate)."""
        self.rounds = []

    # ------------------------------------------------------------------
    def build_report(
        self,
        method: str,
        k: int,
        wall_time: float,
        counters: "dict | None" = None,
        cost_model: "dict | None" = None,
        hash_pools: "list | None" = None,
        info: "dict | None" = None,
    ) -> RunReport:
        """Snapshot everything observed so far into a :class:`RunReport`."""
        return RunReport(
            method=method,
            k=k,
            wall_time=wall_time,
            rounds=list(self.rounds),
            counters=counters or {},
            metrics=self.metrics.snapshot(),
            spans=self.tracer.to_list(),
            cost_model=cost_model or {},
            residuals=cost_residuals(self.rounds),
            hash_pools=hash_pools or [],
            info=info or {},
        )


#: Shared disabled observer: safe to use from any number of methods at
#: once (every mutating entry point is a no-op when disabled).
DISABLED = RunObserver(enabled=False)
