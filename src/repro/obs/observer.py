"""The per-run observation bundle threaded through the hot paths.

A :class:`RunObserver` owns one :class:`~repro.obs.spans.Tracer`, one
:class:`~repro.obs.metrics.MetricsRegistry`, and the list of
:class:`~repro.obs.report.RoundEvent` records of the current run.  The
filtering code holds a single observer reference and checks one
``enabled`` flag before doing any timing work, so a disabled observer
(the module-level :data:`DISABLED` singleton) adds only attribute
checks to the hot paths.
"""

from __future__ import annotations

from typing import Any

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, _NullInstrument
from .report import RoundEvent, RunReport, cost_residuals
from .spans import Span, Tracer, _NullSpan


class RunObserver:
    """Tracer + metrics registry + round events for one run."""

    def __init__(
        self,
        enabled: bool = True,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.enabled = enabled
        self.tracer = tracer if tracer is not None else Tracer(enabled=enabled)
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry(enabled=enabled)
        )
        self.rounds: list[RoundEvent] = []

    # ------------------------------------------------------------------
    # Delegates, so instrumented code needs only the observer reference.
    def span(self, name: str, **attrs: Any) -> Span | _NullSpan:
        return self.tracer.span(name, **attrs)

    def counter(self, name: str) -> Counter | _NullInstrument:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge | _NullInstrument:
        return self.metrics.gauge(name)

    def histogram(self, name: str) -> Histogram | _NullInstrument:
        return self.metrics.histogram(name)

    def record_round(self, event: RoundEvent) -> None:
        if self.enabled:
            self.rounds.append(event)

    def reset(self) -> None:
        """Clear per-run state (round events; spans and metrics too)."""
        self.rounds = []
        self.tracer.reset()
        self.metrics.reset()

    def reset_rounds(self) -> None:
        """Clear only the round events (metrics/spans accumulate)."""
        self.rounds = []

    # ------------------------------------------------------------------
    def build_report(
        self,
        method: str,
        k: int,
        wall_time: float,
        counters: dict[str, Any] | None = None,
        cost_model: dict[str, Any] | None = None,
        hash_pools: list[dict[str, Any]] | None = None,
        info: dict[str, Any] | None = None,
    ) -> RunReport:
        """Snapshot everything observed so far into a :class:`RunReport`."""
        return RunReport(
            method=method,
            k=k,
            wall_time=wall_time,
            rounds=list(self.rounds),
            counters=counters or {},
            metrics=self.metrics.snapshot(),
            spans=self.tracer.to_list(),
            cost_model=cost_model or {},
            residuals=cost_residuals(self.rounds),
            hash_pools=hash_pools or [],
            info=info or {},
        )


#: Shared disabled observer: safe to use from any number of methods at
#: once (every mutating entry point is a no-op when disabled).
DISABLED = RunObserver(enabled=False)
