"""Hierarchical timing spans.

A :class:`Span` is a named, timed section of a run; spans nest through
a :class:`Tracer`, which keeps the open-span stack and the finished
root spans.  The API is context-manager based::

    tracer = Tracer()
    with tracer.span("run", k=10):
        with tracer.span("prepare"):
            ...

When the tracer is disabled, :meth:`Tracer.span` returns one shared
no-op span object whose ``__enter__``/``__exit__`` do nothing — the
per-call overhead of instrumented code is a single attribute check plus
a no-op context manager, so hot paths can stay instrumented
unconditionally.
"""

from __future__ import annotations

from types import TracebackType
from typing import Any

from .clock import monotonic


class Span:
    """One named, timed section; children are spans opened inside it."""

    __slots__ = ("name", "attrs", "children", "start", "end", "_tracer")

    def __init__(self, tracer: Tracer, name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.start = 0.0
        self.end = 0.0

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return max(self.end - self.start, 0.0)

    def set(self, **attrs: Any) -> Span:
        """Attach extra attributes to an open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> Span:
        self._tracer._push(self)
        self.start = monotonic()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.end = monotonic()
        self._tracer._pop(self)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly nested view of the span tree."""
        out: dict[str, Any] = {"name": self.name, "seconds": round(self.duration, 9)}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, {self.duration:.6f}s, {len(self.children)} children)"


class _NullSpan:
    """Shared do-nothing span returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None

    def set(self, **attrs: Any) -> _NullSpan:
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Factory and collector of :class:`Span` trees.

    ``roots`` holds every finished top-level span; nested spans attach
    to their parent.  ``reset()`` clears collected spans so one tracer
    can serve several runs.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attrs: Any) -> Span | _NullSpan:
        """Open a new span (use as a context manager)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def reset(self) -> None:
        self.roots = []
        self._stack = []

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def to_list(self) -> list[dict[str, Any]]:
        """JSON-friendly view of all finished root spans."""
        return [root.to_dict() for root in self.roots]

    # ------------------------------------------------------------------
    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits (generators abandoned mid-run):
        # discard any spans opened after `span` that never closed.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)


#: Shared disabled tracer for uninstrumented runs.
NULL_TRACER = Tracer(enabled=False)
