"""Observability: spans, metrics, and structured run reports.

The subsystem has three layers, all near-zero-overhead when disabled:

* :mod:`repro.obs.spans` — nested wall-time spans
  (:class:`Tracer` / :class:`Span`);
* :mod:`repro.obs.metrics` — named counters, gauges and histograms
  (:class:`MetricsRegistry`);
* :mod:`repro.obs.report` — the serializable :class:`RunReport` with
  per-round :class:`RoundEvent` records and cost-model residuals.

:class:`RunObserver` bundles one of each and is what
:class:`~repro.core.adaptive.AdaptiveLSH` threads through its hot
paths; :data:`DISABLED` is the shared no-op observer used when
observability is off.
"""

from .clock import monotonic
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, NULL_REGISTRY
from .observer import DISABLED, RunObserver
from .report import REPORT_VERSION, RoundEvent, RunReport, cost_residuals
from .spans import NULL_SPAN, NULL_TRACER, Span, Tracer

__all__ = [
    "monotonic",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "RunObserver",
    "DISABLED",
    "RoundEvent",
    "RunReport",
    "REPORT_VERSION",
    "cost_residuals",
    "Span",
    "Tracer",
    "NULL_SPAN",
    "NULL_TRACER",
]
