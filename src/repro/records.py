"""Record model: schemas, field kinds, and the column-oriented store.

The filtering algorithms in this package never look inside a record
directly — they go through distance metrics and hash families — so the
representation is optimized for *batch* access:

* vector fields are stored as a single ``(n, d)`` float64 matrix, which
  makes random-hyperplane hashing one matrix product;
* shingle-set fields are stored CSR-style (:class:`ShingleColumn`): one
  contiguous ``int64`` ``values`` array plus an ``offsets`` array, so a
  record's set is a zero-copy slice and whole-column operations
  (cardinalities, incidence matrices, persistence) are vectorized.

Both layouts are exactly what the on-disk columnar format
(:mod:`repro.storage`) memory-maps, so a store opened with
``mmap_mode="r"`` and an in-memory one are indistinguishable to every
consumer, and :meth:`RecordStore.slice_view` hands shard workers a
zero-copy window onto the same pages.

Records are addressed everywhere by their integer row id ``rid`` in
``range(len(store))``.
"""

from __future__ import annotations

import enum
import hashlib
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import Any, overload

import numpy as np
import scipy.sparse as sp

from .errors import SchemaError
from .types import ArrayLike, FloatArray, IntArray


class FieldKind(enum.Enum):
    """The two physical field representations the library understands."""

    #: Dense real-valued vector (e.g., an RGB histogram). Compared with
    #: cosine distance and hashed with random hyperplanes.
    VECTOR = "vector"
    #: Set of integer shingle ids (e.g., token shingles of a title).
    #: Compared with Jaccard distance and hashed with minhash.
    SHINGLES = "shingles"


@dataclass(frozen=True)
class FieldSpec:
    """Declaration of a single record field."""

    name: str
    kind: FieldKind

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("field name must be non-empty")


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`FieldSpec` declarations."""

    fields: tuple[FieldSpec, ...]

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in schema: {names}")
        if not self.fields:
            raise SchemaError("schema must declare at least one field")

    @classmethod
    def single_vector(cls, name: str = "vec") -> Schema:
        """Schema with one dense vector field (the common image case)."""
        return cls((FieldSpec(name, FieldKind.VECTOR),))

    @classmethod
    def single_shingles(cls, name: str = "shingles") -> Schema:
        """Schema with one shingle-set field (the common text case)."""
        return cls((FieldSpec(name, FieldKind.SHINGLES),))

    def __iter__(self) -> Iterator[FieldSpec]:
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def kind_of(self, name: str) -> FieldKind:
        for f in self.fields:
            if f.name == name:
                return f.kind
        raise SchemaError(f"unknown field {name!r}; schema has {self.names}")


@dataclass(frozen=True)
class Record:
    """A lightweight per-row view handed out by :class:`RecordStore`."""

    rid: int
    values: dict[str, Any]

    def __getitem__(self, field_name: str) -> Any:
        return self.values[field_name]


@dataclass(frozen=True)
class StoreBacking:
    """Where a store's columns physically live on disk.

    Set on stores opened from a :class:`repro.storage.StoreLayout`
    (``mmap_mode="r"``) and propagated through :meth:`RecordStore.
    slice_view` / contiguous :meth:`RecordStore.take`, so shard workers
    can be handed a tiny ``(path, version, lo, hi)`` reference and
    re-open the mapping themselves instead of receiving pickled
    columns.
    """

    #: Layout directory of the backing columns.
    path: str
    #: Layout ``store_version`` the columns were opened at.  Layouts
    #: are append-only, so any row below ``hi`` is immutable across
    #: later versions.
    store_version: int
    #: Half-open row range of the layout this store views.
    lo: int
    hi: int


def _as_sorted_ids(values: Iterable[int]) -> IntArray:
    """Coerce a shingle collection into a sorted, unique int64 array."""
    arr = np.asarray(sorted(set(int(v) for v in values)), dtype=np.int64)
    if arr.size and arr.min() < 0:
        raise SchemaError("shingle ids must be non-negative integers")
    return arr


class ShingleColumn(Sequence[IntArray]):
    """CSR-style storage of one shingle-set field.

    Row ``i`` is ``values[offsets[i] : offsets[i + 1]]`` — a sorted,
    unique ``int64`` id array.  Two deliberate freedoms make zero-copy
    views possible:

    * ``offsets`` need not start at zero, and
    * ``values`` may extend beyond the column's span;

    a slice ``column[lo:hi]`` is then just ``offsets[lo : hi + 1]``
    over the *same* ``values`` array — no bytes move, which is what
    makes :meth:`RecordStore.slice_view` free and lets memory-mapped
    columns be windowed per shard without touching the pages.

    The class implements the read-only sequence protocol
    (``len``/index/slice/iterate), so existing consumers written
    against ``list[IntArray]`` keep working unchanged.
    """

    __slots__ = ("offsets", "values")

    def __init__(self, offsets: IntArray, values: IntArray) -> None:
        self.offsets = offsets
        self.values = values

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sets(cls, sets: Sequence[IntArray]) -> ShingleColumn:
        """Build a zero-based column from per-row sorted id arrays."""
        offsets = np.zeros(len(sets) + 1, dtype=np.int64)
        if len(sets):
            np.cumsum([s.size for s in sets], out=offsets[1:])
        if int(offsets[-1]):
            values = np.concatenate(sets).astype(np.int64, copy=False)
        else:
            values = np.zeros(0, dtype=np.int64)
        return cls(offsets, values)

    @classmethod
    def concat(cls, columns: Sequence[ShingleColumn]) -> ShingleColumn:
        """One zero-based column holding every input's rows in order."""
        sizes = [col.sizes() for col in columns]
        n = sum(s.size for s in sizes)
        offsets = np.zeros(n + 1, dtype=np.int64)
        if n:
            np.cumsum(np.concatenate(sizes), out=offsets[1:])
        flats = [col.flat for col in columns if col.flat.size]
        values = (
            np.concatenate(flats) if flats else np.zeros(0, dtype=np.int64)
        )
        return cls(offsets, values)

    # ------------------------------------------------------------------
    # sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.offsets.size - 1

    @overload
    def __getitem__(self, index: int) -> IntArray: ...
    @overload
    def __getitem__(self, index: slice) -> ShingleColumn: ...

    def __getitem__(self, index: int | slice) -> IntArray | ShingleColumn:
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step != 1:
                raise SchemaError("shingle columns only support step-1 slices")
            stop = max(start, stop)
            return ShingleColumn(
                self.offsets[start : stop + 1], self.values
            )
        i = int(index)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(f"row {index} out of range [0, {len(self)})")
        return self.values[int(self.offsets[i]) : int(self.offsets[i + 1])]

    def __iter__(self) -> Iterator[IntArray]:
        offsets, values = self.offsets, self.values
        for i in range(len(self)):
            yield values[int(offsets[i]) : int(offsets[i + 1])]

    def __eq__(self, other: object) -> bool:
        """Sequence equality: same rows, element-wise.

        Keeps assertions written against the old ``list[IntArray]``
        representation (``column == [arr, ...]``) meaningful.
        """
        if isinstance(other, ShingleColumn):
            return bool(
                np.array_equal(self.rebased_offsets(), other.rebased_offsets())
                and np.array_equal(self.flat, other.flat)
            )
        if isinstance(other, (list, tuple)):
            return len(other) == len(self) and all(
                np.array_equal(mine, theirs)
                for mine, theirs in zip(self, other)
            )
        return NotImplemented  # type: ignore[return-value]

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("ShingleColumn is unhashable (mutable arrays)")

    # ------------------------------------------------------------------
    # vectorized whole-column views
    # ------------------------------------------------------------------
    @property
    def flat(self) -> IntArray:
        """The column's span of ``values`` — every row, concatenated."""
        return self.values[int(self.offsets[0]) : int(self.offsets[-1])]

    def sizes(self) -> IntArray:
        """Per-row cardinalities (vectorized)."""
        return np.diff(self.offsets)

    def rebased_offsets(self) -> IntArray:
        """Zero-based offsets matching :attr:`flat` (copies ``n + 1``
        ints; never the values)."""
        return self.offsets - self.offsets[0]

    @property
    def nbytes(self) -> int:
        """Bytes this column would occupy serialized (span + offsets)."""
        return int(self.flat.nbytes) + int(self.offsets.nbytes)

    # ------------------------------------------------------------------
    def take(self, rids: IntArray) -> ShingleColumn:
        """A new zero-based column of ``rids``' rows, in order.

        One vectorized gather — no per-row Python objects and no
        re-validation (the rows are already sorted and unique).
        """
        rids = np.asarray(rids, dtype=np.int64)
        lengths = self.sizes()[rids]
        offsets = np.zeros(rids.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        total = int(offsets[-1])
        if total:
            starts = self.offsets[:-1][rids]
            shift = np.repeat(starts - offsets[:-1], lengths)
            values = self.values[shift + np.arange(total, dtype=np.int64)]
        else:
            values = np.zeros(0, dtype=np.int64)
        return ShingleColumn(offsets, values)

    def validate(self) -> None:
        """Check the CSR invariants without copying row data.

        Raises :class:`SchemaError` unless offsets are monotone, values
        are non-negative, and every row is strictly increasing (sorted
        and duplicate-free).  Vectorized: adopting an already-columnar
        input costs one pass instead of a per-row re-sort.
        """
        offsets = np.asarray(self.offsets)
        if offsets.ndim != 1 or offsets.size < 1:
            raise SchemaError("shingle offsets must be a 1-D array")
        if offsets.size > 1 and np.any(np.diff(offsets) < 0):
            raise SchemaError("shingle offsets must be non-decreasing")
        if int(offsets[0]) < 0 or int(offsets[-1]) > self.values.shape[0]:
            raise SchemaError("shingle offsets exceed the values array")
        flat = self.flat
        if flat.size and int(flat.min()) < 0:
            raise SchemaError("shingle ids must be non-negative integers")
        if flat.size > 1:
            rising = np.ones(flat.size, dtype=bool)
            rising[1:] = np.diff(flat) > 0
            row_starts = self.rebased_offsets()[:-1]
            rising[row_starts[row_starts < flat.size]] = True
            if not rising.all():
                raise SchemaError(
                    "shingle rows must be sorted and duplicate-free"
                )


def _coerce_shingle_column(col: Any) -> ShingleColumn:
    """Validated :class:`ShingleColumn` from any accepted column input.

    An existing :class:`ShingleColumn` (or an ``(offsets, values)``
    pair) is adopted after the vectorized invariant check; anything
    else goes through the per-row sort/dedup coercion.
    """
    if isinstance(col, ShingleColumn):
        col.validate()
        return col
    if (
        isinstance(col, tuple)
        and len(col) == 2
        and isinstance(col[0], np.ndarray)
    ):
        column = ShingleColumn(
            np.asarray(col[0], dtype=np.int64),
            np.asarray(col[1], dtype=np.int64),
        )
        column.validate()
        return column
    return ShingleColumn.from_sets([_as_sorted_ids(v) for v in col])


class RecordStore:
    """Column-oriented container for the dataset ``R``.

    Parameters
    ----------
    schema:
        Field declarations.
    columns:
        Mapping from field name to column data: a ``(n, d)`` array for
        ``VECTOR`` fields; for ``SHINGLES`` fields a sequence of
        shingle-id collections, an existing :class:`ShingleColumn`, or
        an ``(offsets, values)`` array pair.  All columns must agree on
        ``n``.
    """

    def __init__(self, schema: Schema, columns: dict[str, Any]) -> None:
        self.schema = schema
        missing = set(schema.names) - set(columns)
        extra = set(columns) - set(schema.names)
        if missing or extra:
            raise SchemaError(
                f"columns do not match schema (missing={sorted(missing)}, "
                f"unexpected={sorted(extra)})"
            )
        self._vectors: dict[str, FloatArray] = {}
        self._shingles: dict[str, ShingleColumn] = {}
        self._csr_cache: dict[str, sp.csr_matrix] = {}
        self._sizes_cache: dict[str, IntArray] = {}
        #: Per-``(kernel backend, field)`` packed representations (see
        #: :mod:`repro.kernels`).  Derived data: rebuilt on demand, so
        #: it is never serialized or snapshotted.
        self._packed_cache: dict[tuple[str, str], Any] = {}
        #: On-disk backing of the columns, when memory-mapped.
        self.backing: StoreBacking | None = None
        sizes: set[int] = set()
        for spec in schema:
            col = columns[spec.name]
            if spec.kind is FieldKind.VECTOR:
                mat = np.ascontiguousarray(np.asarray(col, dtype=np.float64))
                if mat.ndim != 2:
                    raise SchemaError(
                        f"vector field {spec.name!r} must be 2-D, got shape {mat.shape}"
                    )
                self._vectors[spec.name] = mat
                sizes.add(int(mat.shape[0]))
            else:
                column = _coerce_shingle_column(col)
                self._shingles[spec.name] = column
                sizes.add(len(column))
        if len(sizes) != 1:
            raise SchemaError(f"columns have inconsistent row counts: {sorted(sizes)}")
        self._n = sizes.pop()

    @classmethod
    def _from_parts(
        cls,
        schema: Schema,
        vectors: dict[str, FloatArray],
        shingles: dict[str, ShingleColumn],
        n: int,
        backing: StoreBacking | None = None,
    ) -> RecordStore:
        """Trusted constructor: adopt already-validated columns without
        copying.  Used by :meth:`take`/:meth:`concat`/:meth:`slice_view`,
        the parallel layer, and :mod:`repro.storage` — the columns are
        exactly what ``__init__`` would have produced, so re-validation
        would only duplicate every shingle array.
        """
        store = cls.__new__(cls)
        store.schema = schema
        store._vectors = vectors
        store._shingles = shingles
        store._csr_cache = {}
        store._sizes_cache = {}
        store._packed_cache = {}
        store._n = n
        store.backing = backing
        return store

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __getitem__(self, rid: int) -> Record:
        if not 0 <= rid < self._n:
            raise IndexError(f"rid {rid} out of range [0, {self._n})")
        values: dict[str, Any] = {}
        for name, mat in self._vectors.items():
            values[name] = mat[rid]
        for name, column in self._shingles.items():
            values[name] = column[rid]
        return Record(rid, values)

    def __iter__(self) -> Iterator[Record]:
        return (self[i] for i in range(self._n))

    @property
    def rids(self) -> IntArray:
        """All record ids as an int64 array."""
        return np.arange(self._n, dtype=np.int64)

    # ------------------------------------------------------------------
    # batch accessors used by hash families and pairwise engines
    # ------------------------------------------------------------------
    def vectors(self, field_name: str) -> FloatArray:
        """The full ``(n, d)`` matrix of a vector field."""
        try:
            return self._vectors[field_name]
        except KeyError:
            raise SchemaError(f"{field_name!r} is not a vector field") from None

    def shingle_sets(self, field_name: str) -> ShingleColumn:
        """A shingle field's rows as a :class:`ShingleColumn`.

        Supports the read-only sequence protocol, so call sites written
        against a ``list`` of per-row arrays work unchanged; the
        vectorized views (``flat``, ``sizes()``) are the fast paths.
        """
        try:
            return self._shingles[field_name]
        except KeyError:
            raise SchemaError(f"{field_name!r} is not a shingles field") from None

    def shingle_csr(self, field_name: str) -> sp.csr_matrix:
        """Binary ``(n, vocab)`` incidence matrix of a shingle field.

        Built lazily and cached; used for vectorized pairwise Jaccard.
        """
        if field_name not in self._csr_cache:
            column = self.shingle_sets(field_name)
            indptr = column.rebased_offsets()
            if indptr[-1]:
                raw = column.flat
                # Ids can come from 32-bit hashes; compact them so the
                # matrix width is the number of *distinct* shingles.
                vocab_ids, indices = np.unique(raw, return_inverse=True)
                vocab = int(vocab_ids.size)
            else:
                indices = np.zeros(0, dtype=np.int64)
                vocab = 1
            data = np.ones(int(indptr[-1]), dtype=np.float64)
            self._csr_cache[field_name] = sp.csr_matrix(
                (data, indices, indptr), shape=(self._n, vocab)
            )
        return self._csr_cache[field_name]

    def set_sizes(self, field_name: str) -> IntArray:
        """Per-record shingle-set cardinalities.

        Cached: pairwise engines ask for this on every one-to-many /
        block call — it must not sit on the per-row hot path.  With the
        columnar layout this is one vectorized ``diff`` even cold.
        """
        if field_name not in self._sizes_cache:
            self._sizes_cache[field_name] = np.ascontiguousarray(
                self.shingle_sets(field_name).sizes()
            )
        return self._sizes_cache[field_name]

    # ------------------------------------------------------------------
    # dataset manipulation
    # ------------------------------------------------------------------
    def take(self, rids: ArrayLike) -> RecordStore:
        """A new store holding only ``rids`` (in the given order).

        Goes through the trusted constructor — rows are already
        validated, so nothing is re-sorted or re-checked.  A contiguous
        ascending ``rids`` range degenerates to :meth:`slice_view`
        (zero-copy); arbitrary ``rids`` gather once per column.
        """
        rids = np.asarray(rids, dtype=np.int64)
        if rids.size and (
            int(rids[-1]) - int(rids[0]) == rids.size - 1
            and bool(np.all(np.diff(rids) == 1))
        ):
            return self.slice_view(int(rids[0]), int(rids[-1]) + 1)
        vectors = {name: mat[rids] for name, mat in self._vectors.items()}
        shingles = {
            name: column.take(rids) for name, column in self._shingles.items()
        }
        return RecordStore._from_parts(
            self.schema, vectors, shingles, int(rids.size)
        )

    def slice_view(self, lo: int, hi: int) -> RecordStore:
        """Zero-copy view of the contiguous row range ``[lo, hi)``.

        Vector matrices are sliced (NumPy views), shingle columns are
        re-windowed over the same ``values`` array, and the on-disk
        :attr:`backing` (when present) is translated to the sub-range —
        shard workers, snapshots, and fork/spawn payloads all share the
        parent's pages through this.
        """
        lo, hi = int(lo), int(hi)
        if not 0 <= lo <= hi <= self._n:
            raise SchemaError(
                f"slice [{lo}, {hi}) out of range for store of {self._n} rows"
            )
        vectors = {name: mat[lo:hi] for name, mat in self._vectors.items()}
        shingles = {
            name: column[lo:hi] for name, column in self._shingles.items()
        }
        backing = None
        if self.backing is not None:
            backing = StoreBacking(
                self.backing.path,
                self.backing.store_version,
                self.backing.lo + lo,
                self.backing.lo + hi,
            )
        return RecordStore._from_parts(
            self.schema, vectors, shingles, hi - lo, backing=backing
        )

    def concat(self, other: RecordStore) -> RecordStore:
        """A new store with ``other``'s rows appended after this one's.

        Column data is concatenated through the trusted constructor —
        both inputs are validated stores, so no row is re-sorted and no
        shingle array is copied more than the one unavoidable
        concatenation.
        """
        if other.schema != self.schema:
            raise SchemaError("cannot concat stores with different schemas")
        vectors = {
            name: np.vstack([mat, other._vectors[name]])
            for name, mat in self._vectors.items()
        }
        shingles = {
            name: ShingleColumn.concat([column, other._shingles[name]])
            for name, column in self._shingles.items()
        }
        return RecordStore._from_parts(
            self.schema, vectors, shingles, self._n + other._n
        )

    #: Rows hashed per :meth:`content_fingerprint` chunk.  Bounds the
    #: transient buffer to a few MiB regardless of store size.
    _FINGERPRINT_CHUNK_ROWS = 8192

    def content_fingerprint(self, limit: int | None = None) -> str:
        """SHA-256 over the schema and the first ``limit`` rows' bytes.

        Index snapshots use this to verify that a snapshot is restored
        onto the store it was captured from.  Because the digest covers
        row prefixes field by field, a store extended with
        :meth:`concat` satisfies
        ``extended.content_fingerprint(limit=len(original)) ==
        original.content_fingerprint()`` — the relaxed check behind
        snapshot-then-extend restores.

        Hashing walks fixed-size row chunks (the digest is identical to
        hashing each column in one piece), so peak memory stays flat on
        memory-mapped million-record stores instead of materializing a
        second copy of every matrix.
        """
        n = self._n if limit is None else min(int(limit), self._n)
        chunk = self._FINGERPRINT_CHUNK_ROWS
        digest = hashlib.sha256()
        digest.update(f"n={n}".encode())
        for spec in self.schema:
            digest.update(f"|{spec.name}:{spec.kind.value}".encode())
            if spec.kind is FieldKind.VECTOR:
                mat = self._vectors[spec.name]
                digest.update(f":{mat.shape[1] if mat.ndim == 2 else 0}".encode())
                for lo in range(0, n, chunk):
                    hi = min(lo + chunk, n)
                    digest.update(np.ascontiguousarray(mat[lo:hi]).tobytes())
            else:
                column = self._shingles[spec.name]
                for lo in range(0, n, chunk):
                    hi = min(lo + chunk, n)
                    digest.update(_length_prefixed_rows(column, lo, hi))
        return digest.hexdigest()


def _length_prefixed_rows(column: ShingleColumn, lo: int, hi: int) -> bytes:
    """Rows ``[lo, hi)`` serialized as ``[size_i][ids_i]...`` int64 words.

    Byte-for-byte the stream ``np.int64(row.size).tobytes() +
    row.tobytes()`` concatenated over the rows — the shingle half of
    :meth:`RecordStore.content_fingerprint` — built with one vectorized
    scatter instead of a Python loop per row.
    """
    rows = hi - lo
    offsets = column.offsets[lo : hi + 1] - column.offsets[lo]
    sizes = np.diff(offsets)
    flat = column.values[int(column.offsets[lo]) : int(column.offsets[hi])]
    buf = np.empty(int(offsets[-1]) + rows, dtype=np.int64)
    row_index = np.arange(rows, dtype=np.int64)
    buf[offsets[:-1] + row_index] = sizes
    if flat.size:
        positions = (
            np.arange(flat.size, dtype=np.int64)
            + np.repeat(row_index, sizes)
            + 1
        )
        buf[positions] = flat
    return buf.tobytes()
