"""Record model: schemas, field kinds, and the column-oriented store.

The filtering algorithms in this package never look inside a record
directly — they go through distance metrics and hash families — so the
representation is optimized for *batch* access:

* vector fields are stored as a single ``(n, d)`` float64 matrix, which
  makes random-hyperplane hashing one matrix product;
* shingle-set fields are stored as a list of sorted ``int64`` id arrays
  plus a lazily built CSR incidence matrix for vectorized pairwise
  Jaccard.

Records are addressed everywhere by their integer row id ``rid`` in
``range(len(store))``.
"""

from __future__ import annotations

import enum
import hashlib
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import Any

import numpy as np
import scipy.sparse as sp

from .errors import SchemaError
from .types import ArrayLike, FloatArray, IntArray


class FieldKind(enum.Enum):
    """The two physical field representations the library understands."""

    #: Dense real-valued vector (e.g., an RGB histogram). Compared with
    #: cosine distance and hashed with random hyperplanes.
    VECTOR = "vector"
    #: Set of integer shingle ids (e.g., token shingles of a title).
    #: Compared with Jaccard distance and hashed with minhash.
    SHINGLES = "shingles"


@dataclass(frozen=True)
class FieldSpec:
    """Declaration of a single record field."""

    name: str
    kind: FieldKind

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("field name must be non-empty")


@dataclass(frozen=True)
class Schema:
    """An ordered collection of :class:`FieldSpec` declarations."""

    fields: tuple[FieldSpec, ...]

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in schema: {names}")
        if not self.fields:
            raise SchemaError("schema must declare at least one field")

    @classmethod
    def single_vector(cls, name: str = "vec") -> Schema:
        """Schema with one dense vector field (the common image case)."""
        return cls((FieldSpec(name, FieldKind.VECTOR),))

    @classmethod
    def single_shingles(cls, name: str = "shingles") -> Schema:
        """Schema with one shingle-set field (the common text case)."""
        return cls((FieldSpec(name, FieldKind.SHINGLES),))

    def __iter__(self) -> Iterator[FieldSpec]:
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def kind_of(self, name: str) -> FieldKind:
        for f in self.fields:
            if f.name == name:
                return f.kind
        raise SchemaError(f"unknown field {name!r}; schema has {self.names}")


@dataclass(frozen=True)
class Record:
    """A lightweight per-row view handed out by :class:`RecordStore`."""

    rid: int
    values: dict[str, Any]

    def __getitem__(self, field_name: str) -> Any:
        return self.values[field_name]


def _as_sorted_ids(values: Iterable[int]) -> IntArray:
    """Coerce a shingle collection into a sorted, unique int64 array."""
    arr = np.asarray(sorted(set(int(v) for v in values)), dtype=np.int64)
    if arr.size and arr.min() < 0:
        raise SchemaError("shingle ids must be non-negative integers")
    return arr


class RecordStore:
    """Column-oriented container for the dataset ``R``.

    Parameters
    ----------
    schema:
        Field declarations.
    columns:
        Mapping from field name to column data: a ``(n, d)`` array for
        ``VECTOR`` fields, or a sequence of shingle-id collections for
        ``SHINGLES`` fields.  All columns must agree on ``n``.
    """

    def __init__(self, schema: Schema, columns: dict[str, Any]) -> None:
        self.schema = schema
        missing = set(schema.names) - set(columns)
        extra = set(columns) - set(schema.names)
        if missing or extra:
            raise SchemaError(
                f"columns do not match schema (missing={sorted(missing)}, "
                f"unexpected={sorted(extra)})"
            )
        self._vectors: dict[str, FloatArray] = {}
        self._shingles: dict[str, list[IntArray]] = {}
        self._csr_cache: dict[str, sp.csr_matrix] = {}
        self._sizes_cache: dict[str, IntArray] = {}
        sizes: set[int] = set()
        for spec in schema:
            col = columns[spec.name]
            if spec.kind is FieldKind.VECTOR:
                mat = np.ascontiguousarray(np.asarray(col, dtype=np.float64))
                if mat.ndim != 2:
                    raise SchemaError(
                        f"vector field {spec.name!r} must be 2-D, got shape {mat.shape}"
                    )
                self._vectors[spec.name] = mat
                sizes.add(int(mat.shape[0]))
            else:
                sets = [_as_sorted_ids(v) for v in col]
                self._shingles[spec.name] = sets
                sizes.add(len(sets))
        if len(sizes) != 1:
            raise SchemaError(f"columns have inconsistent row counts: {sorted(sizes)}")
        self._n = sizes.pop()

    @classmethod
    def _from_parts(
        cls,
        schema: Schema,
        vectors: dict[str, FloatArray],
        shingles: dict[str, list[IntArray]],
        n: int,
    ) -> RecordStore:
        """Trusted constructor: adopt already-validated columns without
        copying.  Used by the parallel layer to rebuild a store inside a
        worker from transferred arrays (the arrays are exactly the ones
        ``__init__`` would have produced, so re-validation would only
        duplicate every shingle set).
        """
        store = cls.__new__(cls)
        store.schema = schema
        store._vectors = vectors
        store._shingles = shingles
        store._csr_cache = {}
        store._sizes_cache = {}
        store._n = n
        return store

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def __getitem__(self, rid: int) -> Record:
        if not 0 <= rid < self._n:
            raise IndexError(f"rid {rid} out of range [0, {self._n})")
        values: dict[str, Any] = {}
        for name, mat in self._vectors.items():
            values[name] = mat[rid]
        for name, sets in self._shingles.items():
            values[name] = sets[rid]
        return Record(rid, values)

    def __iter__(self) -> Iterator[Record]:
        return (self[i] for i in range(self._n))

    @property
    def rids(self) -> IntArray:
        """All record ids as an int64 array."""
        return np.arange(self._n, dtype=np.int64)

    # ------------------------------------------------------------------
    # batch accessors used by hash families and pairwise engines
    # ------------------------------------------------------------------
    def vectors(self, field_name: str) -> FloatArray:
        """The full ``(n, d)`` matrix of a vector field."""
        try:
            return self._vectors[field_name]
        except KeyError:
            raise SchemaError(f"{field_name!r} is not a vector field") from None

    def shingle_sets(self, field_name: str) -> list[IntArray]:
        """All shingle-id arrays of a shingle field (indexed by rid)."""
        try:
            return self._shingles[field_name]
        except KeyError:
            raise SchemaError(f"{field_name!r} is not a shingles field") from None

    def shingle_csr(self, field_name: str) -> sp.csr_matrix:
        """Binary ``(n, vocab)`` incidence matrix of a shingle field.

        Built lazily and cached; used for vectorized pairwise Jaccard.
        """
        if field_name not in self._csr_cache:
            sets = self.shingle_sets(field_name)
            indptr = np.zeros(self._n + 1, dtype=np.int64)
            lengths = np.array([s.size for s in sets], dtype=np.int64)
            np.cumsum(lengths, out=indptr[1:])
            if indptr[-1]:
                raw = np.concatenate(sets)
                # Ids can come from 32-bit hashes; compact them so the
                # matrix width is the number of *distinct* shingles.
                vocab_ids, indices = np.unique(raw, return_inverse=True)
                vocab = int(vocab_ids.size)
            else:
                indices = np.zeros(0, dtype=np.int64)
                vocab = 1
            data = np.ones(indptr[-1], dtype=np.float64)
            self._csr_cache[field_name] = sp.csr_matrix(
                (data, indices, indptr), shape=(self._n, vocab)
            )
        return self._csr_cache[field_name]

    def set_sizes(self, field_name: str) -> IntArray:
        """Per-record shingle-set cardinalities.

        Cached: pairwise engines ask for this on every one-to-many /
        block call, and rebuilding it is a Python loop over all ``n``
        records — it must not sit on the per-row hot path.
        """
        if field_name not in self._sizes_cache:
            self._sizes_cache[field_name] = np.array(
                [s.size for s in self.shingle_sets(field_name)], dtype=np.int64
            )
        return self._sizes_cache[field_name]

    # ------------------------------------------------------------------
    # dataset manipulation
    # ------------------------------------------------------------------
    def take(self, rids: ArrayLike) -> RecordStore:
        """A new store holding only ``rids`` (in the given order)."""
        rids = np.asarray(rids, dtype=np.int64)
        columns: dict[str, Any] = {}
        for name, mat in self._vectors.items():
            columns[name] = mat[rids]
        for name, sets in self._shingles.items():
            columns[name] = [sets[int(i)] for i in rids]
        return RecordStore(self.schema, columns)

    def concat(self, other: RecordStore) -> RecordStore:
        """A new store with ``other``'s rows appended after this one's."""
        if other.schema != self.schema:
            raise SchemaError("cannot concat stores with different schemas")
        columns: dict[str, Any] = {}
        for name, mat in self._vectors.items():
            columns[name] = np.vstack([mat, other._vectors[name]])
        for name, sets in self._shingles.items():
            columns[name] = sets + other._shingles[name]
        return RecordStore(self.schema, columns)

    def content_fingerprint(self, limit: int | None = None) -> str:
        """SHA-256 over the schema and the first ``limit`` rows' bytes.

        Index snapshots use this to verify that a snapshot is restored
        onto the store it was captured from.  Because the digest covers
        row prefixes field by field, a store extended with
        :meth:`concat` satisfies
        ``extended.content_fingerprint(limit=len(original)) ==
        original.content_fingerprint()`` — the relaxed check behind
        snapshot-then-extend restores.
        """
        n = self._n if limit is None else min(int(limit), self._n)
        digest = hashlib.sha256()
        digest.update(f"n={n}".encode())
        for spec in self.schema:
            digest.update(f"|{spec.name}:{spec.kind.value}".encode())
            if spec.kind is FieldKind.VECTOR:
                mat = self._vectors[spec.name][:n]
                digest.update(f":{mat.shape[1] if mat.ndim == 2 else 0}".encode())
                digest.update(np.ascontiguousarray(mat).tobytes())
            else:
                for s in self._shingles[spec.name][:n]:
                    digest.update(np.int64(s.size).tobytes())
                    digest.update(s.tobytes())
        return digest.hexdigest()
