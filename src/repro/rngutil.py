"""Seeded random-number-generation helpers.

All stochastic components of the library (hash families, dataset
generators, budget noise experiments) accept either an integer seed, a
:class:`numpy.random.Generator`, or ``None``.  This module centralizes
the coercion so behaviour is uniform and reproducible everywhere.

This module is the *only* place in the package allowed to touch
``numpy.random`` / ``random`` directly (invariant rule R1 of
:mod:`repro.analysis`): every other module must obtain generators
through :func:`make_rng` and derive independent streams with
:func:`spawn`, so that one top-level seed deterministically controls
every stochastic decision of a run.
"""

from __future__ import annotations

import copy
from typing import Any, TypeAlias

import numpy as np

#: Any value acceptable as a source of randomness.
SeedLike: TypeAlias = int | np.random.Generator | np.random.SeedSequence | None


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an existing generator (returned as-is), an integer,
    a :class:`numpy.random.SeedSequence`, or ``None`` (OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Children are seeded from integers drawn from ``rng`` so that a
    single top-level seed deterministically fans out to independent
    streams (one per hash family, per dataset field, ...).
    """
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def rng_state(rng: np.random.Generator) -> dict[str, Any]:
    """Serializable snapshot of a generator's exact stream position.

    The returned dict is JSON-friendly (bit-generator name plus integer
    state words) and round-trips through :func:`rng_from_state`: the
    restored generator continues the stream from precisely the same
    point — the seed-lineage half of the snapshot warm-start guarantee.
    """
    return copy.deepcopy(rng.bit_generator.state)


def rng_from_state(state: dict[str, Any]) -> np.random.Generator:
    """Rebuild a generator from :func:`rng_state` output."""
    name = state["bit_generator"]
    bit_generator_cls = getattr(np.random, name)
    bit_generator = bit_generator_cls()
    bit_generator.state = copy.deepcopy(state)
    return np.random.Generator(bit_generator)
